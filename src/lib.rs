//! # cello — facade crate for the CELLO reproduction
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests and downstream users can `use cello::…` without naming individual
//! crates. See `README.md` for the architecture overview (including the
//! `cello-search` auto-tuner, the `cello_dse` CLI, and the `cello-serve`
//! schedule-compilation daemon with its `cello_client`/`loadgen` tools).
//!
//! ```
//! use cello::tensor::ai_best_gemm;
//! // Paper Fig 2(a): a skewed GEMM has ~2 ops/byte at 4-byte words.
//! let ai = ai_best_gemm(524_288, 16, 16, 4);
//! assert!((ai.ops_per_byte() - 2.0).abs() < 0.01);
//! ```

pub use cello_core as core;
pub use cello_graph as graph;
pub use cello_mem as mem;
pub use cello_obs as obs;
pub use cello_search as search;
pub use cello_serve as serve;
pub use cello_sim as sim;
pub use cello_tensor as tensor;
pub use cello_workloads as workloads;

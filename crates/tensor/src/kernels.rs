//! Executable tensor kernels: GEMM, transposed GEMM, SpMM, small inverse.
//!
//! These give the reproduction *real numerics*: the CG / BiCGStab / GCN
//! workloads in `cello-workloads` run on these kernels, so solver convergence
//! is testable rather than assumed. Hot loops follow the Rust Performance Book
//! guidance (flat slices, no per-element allocation) and the large-`M` loops
//! parallelize over the dominant rank with rayon — the same "parallelize the
//! dominant rank" decision SCORE makes for multi-node scaling (§V-B).

use crate::dense::DenseMatrix;
use crate::layout::Layout;
use crate::sparse::CsrMatrix;
use rayon::prelude::*;

/// Row-parallelism threshold: below this many rows the sequential kernel wins
/// (thread spawn overhead dominates for the small Greek-letter tensors).
const PAR_ROW_THRESHOLD: usize = 1024;

/// Dense GEMM: `Z[m,n] = Σ_k A[m,k] B[k,n]` (+ optional accumulate into `z`).
///
/// `A` is `M×K`, `B` is `K×N`; the result is `M×N` row-major. For the skewed
/// shapes CG produces (`M` huge, `K`,`N` ≤ 16) this loop order keeps the large
/// tensor stationary per row and streams the small one — the same
/// "large tensor stationary, small tensor streamed from RF" schedule the paper
/// fixes (§V-B Tiling).
pub fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut z = DenseMatrix::zeros(m, n);
    // Pull B into a row-major scratch once so the inner loop is contiguous.
    let b_rm = b.to_layout(Layout::RowMajor);
    let b_data = b_rm.data();
    let body = |row: usize, out_row: &mut [f64]| {
        for kk in 0..k {
            let aik = a.get(row, kk);
            if aik == 0.0 {
                continue;
            }
            let b_row = &b_data[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    };
    if m >= PAR_ROW_THRESHOLD {
        z.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(row, out_row)| body(row, out_row));
    } else {
        for (row, out_row) in z.data_mut().chunks_mut(n).enumerate() {
            body(row, out_row);
        }
    }
    z
}

/// Transposed-left GEMM: `Δ[n',n] = Σ_k A[k,n'] B[k,n]` (i.e. `AᵀB`).
///
/// This is CG's contraction-heavy pattern (lines 2 and 5 of Algorithm 1):
/// both inputs are tall and skinny; the contraction runs over the huge `k`.
pub fn gemm_at_b(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.rows(), b.rows(), "gemm_at_b contraction mismatch");
    let (k, np, n) = (a.rows(), a.cols(), b.cols());
    if k >= PAR_ROW_THRESHOLD {
        // Tree-reduce partial products over row blocks: each block forms a
        // small np x n partial, then partials sum (deterministic up to FP
        // reassociation, which the solvers tolerate).
        let block = 4096.max(k / (rayon::current_num_threads().max(1) * 4));
        let partials: Vec<Vec<f64>> = (0..k)
            .into_par_iter()
            .step_by(block)
            .map(|start| {
                let end = (start + block).min(k);
                let mut acc = vec![0.0f64; np * n];
                for kk in start..end {
                    for i in 0..np {
                        let av = a.get(kk, i);
                        if av == 0.0 {
                            continue;
                        }
                        for j in 0..n {
                            acc[i * n + j] += av * b.get(kk, j);
                        }
                    }
                }
                acc
            })
            .collect();
        let mut out = DenseMatrix::zeros(np, n);
        for p in partials {
            for (o, v) in out.data_mut().iter_mut().zip(p) {
                *o += v;
            }
        }
        out
    } else {
        let mut out = DenseMatrix::zeros(np, n);
        for kk in 0..k {
            for i in 0..np {
                let av = a.get(kk, i);
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = out.get(i, j) + av * b.get(kk, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }
}

/// SpMM: `S[m,n] = Σ_k A[m,k] P[k,n]` with CSR `A` (CG line 1).
pub fn spmm(a: &CsrMatrix, p: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), p.rows(), "spmm inner dimension mismatch");
    let n = p.cols();
    let mut s = DenseMatrix::zeros(a.rows(), n);
    let p_rm = p.to_layout(Layout::RowMajor);
    let p_data = p_rm.data();
    let body = |row: usize, out_row: &mut [f64]| {
        for (col, v) in a.row(row) {
            let p_row = &p_data[col * n..(col + 1) * n];
            for (o, &pv) in out_row.iter_mut().zip(p_row) {
                *o += v * pv;
            }
        }
    };
    if a.rows() >= PAR_ROW_THRESHOLD {
        s.data_mut()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(row, out_row)| body(row, out_row));
    } else {
        for (row, out_row) in s.data_mut().chunks_mut(n).enumerate() {
            body(row, out_row);
        }
    }
    s
}

/// Naive reference GEMM (used by tests and property checks only).
pub fn gemm_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows());
    let mut z = DenseMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for kk in 0..a.cols() {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            z.set(i, j, acc);
        }
    }
    z
}

/// Small dense inverse by Gauss–Jordan with partial pivoting.
///
/// CG's lines 2 and 6 need `Δ⁻¹` and `Γ_prev⁻¹` of tiny `N'×N` systems
/// (N ≤ 16): exactly the "op ≠ tensor_mac" nodes Algorithm 2 forces
/// sequential. Returns `None` when the matrix is numerically singular.
pub fn invert_small(a: &DenseMatrix) -> Option<DenseMatrix> {
    assert_eq!(a.rows(), a.cols(), "inverse requires a square matrix");
    let n = a.rows();
    let mut aug = a.to_layout(Layout::RowMajor);
    let mut inv = DenseMatrix::identity(n);
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                aug.get(r1, col)
                    .abs()
                    .partial_cmp(&aug.get(r2, col).abs())
                    .unwrap()
            })
            .unwrap();
        let pivot = aug.get(pivot_row, col);
        if pivot.abs() < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for j in 0..n {
                let (x, y) = (aug.get(col, j), aug.get(pivot_row, j));
                aug.set(col, j, y);
                aug.set(pivot_row, j, x);
                let (x, y) = (inv.get(col, j), inv.get(pivot_row, j));
                inv.set(col, j, y);
                inv.set(pivot_row, j, x);
            }
        }
        let scale = 1.0 / aug.get(col, col);
        for j in 0..n {
            aug.set(col, j, aug.get(col, j) * scale);
            inv.set(col, j, inv.get(col, j) * scale);
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = aug.get(r, col);
            if f == 0.0 {
                continue;
            }
            for j in 0..n {
                aug.set(r, j, aug.get(r, j) - f * aug.get(col, j));
                inv.set(r, j, inv.get(r, j) - f * inv.get(col, j));
            }
        }
    }
    Some(inv)
}

/// Elementwise `C = A - B`.
pub fn sub(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = a.clone();
    c.axpy(-1.0, b);
    c
}

/// Elementwise `C = A + B`.
pub fn add(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = a.clone();
    c.axpy(1.0, b);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooMatrix;

    fn mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        // Deterministic pseudo-random fill without pulling in rand here.
        let mut m = DenseMatrix::zeros(rows, cols);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for r in 0..rows {
            for c in 0..cols {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                m.set(r, c, ((state % 1000) as f64 - 500.0) / 250.0);
            }
        }
        m
    }

    #[test]
    fn gemm_matches_naive() {
        let a = mat(7, 5, 1);
        let b = mat(5, 3, 2);
        assert!(gemm(&a, &b).max_abs_diff(&gemm_naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn gemm_parallel_path_matches_naive() {
        let a = mat(2048, 4, 3);
        let b = mat(4, 3, 4);
        assert!(gemm(&a, &b).max_abs_diff(&gemm_naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn gemm_col_major_input() {
        let a = mat(6, 4, 5).to_layout(Layout::ColMajor);
        let b = mat(4, 2, 6).to_layout(Layout::ColMajor);
        assert!(gemm(&a, &b).max_abs_diff(&gemm_naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn gemm_at_b_matches_transpose_gemm() {
        let a = mat(9, 3, 7);
        let b = mat(9, 4, 8);
        let direct = gemm_at_b(&a, &b);
        let via_transpose = gemm_naive(&a.transpose(), &b);
        assert!(direct.max_abs_diff(&via_transpose) < 1e-12);
    }

    #[test]
    fn gemm_at_b_parallel_path() {
        let a = mat(5000, 3, 9);
        let b = mat(5000, 2, 10);
        let direct = gemm_at_b(&a, &b);
        let via_transpose = gemm_naive(&a.transpose(), &b);
        assert!(direct.max_abs_diff(&via_transpose) < 1e-9);
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 2.0 + i as f64);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
                coo.push(i - 1, i, -1.0);
            }
        }
        let a = coo.to_csr();
        let p = mat(6, 3, 11);
        let sparse = spmm(&a, &p);
        let dense = gemm_naive(&a.to_dense(), &p);
        assert!(sparse.max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn invert_small_identity() {
        let i = DenseMatrix::identity(4);
        assert!(invert_small(&i).unwrap().max_abs_diff(&i) < 1e-12);
    }

    #[test]
    fn invert_small_round_trip() {
        let mut a = mat(5, 5, 13);
        for i in 0..5 {
            a.set(i, i, a.get(i, i) + 6.0); // diagonally dominant => invertible
        }
        let inv = invert_small(&a).unwrap();
        let prod = gemm_naive(&a, &inv);
        assert!(prod.max_abs_diff(&DenseMatrix::identity(5)) < 1e-9);
    }

    #[test]
    fn invert_singular_returns_none() {
        let z = DenseMatrix::zeros(3, 3);
        assert!(invert_small(&z).is_none());
        let mut rank1 = DenseMatrix::zeros(2, 2);
        rank1.set(0, 0, 1.0);
        rank1.set(0, 1, 2.0);
        rank1.set(1, 0, 2.0);
        rank1.set(1, 1, 4.0);
        assert!(invert_small(&rank1).is_none());
    }

    #[test]
    fn add_sub_inverse() {
        let a = mat(4, 4, 17);
        let b = mat(4, 4, 19);
        let restored = sub(&add(&a, &b), &b);
        assert!(restored.max_abs_diff(&a) < 1e-12);
    }
}

//! Einsum specifications.
//!
//! CELLO's workloads are "chains of Einsums" (§III-A). An [`EinsumSpec`]
//! captures one operation — its input tensors' rank lists and the output's —
//! in the TACO-style notation used by the paper:
//! `Z[m,n] = Σ_k A[m,k] · B[k,n]` is written `"mk,kn->mn"`.
//!
//! The spec knows which ranks are **contracted** (appear in an input but not in
//! the output) and which are **uncontracted**, which is the vocabulary
//! Algorithm 2 (dependency classification) and the loop-order rules (§V-B)
//! are written in.

use crate::shape::{dominant_rank, skew_class, RankExtent, RankId, SkewClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Whether a rank is contracted away by the operation or survives to the output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankKind {
    /// Appears in the output (an "uncontracted" rank, `m`/`n` in a GEMM).
    Uncontracted,
    /// Summed over (the `k` rank of a GEMM); does not appear in the output.
    Contracted,
}

/// A parsed einsum such as `"mk,kn->mn"` with per-rank extents attached.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EinsumSpec {
    /// Rank lists of each input tensor, in operand order.
    pub inputs: Vec<Vec<RankId>>,
    /// Rank list of the output tensor.
    pub output: Vec<RankId>,
    /// Extents for every rank mentioned anywhere in the spec.
    extents: BTreeMap<RankId, RankExtent>,
}

impl EinsumSpec {
    /// Parses `"mk,kn->mn"`-style notation where every rank is a single ASCII
    /// character, then attaches extents. Multi-character ranks can be added
    /// with [`EinsumSpec::from_parts`].
    ///
    /// # Panics
    /// Panics if the notation is malformed or if a rank lacks an extent.
    pub fn parse(notation: &str, extents: &[RankExtent]) -> Self {
        let (lhs, rhs) = notation
            .split_once("->")
            .unwrap_or_else(|| panic!("einsum {notation:?} missing '->'"));
        let inputs: Vec<Vec<RankId>> = lhs
            .split(',')
            .map(|t| t.chars().map(|c| RankId::new(&c.to_string())).collect())
            .collect();
        let output: Vec<RankId> = rhs.chars().map(|c| RankId::new(&c.to_string())).collect();
        Self::from_parts(inputs, output, extents)
    }

    /// Builds a spec from explicit rank lists (for multi-character ranks such
    /// as `n'` which we spell `np`).
    pub fn from_parts(
        inputs: Vec<Vec<RankId>>,
        output: Vec<RankId>,
        extents: &[RankExtent],
    ) -> Self {
        let map: BTreeMap<RankId, RankExtent> = extents.iter().map(|e| (e.rank, *e)).collect();
        let spec = Self {
            inputs,
            output,
            extents: map,
        };
        for rank in spec.all_ranks() {
            assert!(
                spec.extents.contains_key(&rank),
                "rank {rank} used in einsum but has no extent"
            );
        }
        spec
    }

    /// Every distinct rank mentioned in inputs or output, in first-use order.
    pub fn all_ranks(&self) -> Vec<RankId> {
        let mut seen = Vec::new();
        for list in self.inputs.iter().chain(std::iter::once(&self.output)) {
            for &r in list {
                if !seen.contains(&r) {
                    seen.push(r);
                }
            }
        }
        seen
    }

    /// The contracted ranks: used by an input, absent from the output.
    pub fn contracted_ranks(&self) -> Vec<RankId> {
        self.all_ranks()
            .into_iter()
            .filter(|r| !self.output.contains(r))
            .collect()
    }

    /// The uncontracted ranks (those of the output).
    pub fn uncontracted_ranks(&self) -> Vec<RankId> {
        self.output.clone()
    }

    /// Classifies one rank.
    pub fn rank_kind(&self, rank: RankId) -> RankKind {
        if self.output.contains(&rank) {
            RankKind::Uncontracted
        } else {
            RankKind::Contracted
        }
    }

    /// Extent record for a rank.
    pub fn extent(&self, rank: RankId) -> RankExtent {
        self.extents[&rank]
    }

    /// All extents, in rank order.
    pub fn extents(&self) -> Vec<RankExtent> {
        self.all_ranks().iter().map(|r| self.extents[r]).collect()
    }

    /// The dominant rank of the whole operation (largest effective extent),
    /// the quantity Algorithm 2's node "dominance" is defined over.
    pub fn dominant(&self) -> RankExtent {
        dominant_rank(&self.extents()).expect("einsum has at least one rank")
    }

    /// True when the dominant rank is contracted — the "'C'" nodes of Fig 7
    /// (lines 2 and 5 of CG: `Δ = Pᵀ S`, `Γ = Rᵀ R` contract over the huge `k`).
    pub fn contracted_dominant(&self) -> bool {
        matches!(self.rank_kind(self.dominant().rank), RankKind::Contracted)
            && self.skew(4.0) == SkewClass::Skewed
    }

    /// Skew classification over effective extents.
    pub fn skew(&self, threshold: f64) -> SkewClass {
        skew_class(&self.extents(), threshold)
    }

    /// Number of multiply-accumulates: the product of all effective rank extents
    /// that participate in the compute loop nest.
    pub fn macs(&self) -> u64 {
        self.all_ranks()
            .iter()
            .map(|r| self.extents[r].effective)
            .product()
    }

    /// Number of words in one input operand (product of its ranks' effective
    /// extents — effective, because compressed tensors only store occupied
    /// positions).
    pub fn input_words(&self, idx: usize) -> u64 {
        self.inputs[idx]
            .iter()
            .map(|r| self.extents[r].effective)
            .product()
    }

    /// Number of words in the output tensor (outputs are dense: full extents).
    pub fn output_words(&self) -> u64 {
        self.output.iter().map(|r| self.extents[r].extent).product()
    }
}

impl fmt::Display for EinsumSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ins: Vec<String> = self
            .inputs
            .iter()
            .map(|t| t.iter().map(|r| r.name()).collect::<Vec<_>>().join(""))
            .collect();
        let out: String = self
            .output
            .iter()
            .map(|r| r.name())
            .collect::<Vec<_>>()
            .join("");
        write!(f, "{}->{}", ins.join(","), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm(m: u64, k: u64, n: u64) -> EinsumSpec {
        EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", m),
                RankExtent::dense("k", k),
                RankExtent::dense("n", n),
            ],
        )
    }

    #[test]
    fn parse_identifies_contracted_ranks() {
        let g = gemm(512, 512, 512);
        assert_eq!(g.contracted_ranks(), vec![RankId::new("k")]);
        assert_eq!(
            g.uncontracted_ranks(),
            vec![RankId::new("m"), RankId::new("n")]
        );
        assert_eq!(g.rank_kind(RankId::new("k")), RankKind::Contracted);
        assert_eq!(g.rank_kind(RankId::new("m")), RankKind::Uncontracted);
    }

    #[test]
    fn macs_is_product_of_extents() {
        assert_eq!(gemm(512, 512, 512).macs(), 512 * 512 * 512);
        assert_eq!(gemm(524_288, 16, 16).macs(), 524_288 * 16 * 16);
    }

    #[test]
    fn regular_and_skewed_gemm_have_equal_macs() {
        // The paper's Fig 2 point: same multiplications, drastically different AI.
        assert_eq!(gemm(512, 512, 512).macs(), gemm(524_288, 16, 16).macs());
    }

    #[test]
    fn dominance_of_skewed_gemm_is_m() {
        let g = gemm(524_288, 16, 16);
        assert_eq!(g.dominant().rank, RankId::new("m"));
        assert!(!g.contracted_dominant());
    }

    #[test]
    fn contraction_heavy_op_detected() {
        // Δ[n',n] = Σ_k P[k,n'] S[k,n] with huge k: contracted dominant ('C').
        let spec = EinsumSpec::from_parts(
            vec![
                vec![RankId::new("k"), RankId::new("np")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("np"), RankId::new("n")],
            &[
                RankExtent::dense("k", 81_920),
                RankExtent::dense("np", 16),
                RankExtent::dense("n", 16),
            ],
        );
        assert!(spec.contracted_dominant());
        assert_eq!(spec.dominant().rank, RankId::new("k"));
    }

    #[test]
    fn balanced_gemm_is_not_contracted_dominant() {
        // 512^3: even though k ties for the max, all ranks are comparable, so the
        // operator is compute-friendly, not "contraction heavy".
        assert!(!gemm(512, 512, 512).contracted_dominant());
    }

    #[test]
    fn word_counts() {
        let g = gemm(100, 20, 8);
        assert_eq!(g.input_words(0), 2000);
        assert_eq!(g.input_words(1), 160);
        assert_eq!(g.output_words(), 800);
    }

    #[test]
    fn compressed_input_words_use_effective_extent() {
        // SpMM: A is M x M with ~5 nnz per row -> k effective 5.
        let spec = EinsumSpec::from_parts(
            vec![
                vec![RankId::new("m"), RankId::new("k")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("m"), RankId::new("n")],
            &[
                RankExtent::dense("m", 81_920),
                RankExtent::compressed("k", 81_920, 5),
                RankExtent::dense("n", 16),
            ],
        );
        assert_eq!(spec.input_words(0), 81_920 * 5); // nnz
        assert_eq!(spec.macs(), 81_920 * 5 * 16); // nnz * N
                                                  // B is indexed by full k rows but only effective are touched per row:
        assert_eq!(spec.input_words(1), 5 * 16);
        assert_eq!(spec.output_words(), 81_920 * 16);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(gemm(4, 4, 4).to_string(), "mk,kn->mn");
    }

    #[test]
    #[should_panic(expected = "no extent")]
    fn missing_extent_panics() {
        let _ = EinsumSpec::parse("mk,kn->mn", &[RankExtent::dense("m", 4)]);
    }
}

//! Sparse matrices: COO builder, CSR and CSC.
//!
//! CG's operand `A` is the only sparse tensor in the paper's workloads
//! (§III-A): shape up to `M × M` with 1–100 non-zeros per row. SCORE "stores
//! the sparse tensor in compressed (CSR/CSC) format and tiles based on
//! occupancy" (§V-B), and CHORD stores both the data and the metadata in that
//! format. The traffic model therefore needs exact payload accounting
//! ([`CsrMatrix::payload_words`]): values + column indices + row pointers.

use crate::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Coordinate-format builder for sparse matrices.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// New empty builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds (accumulates) an entry. Out-of-bounds coordinates panic.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "entry ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Converts to CSR, summing duplicate coordinates and dropping explicit
    /// zeros (including cancellations produced by the summing itself).
    ///
    /// Dropping zeros is deliberate: CSR stores *structural* non-zeros, and
    /// every payload consumer ([`CsrMatrix::payload_words`],
    /// [`CsrMatrix::occupancy`], the traffic model) reads the stored
    /// [`CsrMatrix::nnz`], never a declared header count. A Matrix Market
    /// file with explicit zeros therefore loads to an `nnz()` *below* its
    /// header count — by design, documented at
    /// `cello_workloads::datasets::parse_matrix_market`.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Sum duplicates.
        let mut dedup: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match dedup.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => dedup.push((r, c, v)),
            }
        }
        dedup.retain(|&(_, _, v)| v != 0.0);

        let mut row_ptr = vec![0usize; self.rows + 1];
        for &(r, _, _) in &dedup {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = dedup.iter().map(|&(_, c, _)| c).collect();
        let values = dedup.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Number of buckets in [`OccupancyStats::histogram`].
pub const OCCUPANCY_BUCKETS: usize = 8;

/// Per-row-block occupancy statistics of a sparse matrix — the nonzero
/// structure summary the cost model consumes (SCORE "tiles based on
/// occupancy", §V-B; Tailors-style overbooking sizes buffer grants from
/// exactly these moments).
///
/// Each row block of `block_rows` rows gets an *occupancy fraction*: its
/// stored non-zeros over its dense capacity (`rows_in_block × cols`). The
/// stats summarize the distribution of those fractions. A fully dense
/// matrix has `mean == max == 1` and `variance == 0`, so every consumer
/// degenerates to the dense model bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OccupancyStats {
    /// Rows per block the stats were computed over.
    pub block_rows: u32,
    /// Number of row blocks (≥ 1 for a non-empty matrix).
    pub blocks: u32,
    /// Mean per-block occupancy fraction.
    pub mean: f64,
    /// Population variance of the per-block occupancy fractions.
    pub variance: f64,
    /// Maximum per-block occupancy fraction (the worst-case tile).
    pub max: f64,
    /// Histogram of `fraction / max` over [`OCCUPANCY_BUCKETS`] equal
    /// buckets (bucket `i` counts blocks with relative occupancy in
    /// `[i/8, (i+1)/8)`; exactly `max` lands in the last bucket).
    pub histogram: [u32; OCCUPANCY_BUCKETS],
}

impl OccupancyStats {
    /// The stats of a fully dense tensor: every block at fraction 1, no
    /// variance. The identity element of every occupancy-aware formula.
    pub fn dense() -> Self {
        let mut histogram = [0u32; OCCUPANCY_BUCKETS];
        histogram[OCCUPANCY_BUCKETS - 1] = 1;
        OccupancyStats {
            block_rows: 1,
            blocks: 1,
            mean: 1.0,
            variance: 0.0,
            max: 1.0,
            histogram,
        }
    }

    /// Mean block occupancy relative to the worst block, in `[0, 1]` —
    /// the expected-over-worst-case ratio overbooked grants scale by.
    /// 1.0 when the distribution is flat (dense *or* uniformly sparse).
    pub fn rel_mean(&self) -> f64 {
        if self.max <= 0.0 {
            return 1.0;
        }
        (self.mean / self.max).clamp(0.0, 1.0)
    }

    /// Standard deviation of block occupancy relative to the worst block
    /// — the skew that overbooked spill penalties scale by. 0 for dense
    /// and uniformly sparse matrices.
    pub fn rel_std(&self) -> f64 {
        if self.max <= 0.0 {
            return 0.0;
        }
        (self.variance.max(0.0).sqrt() / self.max).clamp(0.0, 1.0)
    }
}

/// Compressed Sparse Row matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Constructs from raw CSR arrays, validating the invariants.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col_idx/values length");
        assert_eq!(*row_ptr.last().unwrap(), values.len(), "row_ptr terminator");
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be non-decreasing"
        );
        assert!(col_idx.iter().all(|&c| c < cols), "col index out of bounds");
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Average non-zeros per row (the paper's "occupancy", 1–100 for CG).
    pub fn occupancy(&self) -> f64 {
        self.nnz() as f64 / self.rows.max(1) as f64
    }

    /// Row pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Values array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The (col, value) pairs of one row.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// DRAM payload in *words* (one word per value + one per column index +
    /// one per row pointer) — the quantity the traffic model charges when `A`
    /// streams on-chip. Matches the paper's "data and metadata in CSR format".
    pub fn payload_words(&self) -> u64 {
        (self.values.len() + self.col_idx.len() + self.row_ptr.len()) as u64
    }

    /// Per-row-block occupancy statistics over blocks of `block_rows` rows
    /// (see [`OccupancyStats`]). `block_rows` is clamped to `1..=rows`; the
    /// last block may be short and its fraction uses its actual capacity.
    pub fn occupancy_stats(&self, block_rows: usize) -> OccupancyStats {
        let rows = self.rows.max(1);
        let block_rows = block_rows.clamp(1, rows);
        let blocks = rows.div_ceil(block_rows);
        let cols = self.cols.max(1) as f64;
        let mut fractions = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let lo = b * block_rows;
            let hi = ((b + 1) * block_rows).min(self.rows);
            let nnz = if lo < self.rows {
                (self.row_ptr[hi] - self.row_ptr[lo]) as f64
            } else {
                0.0
            };
            let capacity = (hi.saturating_sub(lo)).max(1) as f64 * cols;
            fractions.push(nnz / capacity);
        }
        let n = fractions.len() as f64;
        let mean = fractions.iter().sum::<f64>() / n;
        let variance = fractions
            .iter()
            .map(|f| (f - mean) * (f - mean))
            .sum::<f64>()
            / n;
        let max = fractions.iter().cloned().fold(0.0f64, f64::max);
        let mut histogram = [0u32; OCCUPANCY_BUCKETS];
        for f in &fractions {
            let rel = if max > 0.0 { f / max } else { 0.0 };
            let bucket = ((rel * OCCUPANCY_BUCKETS as f64) as usize).min(OCCUPANCY_BUCKETS - 1);
            histogram[bucket] = histogram[bucket].saturating_add(1);
        }
        OccupancyStats {
            block_rows: block_rows as u32,
            blocks: blocks as u32,
            mean,
            variance,
            max,
            histogram,
        }
    }

    /// True when the sparsity pattern and values are symmetric (within `tol`),
    /// a precondition for CG.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let vt = self.get(c, r);
                if (v - vt).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Point lookup (O(row nnz)).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.row(row)
            .find(|&(c, _)| c == col)
            .map_or(0.0, |(_, v)| v)
    }

    /// Dense conversion (for tests on small matrices).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// CSC conversion.
    pub fn to_csc(&self) -> CscMatrix {
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            col_ptr[c + 1] += 1;
        }
        for i in 0..self.cols {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut cursor = col_ptr.clone();
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let dst = cursor[c];
                row_idx[dst] = r;
                values[dst] = v;
                cursor[c] += 1;
            }
        }
        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            col_ptr,
            row_idx,
            values,
        }
    }
}

/// Compressed Sparse Column matrix (used when a consumer wants the transposed
/// traversal without a swizzle).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The (row, value) pairs of one column.
    pub fn col(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.col_ptr[c]..self.col_ptr[c + 1];
        self.row_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Dense conversion (tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            for (r, v) in self.col(c) {
                out.set(r, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 1 0 4 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 1.0);
        coo.push(2, 2, 4.0);
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_basic() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 4.0);
        assert_eq!(m.row_ptr(), &[0, 2, 3, 5]);
    }

    #[test]
    fn coo_sums_duplicates_and_drops_zeros() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 5.0);
        coo.push(1, 1, -5.0);
        let m = coo.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn symmetric_detection() {
        assert!(sample().is_symmetric(1e-12));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        assert!(!coo.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn csc_round_trip() {
        let m = sample();
        let csc = m.to_csc();
        assert_eq!(csc.nnz(), m.nnz());
        assert_eq!(csc.to_dense(), m.to_dense());
    }

    #[test]
    fn payload_words_counts_metadata() {
        let m = sample();
        // 5 values + 5 col indices + 4 row pointers
        assert_eq!(m.payload_words(), 14);
    }

    #[test]
    fn occupancy() {
        assert!((sample().occupancy() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_iteration() {
        let m = sample();
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 2.0), (2, 1.0)]);
        let row1: Vec<_> = m.row(1).collect();
        assert_eq!(row1, vec![(1, 3.0)]);
    }

    #[test]
    fn occupancy_stats_dense_is_identity() {
        // A fully dense 4x4 matrix: every block fraction is 1.
        let mut coo = CooMatrix::new(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                coo.push(r, c, 1.0 + (r * 4 + c) as f64);
            }
        }
        let s = coo.to_csr().occupancy_stats(2);
        assert_eq!(s.blocks, 2);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert!((s.max - 1.0).abs() < 1e-12);
        assert!(s.variance.abs() < 1e-12);
        assert!((s.rel_mean() - 1.0).abs() < 1e-12);
        assert!(s.rel_std().abs() < 1e-12);
        assert_eq!(s.histogram[OCCUPANCY_BUCKETS - 1], 2);
        // The canned dense stats agree.
        let d = OccupancyStats::dense();
        assert_eq!(d.rel_mean(), 1.0);
        assert_eq!(d.rel_std(), 0.0);
    }

    #[test]
    fn occupancy_stats_capture_skew() {
        // Arrowhead pattern: block 0 (row 0) is dense, the rest carry only
        // the diagonal + first column — strongly skewed occupancy.
        let n = 8;
        let mut coo = CooMatrix::new(n, n);
        for c in 0..n {
            coo.push(0, c, 1.0);
        }
        for r in 1..n {
            coo.push(r, 0, 1.0);
            coo.push(r, r, 2.0);
        }
        let s = coo.to_csr().occupancy_stats(1);
        assert_eq!(s.blocks, n as u32);
        assert!((s.max - 1.0).abs() < 1e-12, "row 0 is dense");
        assert!(s.rel_mean() < 0.5, "mean well below the worst block");
        assert!(s.rel_std() > 0.1, "skew shows up as relative std");
        assert!(s.variance > 0.0);
        // Uniform sparsity (diagonal only) has no skew at all.
        let mut diag = CooMatrix::new(n, n);
        for r in 0..n {
            diag.push(r, r, 1.0);
        }
        let u = diag.to_csr().occupancy_stats(1);
        assert!((u.rel_mean() - 1.0).abs() < 1e-12);
        assert!(u.rel_std() < 1e-12);
        assert!(u.max < 1.0, "still sparse in absolute terms");
    }

    #[test]
    fn occupancy_stats_degenerate_inputs() {
        // Block size clamps; short last block uses its own capacity.
        let m = sample();
        let s = m.occupancy_stats(2);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.block_rows, 2);
        let huge = m.occupancy_stats(1000);
        assert_eq!(huge.blocks, 1);
        // Empty matrix: max 0, rel_mean defaults to the dense identity.
        let empty = CooMatrix::new(3, 3).to_csr();
        let e = empty.occupancy_stats(1);
        assert_eq!(e.max, 0.0);
        assert_eq!(e.rel_mean(), 1.0);
        assert_eq!(e.rel_std(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn coo_bounds_checked() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "row_ptr")]
    fn from_raw_validates() {
        let _ = CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }
}

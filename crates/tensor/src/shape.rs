//! Rank identifiers, extents and skewness classification.
//!
//! The paper's central observation (§III-A) is that HPC tensor operators have
//! *skewed* shapes — one huge rank (e.g. `M = 1 000 000`) and small remaining
//! ranks (e.g. `N = 8`) — which caps the best achievable arithmetic intensity at
//! `N/2` ops/word (Eq 4) and makes the operation memory-bound regardless of
//! schedule. This module gives shapes a vocabulary: named ranks, extents, the
//! dominant rank, and a [`SkewClass`] used by SCORE's dominance analysis.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named rank (loop index / tensor mode), e.g. `m`, `k`, `n`.
///
/// Ranks are interned as small copyable tokens so that DAG-level analyses can
/// compare them cheaply. Names longer than [`RankId::MAX_LEN`] bytes are
/// rejected at construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RankId {
    bytes: [u8; Self::MAX_LEN],
    len: u8,
}

impl RankId {
    /// Maximum rank-name length in bytes.
    pub const MAX_LEN: usize = 8;

    /// Creates a rank id from a short ASCII name. Panics on empty/oversized names.
    pub fn new(name: &str) -> Self {
        assert!(
            !name.is_empty() && name.len() <= Self::MAX_LEN,
            "rank name must be 1..={} bytes, got {name:?}",
            Self::MAX_LEN
        );
        let mut bytes = [0u8; Self::MAX_LEN];
        bytes[..name.len()].copy_from_slice(name.as_bytes());
        Self {
            bytes,
            len: name.len() as u8,
        }
    }

    /// The rank's name.
    pub fn name(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("rank names are ASCII")
    }
}

impl fmt::Debug for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RankId({})", self.name())
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<&str> for RankId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// A rank together with its loop extent.
///
/// `effective` is the extent *as seen by the memory system*: for a rank of a
/// compressed (sparse) tensor the effective extent per traversal is the average
/// occupancy, not the full dimension. This is exactly why the paper marks the
/// SpMM node of CG as **U**ncontracted-dominant ("the contracted rank is
/// compressed", Fig 7 caption): `A`'s contracted rank `k` has full extent `M`
/// but effective extent `nnz/M`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankExtent {
    /// The rank identifier.
    pub rank: RankId,
    /// The full (dense) loop extent.
    pub extent: u64,
    /// The effective extent after compression (equals `extent` for dense ranks).
    pub effective: u64,
}

impl RankExtent {
    /// Dense rank: effective extent equals the full extent.
    pub fn dense(rank: impl Into<RankId>, extent: u64) -> Self {
        let rank = rank.into();
        Self {
            rank,
            extent,
            effective: extent,
        }
    }

    /// Compressed rank: traversal only touches `effective` of the `extent` positions.
    pub fn compressed(rank: impl Into<RankId>, extent: u64, effective: u64) -> Self {
        let rank = rank.into();
        assert!(
            effective <= extent,
            "effective extent {effective} exceeds full extent {extent} for rank {rank}"
        );
        Self {
            rank,
            extent,
            effective,
        }
    }
}

/// Shape classification used throughout the paper's motivation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkewClass {
    /// All ranks are within `skew_threshold` of each other ("bal" in Fig 7):
    /// the regime DNN accelerators were designed for.
    Balanced,
    /// One rank dwarfs the others — CG's `P`, `R`, `S`, `X` (e.g. 1 000 000 × 8).
    Skewed,
}

/// A plain 2-D shape helper for matrices (`rows × cols`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape2D {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape2D {
    /// Creates a new 2-D shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the shape holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aspect ratio `max(rows, cols) / min(rows, cols)` (∞-safe: returns
    /// `f64::INFINITY` if the small side is zero).
    pub fn aspect_ratio(&self) -> f64 {
        let hi = self.rows.max(self.cols) as f64;
        let lo = self.rows.min(self.cols) as f64;
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }

    /// Classifies the shape given a skew threshold (the paper's examples use
    /// ratios of 65 536:1 for skewed and ≈1:1 for regular; any threshold in
    /// between separates them — we default to 4 elsewhere).
    pub fn skew_class(&self, skew_threshold: f64) -> SkewClass {
        if self.aspect_ratio() > skew_threshold {
            SkewClass::Skewed
        } else {
            SkewClass::Balanced
        }
    }
}

/// Returns the dominant (largest-effective-extent) rank among `ranks`,
/// or `None` for an empty slice. Ties resolve to the first maximal rank,
/// which keeps dominance deterministic for balanced operators.
pub fn dominant_rank(ranks: &[RankExtent]) -> Option<RankExtent> {
    ranks
        .iter()
        .copied()
        .max_by(|a, b| a.effective.cmp(&b.effective).then(b.rank.cmp(&a.rank)))
}

/// Classifies a set of ranks as balanced or skewed: skewed iff the ratio of the
/// largest to the smallest effective extent exceeds `skew_threshold`.
pub fn skew_class(ranks: &[RankExtent], skew_threshold: f64) -> SkewClass {
    let max = ranks.iter().map(|r| r.effective).max().unwrap_or(1).max(1);
    let min = ranks.iter().map(|r| r.effective).min().unwrap_or(1).max(1);
    if max as f64 / min as f64 > skew_threshold {
        SkewClass::Skewed
    } else {
        SkewClass::Balanced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_id_round_trips_names() {
        let r = RankId::new("m");
        assert_eq!(r.name(), "m");
        let r2 = RankId::new("nprime");
        assert_eq!(r2.name(), "nprime");
        assert_ne!(r, r2);
    }

    #[test]
    fn rank_id_equality_is_by_name() {
        assert_eq!(RankId::new("k"), RankId::from("k"));
    }

    #[test]
    #[should_panic(expected = "rank name")]
    fn rank_id_rejects_oversized_names() {
        let _ = RankId::new("waytoolongname");
    }

    #[test]
    #[should_panic(expected = "rank name")]
    fn rank_id_rejects_empty_names() {
        let _ = RankId::new("");
    }

    #[test]
    fn compressed_extent_validated() {
        let r = RankExtent::compressed("k", 1_000_000, 50);
        assert_eq!(r.extent, 1_000_000);
        assert_eq!(r.effective, 50);
    }

    #[test]
    #[should_panic(expected = "effective extent")]
    fn compressed_extent_rejects_inflation() {
        let _ = RankExtent::compressed("k", 10, 11);
    }

    #[test]
    fn dominant_rank_picks_largest_effective() {
        let ranks = [
            RankExtent::dense("m", 524_288),
            RankExtent::dense("k", 16),
            RankExtent::dense("n", 16),
        ];
        assert_eq!(dominant_rank(&ranks).unwrap().rank, RankId::new("m"));
    }

    #[test]
    fn dominant_rank_respects_compression() {
        // CG SpMM: contracted k has full extent M but tiny effective extent.
        let ranks = [
            RankExtent::dense("m", 81_920),
            RankExtent::compressed("k", 81_920, 4),
            RankExtent::dense("n", 16),
        ];
        assert_eq!(dominant_rank(&ranks).unwrap().rank, RankId::new("m"));
    }

    #[test]
    fn skew_classification_matches_paper_examples() {
        // Regular GEMM 512^3 -> balanced; skewed 524288x16x16 -> skewed.
        let regular = [
            RankExtent::dense("m", 512),
            RankExtent::dense("k", 512),
            RankExtent::dense("n", 512),
        ];
        let skewed = [
            RankExtent::dense("m", 524_288),
            RankExtent::dense("k", 16),
            RankExtent::dense("n", 16),
        ];
        assert_eq!(skew_class(&regular, 4.0), SkewClass::Balanced);
        assert_eq!(skew_class(&skewed, 4.0), SkewClass::Skewed);
    }

    #[test]
    fn shape2d_aspect_ratio() {
        assert_eq!(Shape2D::new(8, 8).aspect_ratio(), 1.0);
        assert_eq!(Shape2D::new(1_000_000, 8).aspect_ratio(), 125_000.0);
        assert_eq!(
            Shape2D::new(1_000_000, 8).skew_class(4.0),
            SkewClass::Skewed
        );
    }

    #[test]
    fn shape2d_len_and_empty() {
        assert_eq!(Shape2D::new(3, 4).len(), 12);
        assert!(Shape2D::new(0, 4).is_empty());
        assert!(Shape2D::new(0, 4).aspect_ratio().is_infinite());
    }
}

//! Synthetic dataset generators.
//!
//! The paper evaluates on SuiteSparse matrices (fv1, shallow_water1,
//! G2_circuit, NASA4704) and OMEGA GNN graphs (cora, protein). Those artifacts
//! are not redistributable here, so we generate **synthetic stand-ins that
//! match the published `M` and `nnz`** (Table VI). The traffic/roofline study
//! only depends on shapes and footprints; the generators additionally produce
//! symmetric positive-definite matrices so the *numeric* CG/BiCGStab solvers
//! converge (see DESIGN.md §2).

use crate::sparse::{CooMatrix, CsrMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2-D 5-point Laplacian on a `nx × ny` grid: SPD, `nnz ≈ 5·nx·ny`.
///
/// This is the canonical PDE-solver test matrix (HPCG itself uses a 27-point
/// 3-D stencil) and the structural stand-in for the paper's "2D/3D problem"
/// and fluid-dynamics datasets.
pub fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
    let m = nx * ny;
    let mut coo = CooMatrix::new(m, m);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 4.0);
            if x > 0 {
                coo.push(i, idx(x - 1, y), -1.0);
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), -1.0);
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), -1.0);
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 3-D 7-point Laplacian on a `nx × ny × nz` grid: SPD, `nnz ≈ 7·n`.
pub fn laplacian_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let m = nx * ny * nz;
    let mut coo = CooMatrix::new(m, m);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0);
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), -1.0);
                }
                if x + 1 < nx {
                    coo.push(i, idx(x + 1, y, z), -1.0);
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), -1.0);
                }
                if y + 1 < ny {
                    coo.push(i, idx(x, y + 1, z), -1.0);
                }
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), -1.0);
                }
                if z + 1 < nz {
                    coo.push(i, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// Symmetric positive-definite matrix with a *target* size and nnz:
/// a random symmetric pattern of `≈ nnz` off-diagonal entries plus a
/// diagonally-dominant diagonal. Used to match a SuiteSparse dataset's
/// published statistics exactly where no stencil fits.
pub fn random_spd(m: usize, target_nnz: usize, seed: u64) -> CsrMatrix {
    assert!(target_nnz >= m, "need at least the diagonal ({m} entries)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(m, m);
    // Off-diagonal pairs: each contributes 2 nnz. Draw within a band to mimic
    // the locality of PDE matrices (bandwidth ~ sqrt(m) keeps patterns realistic).
    let band = (m as f64).sqrt().ceil() as usize + 1;
    let off_pairs = (target_nnz.saturating_sub(m)) / 2;
    let mut row_weight = vec![0.0f64; m];
    let mut placed = std::collections::HashSet::with_capacity(off_pairs * 2);
    let mut attempts = 0usize;
    let mut count = 0usize;
    while count < off_pairs && attempts < off_pairs * 20 {
        attempts += 1;
        let r = rng.gen_range(0..m);
        let span = band.min(m - 1).max(1);
        let offset = rng.gen_range(1..=span);
        let c = if rng.gen_bool(0.5) && r >= offset {
            r - offset
        } else if r + offset < m {
            r + offset
        } else {
            continue;
        };
        let (lo, hi) = (r.min(c), r.max(c));
        if lo == hi || !placed.insert((lo, hi)) {
            continue;
        }
        let v = -rng.gen_range(0.1..1.0);
        coo.push(lo, hi, v);
        coo.push(hi, lo, v);
        row_weight[lo] += v.abs();
        row_weight[hi] += v.abs();
        count += 1;
    }
    // Diagonal dominance => SPD. Row 0 additionally gets a decisive boost so
    // the spectrum has a dominant, well-separated leading eigenvalue (as the
    // real SuiteSparse matrices these stand in for do): by Gershgorin its
    // disc then clears the rest of the spectrum by a constant factor, which
    // keeps power iteration well-posed on every seed.
    let wmax = row_weight.iter().cloned().fold(0.0f64, f64::max);
    for (i, w) in row_weight.iter().enumerate() {
        let boost = if i == 0 {
            1.2 * (2.0 * wmax + 1.5)
        } else {
            0.0
        };
        coo.push(i, i, w + 1.0 + boost + rng.gen_range(0.0..0.5));
    }
    coo.to_csr()
}

/// Random undirected graph adjacency (with self-loops, à la GCN's `Â = A + I`)
/// targeting a given nnz — the stand-in for cora / protein graphs.
pub fn random_graph_adjacency(vertices: usize, target_nnz: usize, seed: u64) -> CsrMatrix {
    assert!(
        target_nnz >= vertices,
        "adjacency needs at least the self-loops"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(vertices, vertices);
    for i in 0..vertices {
        coo.push(i, i, 1.0);
    }
    let off_pairs = (target_nnz - vertices) / 2;
    let mut placed = std::collections::HashSet::with_capacity(off_pairs * 2);
    let mut count = 0usize;
    let mut attempts = 0usize;
    while count < off_pairs && attempts < off_pairs * 40 {
        attempts += 1;
        let a = rng.gen_range(0..vertices);
        let b = rng.gen_range(0..vertices);
        if a == b {
            continue;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        if !placed.insert((lo, hi)) {
            continue;
        }
        coo.push(lo, hi, 1.0);
        coo.push(hi, lo, 1.0);
        count += 1;
    }
    coo.to_csr()
}

/// Scales a 2-D grid to approximately hit `(m, nnz)`: returns `(nx, ny)` such
/// that `nx·ny ≈ m`. Used by the dataset registry to pick stencil dimensions.
pub fn grid_for(m: usize) -> (usize, usize) {
    let nx = (m as f64).sqrt().round() as usize;
    let ny = m.div_ceil(nx.max(1));
    (nx.max(1), ny.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::spmm;
    use crate::DenseMatrix;

    #[test]
    fn laplacian_2d_shape_and_nnz() {
        let a = laplacian_2d(10, 10);
        assert_eq!(a.rows(), 100);
        // interior: 5 per row; edges fewer. nnz = 5*100 - 2*(10+10) = 460
        assert_eq!(a.nnz(), 460);
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn laplacian_3d_shape_and_symmetry() {
        let a = laplacian_3d(4, 4, 4);
        assert_eq!(a.rows(), 64);
        assert!(a.is_symmetric(1e-12));
        assert!(a.occupancy() > 4.0 && a.occupancy() < 7.0);
    }

    #[test]
    fn laplacian_is_positive_definite_ish() {
        // x^T A x > 0 for a few random-ish x (necessary condition check).
        let a = laplacian_2d(6, 6);
        for seed in 1..5u64 {
            let mut x = DenseMatrix::zeros(36, 1);
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            for i in 0..36 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                x.set(i, 0, ((s % 100) as f64 - 50.0) / 50.0 + 0.01);
            }
            let ax = spmm(&a, &x);
            let quad: f64 = (0..36).map(|i| x.get(i, 0) * ax.get(i, 0)).sum();
            assert!(quad > 0.0, "x^T A x = {quad} not positive");
        }
    }

    #[test]
    fn random_spd_hits_target_stats() {
        let a = random_spd(500, 3000, 42);
        assert_eq!(a.rows(), 500);
        let err = (a.nnz() as f64 - 3000.0).abs() / 3000.0;
        assert!(err < 0.05, "nnz {} vs target 3000", a.nnz());
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn random_spd_diagonally_dominant() {
        let a = random_spd(200, 1200, 7);
        for r in 0..200 {
            let diag = a.get(r, r);
            let off: f64 = a
                .row(r)
                .filter(|&(c, _)| c != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "row {r}: diag {diag} <= off-sum {off}");
        }
    }

    #[test]
    fn random_graph_has_self_loops_and_symmetry() {
        let g = random_graph_adjacency(300, 1500, 3);
        assert!(g.is_symmetric(1e-12));
        for i in 0..300 {
            assert_eq!(g.get(i, i), 1.0);
        }
        let err = (g.nnz() as f64 - 1500.0).abs() / 1500.0;
        assert!(err < 0.1, "nnz {}", g.nnz());
    }

    #[test]
    fn grid_for_covers_m() {
        for m in [100, 9604, 81920, 150102] {
            let (nx, ny) = grid_for(m);
            assert!(nx * ny >= m);
            assert!(nx * ny < m + nx + ny); // tight cover
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_spd(100, 600, 9), random_spd(100, 600, 9));
        assert_eq!(
            random_graph_adjacency(100, 500, 9),
            random_graph_adjacency(100, 500, 9)
        );
    }
}

//! Data layouts and swizzle (layout transformation) accounting.
//!
//! Challenge 4 of the paper (§III-B): when one operand has multiple consumers,
//! *preserving its on-chip layout* across those consumers is crucial — a
//! consumer that needs the transposed layout forces a swizzle, which costs a
//! full pass over the tensor. SCORE's loop-order selection minimizes the number
//! of swizzles (§V-B); this module provides the layout vocabulary and the cost
//! accounting it optimizes.

use serde::{Deserialize, Serialize};

/// Storage order of a 2-D tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// Rows are contiguous (C order). A consumer streaming along rows is
    /// layout-compatible.
    RowMajor,
    /// Columns are contiguous (Fortran order).
    ColMajor,
}

impl Layout {
    /// The transposed layout.
    pub fn transposed(self) -> Layout {
        match self {
            Layout::RowMajor => Layout::ColMajor,
            Layout::ColMajor => Layout::RowMajor,
        }
    }

    /// Linear index of `(row, col)` in a `rows × cols` tensor stored with this
    /// layout.
    pub fn index(self, rows: usize, cols: usize, row: usize, col: usize) -> usize {
        debug_assert!(row < rows && col < cols);
        match self {
            Layout::RowMajor => row * cols + col,
            Layout::ColMajor => col * rows + row,
        }
    }
}

/// Cost of serving a consumer that wants `wanted` from a tensor stored as
/// `stored`, in *extra* full-tensor passes (0 when compatible, 1 when a swizzle
/// is needed). The units are tensor-sized word transfers; callers multiply by
/// the tensor footprint.
pub fn swizzle_passes(stored: Layout, wanted: Layout) -> u64 {
    u64::from(stored != wanted)
}

/// Given a produced layout and the layouts wanted by each consumer, returns the
/// number of swizzles incurred. SCORE picks the produced layout minimizing this
/// (ties resolve to the producer's natural layout).
pub fn count_swizzles(produced: Layout, consumers: &[Layout]) -> u64 {
    consumers.iter().map(|&c| swizzle_passes(produced, c)).sum()
}

/// Chooses the production layout that minimizes total swizzles across
/// consumers; `natural` breaks ties (the producer's cheapest layout).
pub fn best_layout(natural: Layout, consumers: &[Layout]) -> Layout {
    let cost_nat = count_swizzles(natural, consumers);
    let cost_alt = count_swizzles(natural.transposed(), consumers);
    if cost_alt < cost_nat {
        natural.transposed()
    } else {
        natural
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposed_round_trips() {
        assert_eq!(Layout::RowMajor.transposed().transposed(), Layout::RowMajor);
    }

    #[test]
    fn index_math() {
        // 2x3 tensor: element (1,2).
        assert_eq!(Layout::RowMajor.index(2, 3, 1, 2), 5);
        assert_eq!(Layout::ColMajor.index(2, 3, 1, 2), 5); // col*rows+row = 2*2+1
        assert_eq!(Layout::RowMajor.index(2, 3, 0, 1), 1);
        assert_eq!(Layout::ColMajor.index(2, 3, 0, 1), 2);
    }

    #[test]
    fn swizzle_cost_zero_when_compatible() {
        assert_eq!(swizzle_passes(Layout::RowMajor, Layout::RowMajor), 0);
        assert_eq!(swizzle_passes(Layout::RowMajor, Layout::ColMajor), 1);
    }

    #[test]
    fn best_layout_minimizes_swizzles() {
        use Layout::*;
        // Two consumers want ColMajor, one wants RowMajor: produce ColMajor.
        assert_eq!(
            best_layout(RowMajor, &[ColMajor, ColMajor, RowMajor]),
            ColMajor
        );
        // Tie: keep the natural layout.
        assert_eq!(best_layout(RowMajor, &[ColMajor, RowMajor]), RowMajor);
        // No consumers: natural.
        assert_eq!(best_layout(ColMajor, &[]), ColMajor);
    }

    #[test]
    fn fig3_challenge4_example() {
        // Paper Fig 3(b) challenge 4: tensor S consumed row-major by ops 2 and 4;
        // producing it row-major avoids all swizzles.
        use Layout::*;
        assert_eq!(count_swizzles(RowMajor, &[RowMajor, RowMajor]), 0);
        assert_eq!(count_swizzles(ColMajor, &[RowMajor, RowMajor]), 2);
        assert_eq!(best_layout(ColMajor, &[RowMajor, RowMajor]), RowMajor);
    }
}

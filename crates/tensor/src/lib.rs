//! # cello-tensor — tensor substrate for the CELLO reproduction
//!
//! This crate provides everything the CELLO accelerator study needs to *describe*
//! and *execute* tensor algebra:
//!
//! - [`shape`]: ranks, extents, and skewness metrics (skewed GEMMs are the paper's
//!   central motivation, §III-A);
//! - [`einsum`]: einsum specifications (`"mk,kn->mn"`) with named ranks, contracted
//!   and uncontracted rank queries;
//! - [`intensity`]: arithmetic-intensity and roofline arithmetic (paper Fig 2,
//!   Eq 3–4);
//! - [`layout`]: row-/column-major layouts and swizzle (layout transformation)
//!   accounting (Challenge 4, §III-B);
//! - [`dense`]/[`sparse`]: dense matrices and CSR/CSC sparse matrices with COO
//!   builders (CG's `A` operand, §V-B "Handling sparsity");
//! - [`kernels`]: executable GEMM / SpMM / AXPY / small-inverse kernels, with
//!   parallel (rayon) variants — these make the workloads *numerically real*,
//!   so convergence of CG/BiCGStab can be tested, not just modeled;
//! - [`gen`]: synthetic dataset generators standing in for SuiteSparse matrices
//!   and OMEGA graphs (see DESIGN.md §2 for the substitution argument).

pub mod dense;
pub mod einsum;
pub mod gen;
pub mod intensity;
pub mod kernels;
pub mod layout;
pub mod shape;
pub mod sparse;

pub use dense::DenseMatrix;
pub use einsum::{EinsumSpec, RankKind};
pub use intensity::{ai_best_gemm, ai_skewed_limit, ArithmeticIntensity};
pub use layout::Layout;
pub use shape::{RankExtent, RankId, Shape2D, SkewClass};
pub use sparse::{CooMatrix, CscMatrix, CsrMatrix};

//! Arithmetic intensity and roofline arithmetic (paper §III-A, Fig 2).
//!
//! The paper quantifies reuse with *arithmetic intensity* (Williams et al.'s
//! roofline metric): operations per byte moved. Two results matter here:
//!
//! - **Eq 3**: `AI_best = MACs / minimum DRAM accesses`, where for an isolated
//!   operation every operand begins and ends in DRAM, so the minimum traffic of
//!   an `M×K×N` GEMM is `MK + KN + MN` words.
//! - **Eq 4**: as `K/M → 0` with `K = N`, `AI_best → N/2` ops/word — i.e. for
//!   CG-like skewed GEMMs with `N ≤ 16` the operation is memory-bound *even in
//!   the best case* (≤ 2 ops/byte at 4-byte words), which is the whole reason
//!   CELLO chases inter-operation reuse instead.

use serde::{Deserialize, Serialize};

/// An arithmetic-intensity measurement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArithmeticIntensity {
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Words moved to/from DRAM (minimum / modeled).
    pub words: u64,
    /// Bytes per word.
    pub word_bytes: u32,
}

impl ArithmeticIntensity {
    /// Ops per word.
    pub fn ops_per_word(&self) -> f64 {
        self.macs as f64 / self.words as f64
    }

    /// Ops per byte (the roofline x-axis).
    pub fn ops_per_byte(&self) -> f64 {
        self.macs as f64 / (self.words as f64 * self.word_bytes as f64)
    }
}

/// Best-case arithmetic intensity of an isolated dense `M×K×N` GEMM (Eq 3):
/// all three tensors touched exactly once.
pub fn ai_best_gemm(m: u64, k: u64, n: u64, word_bytes: u32) -> ArithmeticIntensity {
    ArithmeticIntensity {
        macs: m * k * n,
        words: m * k + k * n + m * n,
        word_bytes,
    }
}

/// The Eq 4 limit: for `K = N` and `K/M → 0`, `AI_best → N/2` ops/word.
pub fn ai_skewed_limit(n: u64) -> f64 {
    n as f64 / 2.0
}

/// Roofline model (paper Fig 2b): attainable throughput given a machine's
/// peak compute and memory bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak MAC throughput in operations/second (e.g. 16384 MACs × 1 GHz).
    pub peak_ops_per_sec: f64,
    /// DRAM bandwidth in bytes/second.
    pub bytes_per_sec: f64,
}

impl Roofline {
    /// Attainable ops/second at a given arithmetic intensity (ops/byte):
    /// `min(peak, AI × BW)`.
    pub fn attainable(&self, ops_per_byte: f64) -> f64 {
        (ops_per_byte * self.bytes_per_sec).min(self.peak_ops_per_sec)
    }

    /// The machine balance point (ops/byte) above which kernels are
    /// compute-bound. For the paper's 16384 MACs @ 1 GHz and 1 TB/s this is
    /// 16.384 ops/byte; at 250 GB/s it is 65.536 ops/byte (§VII-C1).
    pub fn ridge_point(&self) -> f64 {
        self.peak_ops_per_sec / self.bytes_per_sec
    }

    /// True when a kernel at this intensity is memory-bound.
    pub fn memory_bound(&self, ops_per_byte: f64) -> bool {
        ops_per_byte < self.ridge_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Fig 2(a): regular 512^3 GEMM has AI = 42.66 ops/byte at 4-byte words.
    #[test]
    fn regular_gemm_intensity_matches_paper() {
        let ai = ai_best_gemm(512, 512, 512, 4);
        assert!(
            (ai.ops_per_byte() - 42.66).abs() < 0.01,
            "{}",
            ai.ops_per_byte()
        );
        // ops/word = 512^3 / (3 * 512^2) = 170.67
        assert!((ai.ops_per_word() - 170.666).abs() < 1e-2);
    }

    /// Paper Fig 2(a): skewed 524288x16x16 GEMM has AI = 2 ops/byte.
    #[test]
    fn skewed_gemm_intensity_matches_paper() {
        let ai = ai_best_gemm(524_288, 16, 16, 4);
        assert!(
            (ai.ops_per_byte() - 2.0).abs() < 0.01,
            "{}",
            ai.ops_per_byte()
        );
    }

    /// Eq 4: the limit N/2 ops/word, and the concrete skewed GEMM approaches it.
    #[test]
    fn eq4_limit() {
        assert_eq!(ai_skewed_limit(16), 8.0);
        assert_eq!(ai_skewed_limit(1), 0.5);
        let ai = ai_best_gemm(524_288, 16, 16, 4);
        // 8 ops/word, within the K/M -> 0 limit's tolerance at M = 524288.
        assert!((ai.ops_per_word() - 8.0).abs() < 0.01);
    }

    /// §VII-C1: ridge point moves from 16.384 to 65.536 ops/byte when bandwidth
    /// drops from 1 TB/s to 250 GB/s.
    #[test]
    fn ridge_points_match_paper() {
        let peak = 16_384.0e9; // 16384 MACs @ 1 GHz
        let fast = Roofline {
            peak_ops_per_sec: peak,
            bytes_per_sec: 1.0e12,
        };
        let slow = Roofline {
            peak_ops_per_sec: peak,
            bytes_per_sec: 250.0e9,
        };
        assert!((fast.ridge_point() - 16.384).abs() < 1e-9);
        assert!((slow.ridge_point() - 65.536).abs() < 1e-9);
    }

    #[test]
    fn attainable_clamps_to_peak() {
        let r = Roofline {
            peak_ops_per_sec: 1e12,
            bytes_per_sec: 1e11,
        };
        assert_eq!(r.attainable(1.0), 1e11); // memory bound
        assert_eq!(r.attainable(1e9), 1e12); // compute bound
        assert!(r.memory_bound(1.0));
        assert!(!r.memory_bound(100.0));
    }

    /// Fig 2(b): the skewed GEMM is memory-bound, the regular one compute-bound
    /// at 1 TB/s.
    #[test]
    fn fig2_roofline_classification() {
        let r = Roofline {
            peak_ops_per_sec: 16_384.0e9,
            bytes_per_sec: 1.0e12,
        };
        assert!(r.memory_bound(ai_best_gemm(524_288, 16, 16, 4).ops_per_byte()));
        assert!(!r.memory_bound(ai_best_gemm(512, 512, 512, 4).ops_per_byte()));
    }
}

//! Dense matrices with explicit layout.
//!
//! `DenseMatrix` is the numeric carrier for the workloads' dense operands
//! (CG's `P`, `R`, `S`, `X` and the small Greek-letter tensors). It is a flat
//! `Vec<f64>` plus a [`Layout`], so kernels can exercise the same
//! row-major/col-major distinctions the scheduler reasons about.

use crate::layout::Layout;
use crate::shape::Shape2D;
use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f64` with an explicit storage layout.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    shape: Shape2D,
    layout: Layout,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::zeros_with_layout(rows, cols, Layout::RowMajor)
    }

    /// All-zeros matrix with a chosen layout.
    pub fn zeros_with_layout(rows: usize, cols: usize, layout: Layout) -> Self {
        Self {
            shape: Shape2D::new(rows, cols),
            layout,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data slice.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self {
            shape: Shape2D::new(rows, cols),
            layout: Layout::RowMajor,
            data: data.to_vec(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.shape.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.shape.cols
    }

    /// The shape.
    pub fn shape(&self) -> Shape2D {
        self.shape
    }

    /// The storage layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Raw data slice (layout-ordered).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice (layout-ordered).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[self
            .layout
            .index(self.shape.rows, self.shape.cols, row, col)]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        let idx = self
            .layout
            .index(self.shape.rows, self.shape.cols, row, col);
        self.data[idx] = v;
    }

    /// In-place scaled accumulation `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        if self.layout == other.layout {
            for (d, s) in self.data.iter_mut().zip(other.data.iter()) {
                *d += alpha * s;
            }
        } else {
            for r in 0..self.rows() {
                for c in 0..self.cols() {
                    let v = self.get(r, c) + alpha * other.get(r, c);
                    self.set(r, c, v);
                }
            }
        }
    }

    /// Returns a copy converted to the requested layout (a *swizzle*; this is
    /// the full-tensor pass whose cost SCORE minimizes).
    pub fn to_layout(&self, layout: Layout) -> DenseMatrix {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = DenseMatrix::zeros_with_layout(self.rows(), self.cols(), layout);
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                out.set(r, c, self.get(r, c));
            }
        }
        out
    }

    /// Transposed copy (row-major result).
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols(), self.rows());
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max absolute elementwise difference against another matrix.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.shape, other.shape);
        let mut worst: f64 = 0.0;
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                worst = worst.max((self.get(r, c) - other.get(r, c)).abs());
            }
        }
        worst
    }

    /// Extracts the diagonal (for CG's convergence check `diag(Γ) ≤ ε`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows().min(self.cols()))
            .map(|i| self.get(i, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn get_set_both_layouts() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let mut m = DenseMatrix::zeros_with_layout(3, 4, layout);
            m.set(2, 1, 7.5);
            assert_eq!(m.get(2, 1), 7.5);
            assert_eq!(m.get(1, 2), 0.0);
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn to_layout_preserves_values() {
        let m = DenseMatrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let c = m.to_layout(Layout::ColMajor);
        assert_eq!(c.layout(), Layout::ColMajor);
        assert_eq!(c.max_abs_diff(&m.clone()), 0.0);
        // Underlying storage differs:
        assert_ne!(c.data(), m.data());
        assert_eq!(c.data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn transpose_correct() {
        let m = DenseMatrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.get(0, 1), 4.0);
    }

    #[test]
    fn axpy_mixed_layouts() {
        let mut a = DenseMatrix::from_rows(2, 2, &[1., 1., 1., 1.]);
        let b = DenseMatrix::from_rows(2, 2, &[1., 2., 3., 4.]).to_layout(Layout::ColMajor);
        a.axpy(2.0, &b);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 9.0);
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = DenseMatrix::from_rows(1, 2, &[3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn axpy_rejects_shape_mismatch() {
        let mut a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::zeros(2, 3);
        a.axpy(1.0, &b);
    }
}

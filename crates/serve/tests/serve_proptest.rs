//! Property + integration tests for the serving subsystem:
//!
//! - **protocol totality**: arbitrary byte soup and structurally-mutated
//!   frames through `Service::handle_line` produce exactly one valid JSON
//!   response line — `status: ok` or a typed error — and never a panic;
//! - **round-trip**: randomized well-formed requests survive
//!   render → parse → render;
//! - **coalescing**: k identical concurrent requests trigger exactly one
//!   tuner run (the acceptance shape, at the service level);
//! - **cache-hit differential**: a hit response is bit-identical (schedule
//!   key and all four objectives) to an independent fresh compilation of
//!   the same request.

use cello_bench::json::Json;
use cello_core::accel::CelloConfig;
use cello_search::{SpaceConfig, Strategy, Tuner};
use cello_serve::protocol::{parse_frame, CacheTag, Frame, Request, Response};
use cello_serve::Service;
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::FV1;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cello-serveit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A cheap-but-real compile request (fv1, one unrolled iteration, beam 2).
fn tiny_request(id: u64) -> Request {
    let mut req = Request::cg("fv1");
    req.id = id;
    req.iterations = 1;
    req.strategy = "beam2".into();
    req
}

/// Builds a randomized — always well-formed — request.
fn random_request(seed: u64) -> Request {
    let pick = |k: u64, n: u64| (seed.wrapping_mul(0x9E37_79B9).wrapping_add(k * 101)) % n;
    let workloads = ["cg", "hpcg", "gcn", "bicgstab"];
    let datasets = ["fv1", "G2_circuit", "cora", "NASA4704", "protein"];
    let strategies = [
        "beam2",
        "beam8",
        "exhaustive",
        "random16@3",
        "prefilter0.5+beam4",
    ];
    let mut req = Request::cg(datasets[pick(1, datasets.len() as u64) as usize]);
    req.id = seed;
    req.workload = workloads[pick(0, workloads.len() as u64) as usize].into();
    if req.workload == "hpcg" {
        req.nx = Some(8 + pick(2, 40));
    }
    if pick(3, 3) == 0 {
        req.dataset = None;
        req.m = Some(1 + pick(4, 100_000));
        req.nnz = Some(1 + pick(5, 1_000_000));
    }
    req.n = 1 + pick(6, 64);
    req.iterations = 1 + pick(7, 4) as u32;
    req.layers = 1 + pick(8, 4) as u32;
    req.nodes = match pick(9, 3) {
        0 => vec![1],
        1 => vec![1, 4],
        _ => vec![1, 2, 16],
    };
    req.strategy = strategies[pick(10, strategies.len() as u64) as usize].into();
    req.per_phase_sram = pick(11, 2) == 1;
    req.widened = pick(12, 2) == 1;
    req.sram_mb = 1 << pick(13, 4);
    req.emit_dot = pick(14, 2) == 1;
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed requests round-trip through the wire text exactly.
    #[test]
    fn request_render_parse_round_trip(seed in 0u64..1_000_000) {
        let req = random_request(seed);
        let line = req.to_line();
        match parse_frame(&line) {
            Ok(Frame::Compile(back)) => prop_assert_eq!(back, req),
            other => prop_assert!(false, "{:?} did not parse: {:?}", line, other),
        }
    }

    /// Arbitrary bytes through the full line handler: one valid JSON
    /// response, ok or typed error, never a panic. (The service handles the
    /// line end to end, so garbage that happens to parse as a tiny compile
    /// request really compiles — which is why the byte budget stays small.)
    #[test]
    fn arbitrary_bytes_never_panic_the_handler(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let dir = tmpdir("fuzz-bytes");
        let service = Service::open(&dir).unwrap();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let (resp, _) = service.handle_line(&line);
        let doc = Json::parse(&resp).expect("response is valid JSON");
        let status = doc.get("status").and_then(Json::as_str);
        prop_assert!(status == Some("ok") || status == Some("error"), "{}", resp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Structurally-mutated JSON frames (valid JSON, hostile shapes) land in
    /// typed errors, never panics.
    #[test]
    fn mutated_frames_get_typed_errors(seed in 0u64..100_000) {
        let mutations = [
            r#"{"workload": 3}"#.to_string(),
            r#"{"workload": "cg", "dataset": 7}"#.to_string(),
            r#"{"workload": "cg", "nodes": "four"}"#.to_string(),
            r#"{"workload": "cg", "nodes": [1.5]}"#.to_string(),
            r#"{"workload": "cg", "iterations": -3}"#.to_string(),
            r#"{"workload": "cg", "sram_mb": 1e30}"#.to_string(),
            format!(r#"{{"workload": "cg", "m": {}}}"#, u64::MAX),
            format!(r#"{{"op": "op{seed}"}}"#),
            format!(r#"{{"workload": "cg", "strategy": "beam{seed}e"}}"#),
            format!(r#"[{seed}]"#),
        ];
        let line = &mutations[(seed % mutations.len() as u64) as usize];
        let err = parse_frame(line).expect_err(line);
        prop_assert!(!err.kind().is_empty());
        prop_assert!(Json::parse(&cello_serve::protocol::error_line(0, &err)).is_ok());
    }
}

/// The coalescing acceptance criterion at the service level: k identical
/// concurrent requests trigger exactly one tuner run, everyone gets the
/// same schedule, and exactly one caller is the leader.
#[test]
fn k_identical_concurrent_requests_compile_once() {
    let dir = tmpdir("coalesce");
    let service = Arc::new(Service::open(&dir).unwrap());
    let k = 8;
    let barrier = std::sync::Barrier::new(k);
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let service = Arc::clone(&service);
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    service.handle(&tiny_request(i as u64)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        service.compiles(),
        1,
        "exactly one tuner run for {k} requests"
    );
    let leaders = responses
        .iter()
        .filter(|r| r.cache == CacheTag::Miss)
        .count();
    let coalesced = responses
        .iter()
        .filter(|r| r.cache == CacheTag::Coalesced || r.cache == CacheTag::Hit)
        .count();
    assert_eq!(leaders, 1, "{responses:?}");
    assert_eq!(coalesced, k - 1);
    // Everyone got the same schedule.
    for r in &responses {
        assert_eq!(r.best_key, responses[0].best_key);
        assert_eq!(r.tuned_cycles, responses[0].tuned_cycles);
        assert_eq!(r.fingerprint, responses[0].fingerprint);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache-hit differential: a served hit is bit-identical to compiling
/// the same request fresh — same canonical schedule key, same four
/// objectives, same baseline — because the store replays the exact outcome
/// rather than re-deriving anything.
#[test]
fn cache_hit_is_bit_identical_to_fresh_compilation() {
    let dir = tmpdir("differential");
    let service = Service::open(&dir).unwrap();
    let miss = service.handle(&tiny_request(1)).unwrap();
    assert_eq!(miss.cache, CacheTag::Miss);
    let hit = service.handle(&tiny_request(2)).unwrap();
    assert_eq!(hit.cache, CacheTag::Hit);

    // Independent ground truth: the same workload through a fresh tuner,
    // exactly as the service builds it.
    let dag = build_cg_dag(&CgParams::from_dataset(&FV1, 16, 1));
    let accel = CelloConfig::paper();
    let cfg = SpaceConfig::with_nodes(&[1]);
    let out = Tuner::new(&dag, &accel, cfg).tune(&Strategy::Beam { width: 2 });

    for resp in [&miss, &hit] {
        assert_eq!(resp.best_key, out.best_traffic.key.hex());
        assert_eq!(resp.tuned_cycles, out.best_cycles.cost.cycles);
        assert_eq!(resp.tuned_dram_bytes, out.best_traffic.cost.dram_bytes);
        assert_eq!(
            resp.tuned_noc_hop_bytes,
            out.best_traffic.cost.noc_hop_bytes
        );
        assert_eq!(
            resp.tuned_traffic_bytes,
            out.best_traffic.cost.total_traffic_bytes()
        );
        assert_eq!(resp.base_cycles, out.baseline.cost.cycles);
        assert_eq!(resp.pareto_size as usize, out.pareto.len().min(12));
    }
    // And the hit cost the service zero fresh evaluations.
    assert_eq!(hit.evaluations, 0);
    assert!(miss.evaluations > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Near-miss warm start at the service level: the warm compile reuses the
/// family record's Pareto front and spends strictly fewer sim evaluations
/// than the cold compile of the same family did, while never losing to the
/// paper heuristic.
#[test]
fn warm_start_spends_fewer_evaluations_than_cold() {
    let dir = tmpdir("warmevals");
    let service = Service::open(&dir).unwrap();
    let mut cold_req = tiny_request(1);
    cold_req.strategy = "beam8".into();
    let cold = service.handle(&cold_req).unwrap();
    assert_eq!(cold.cache, CacheTag::Miss);
    let mut warm_req = tiny_request(2);
    warm_req.strategy = "beam8".into();
    warm_req.sram_mb = 8; // near miss: same DAG + strategy, different SRAM
    let warm = service.handle(&warm_req).unwrap();
    assert_eq!(warm.cache, CacheTag::Warm);
    assert!(
        warm.evaluations < cold.evaluations,
        "warm {} !< cold {}",
        warm.evaluations,
        cold.evaluations
    );
    assert!(warm.tuned_cycles <= warm.base_cycles);
    let _ = std::fs::remove_dir_all(&dir);
}

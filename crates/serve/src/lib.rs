//! # cello-serve — the concurrent schedule-compilation service
//!
//! The ROADMAP's serving milestone: the stack can *find* co-designed
//! SCORE × CHORD schedules (`cello-search`), but until now every consumer
//! paid the full search cost every time. This crate amortizes it behind a
//! long-running daemon:
//!
//! - [`protocol`]: newline-delimited JSON over TCP — compile requests
//!   (workload + pattern + search config), typed error responses, and the
//!   portable candidate specs the store persists;
//! - [`error`]: the typed request-path error ([`ServeError`]) — one
//!   malformed request can never kill the daemon;
//! - [`store`]: the persistent schedule cache, one collision-checked JSON
//!   record per workload fingerprint (`cello_search::fingerprint`), with
//!   *family* (same DAG + strategy, different SRAM/nodes) lookups feeding
//!   warm starts;
//! - [`coalesce`]: in-flight request coalescing — k identical concurrent
//!   requests trigger exactly one tuner run;
//! - [`service`]: the pipeline: fingerprint → store hit | coalesced
//!   (warm- or cold-)compile → persist → respond, panic-fenced end to end;
//! - [`server`]: the `std::net` TCP accept loop over the vendored rayon
//!   stand-in's worker pool.
//!
//! Binaries: `cello_serve` (daemon), `cello_client` (one-shot CLI client),
//! `loadgen` (N concurrent clients over a mixed CG/HPCG/GCN/BiCGStab
//! stream; writes `BENCH_serve.json` with p50/p95 latency, throughput, and
//! cache hit rate — the serving counterpart of `cello_dse --quick`).

pub mod coalesce;
pub mod error;
pub mod protocol;
pub mod server;
pub mod service;
pub mod store;

pub use coalesce::Coalescer;
pub use error::ServeError;
pub use protocol::{CacheTag, Frame, Request, Response};
pub use server::serve;
pub use service::{Service, DEFAULT_FLIGHT_DEPTH};
pub use store::{ScheduleStore, StoredOutcome};

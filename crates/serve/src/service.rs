//! The compilation service: request → workload → fingerprint → (store |
//! coalesced warm/cold search) → response.
//!
//! The full request path, in order:
//!
//! 1. build the workload DAG + accelerator the request names (typed errors
//!    for unknown datasets / impossible parameters);
//! 2. fingerprint (DAG, accel, space, strategy) — `cello_search::fingerprint`;
//! 3. **exact store hit**: collision-checked read of the persistent cache,
//!    served without touching the tuner (this is the ≥100× path);
//! 4. otherwise **coalesce** on the fingerprint: one leader compiles,
//!    concurrent identical requests share its result;
//! 5. the leader looks for a **family** record (same DAG + strategy,
//!    different SRAM/nodes) and, when found, warm-starts a *narrowed* beam
//!    from its stored Pareto seeds ([`cello_search::Tuner::tune_seeded`]);
//!    cold otherwise;
//! 6. the outcome is persisted and answered.
//!
//! Every step is panic-fenced: a compile that panics becomes a typed
//! `internal` error response and the daemon keeps serving.

use crate::coalesce::Coalescer;
use crate::error::ServeError;
use crate::protocol::{compact, error_line, parse_frame, CacheTag, Frame, Request, Response};
use crate::store::{ScheduleStore, StoredOutcome};
use cello_bench::json::Json;
use cello_core::accel::CelloConfig;
use cello_core::score::binding::Schedule;
use cello_graph::dag::TensorDag;
use cello_graph::dot::to_dot_annotated;
use cello_obs::metrics::{Counter, Histogram, Registry};
use cello_obs::window::WindowedHistogram;
use cello_obs::{FlightRecorder, SpanRecorder};
use cello_search::fingerprint::{fingerprint, Fingerprint};
use cello_search::{SpaceConfig, Strategy, Tuner};
use cello_workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::{registry, Dataset, DatasetKind};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};
use cello_workloads::hpcg::{build_hpcg_dag, HpcgParams};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// How many finished request span trees the flight recorder retains for
/// `trace` requests (`cello_serve --flight-depth` overrides).
pub const DEFAULT_FLIGHT_DEPTH: usize = 128;

/// The live `request_us` window: 60 one-second buckets, so `metrics-prom`
/// reports p95-over-the-last-60s instead of p95-since-boot.
const REQUEST_WINDOW_BUCKETS: usize = 60;
const REQUEST_WINDOW_BUCKET_SECS: u64 = 1;

/// The service's registry-backed instruments (all saturating, poison-proof
/// by construction). Handles are resolved once at `open` so the request
/// path never takes the registry lock.
struct Instruments {
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    ok: Arc<Counter>,
    errors: Arc<Counter>,
    hits: Arc<Counter>,
    warm: Arc<Counter>,
    misses: Arc<Counter>,
    coalesced: Arc<Counter>,
    compiles: Arc<Counter>,
    tune_us: Arc<Histogram>,
    request_us: Arc<Histogram>,
    /// Sliding 60-second window over request latencies (feeds the
    /// `request_us_window` summary in `metrics-prom`).
    request_us_window: WindowedHistogram,
}

impl Instruments {
    fn new(registry: Arc<Registry>) -> Self {
        Self {
            requests: registry.counter("requests_total"),
            ok: registry.counter("responses_ok"),
            errors: registry.counter("errors_total"),
            hits: registry.counter("cache_hits"),
            warm: registry.counter("cache_warm"),
            misses: registry.counter("cache_misses"),
            coalesced: registry.counter("coalesced_requests"),
            compiles: registry.counter("compiles_total"),
            tune_us: registry.histogram("tune_us"),
            request_us: registry.histogram("request_us"),
            request_us_window: WindowedHistogram::new(
                REQUEST_WINDOW_BUCKETS,
                REQUEST_WINDOW_BUCKET_SECS,
            ),
            registry,
        }
    }
}

/// What one leader's compilation produced, shared with coalesced followers.
#[derive(Clone)]
struct CompileResult {
    rec: Arc<StoredOutcome>,
    cache: CacheTag,
}

/// The schedule-compilation service (transport-agnostic; `server` puts it
/// behind TCP, tests and `loadgen --in-process` call it directly).
pub struct Service {
    store: ScheduleStore,
    coalescer: Coalescer<Result<CompileResult, ServeError>>,
    obs: Instruments,
    flights: FlightRecorder,
}

impl Service {
    /// Opens the service over a persistent cache directory, with its own
    /// private metrics registry (so parallel tests never share counters).
    pub fn open(cache_dir: &Path) -> Result<Self, ServeError> {
        Self::open_with_registry(cache_dir, Arc::new(Registry::new()))
    }

    /// Opens the service recording into `registry`. The daemon passes
    /// `cello_obs::metrics::global()` so one `metrics` snapshot carries both
    /// the service counters and the tuner's `search_*` counters (which
    /// `cello-search` records globally).
    pub fn open_with_registry(
        cache_dir: &Path,
        registry: Arc<Registry>,
    ) -> Result<Self, ServeError> {
        Self::open_with_options(cache_dir, registry, DEFAULT_FLIGHT_DEPTH)
    }

    /// [`open_with_registry`](Self::open_with_registry) with an explicit
    /// flight-recorder ring depth (`cello_serve --flight-depth`). The
    /// configured depth is published as the `flight_depth` gauge so a
    /// metrics scrape can tell how much trace history a daemon keeps.
    pub fn open_with_options(
        cache_dir: &Path,
        registry: Arc<Registry>,
        flight_depth: usize,
    ) -> Result<Self, ServeError> {
        let flight_depth = flight_depth.max(1);
        registry.gauge("flight_depth").set(flight_depth as i64);
        Ok(Self {
            store: ScheduleStore::open(cache_dir)?,
            coalescer: Coalescer::new(),
            obs: Instruments::new(registry),
            flights: FlightRecorder::new(flight_depth),
        })
    }

    /// Total tuner runs this process performed (the coalescing test's
    /// observable: k identical concurrent requests must move this by 1).
    pub fn compiles(&self) -> u64 {
        self.obs.compiles.get()
    }

    /// The registry this service records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// The flight recorder holding recent request span trees.
    pub fn flights(&self) -> &FlightRecorder {
        &self.flights
    }

    /// Number of records in the persistent store.
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Handles one wire line. Returns the response line (never panics,
    /// always valid JSON) plus whether a shutdown was requested.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match parse_frame(line) {
            Err(e) => {
                self.obs.errors.inc();
                (error_line(0, &e), false)
            }
            Ok(Frame::Stats { id }) => (self.stats_line(id), false),
            Ok(Frame::Metrics { id }) => (self.metrics_line(id), false),
            Ok(Frame::MetricsProm { id }) => (self.metrics_prom_line(id), false),
            Ok(Frame::Trace { id }) => (self.trace_line(id), false),
            Ok(Frame::Shutdown { id }) => (
                compact(&Json::Obj(vec![
                    ("id".into(), Json::int(id)),
                    ("status".into(), Json::Str("ok".into())),
                    ("op".into(), Json::Str("shutdown".into())),
                ])),
                true,
            ),
            Ok(Frame::Compile(req)) => {
                self.obs.requests.inc();
                // Panic fence: a compile bug answers `internal`, the daemon
                // lives on.
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.handle(&req)))
                        .unwrap_or_else(|panic| {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "compile panicked".into());
                            Err(ServeError::Internal(msg))
                        });
                match outcome {
                    Ok(resp) => {
                        self.obs.ok.inc();
                        (compact(&resp.to_json()), false)
                    }
                    Err(e) => {
                        self.obs.errors.inc();
                        (error_line(req.id, &e), false)
                    }
                }
            }
        }
    }

    /// Handles one parsed compile request, recording its staged span tree
    /// (build → lookup → coalesce/tune → respond) into the flight recorder.
    pub fn handle(&self, req: &Request) -> Result<Response, ServeError> {
        let started = Instant::now();
        let mut flight = SpanRecorder::new("request");
        flight.arg("id", req.id);
        flight.arg("workload", req.workload.as_str());
        if let Some(d) = &req.dataset {
            flight.arg("dataset", d.as_str());
        }
        let result = self.handle_staged(req, started, &mut flight);
        match &result {
            Ok(resp) => flight.arg("cache", resp.cache.as_str()),
            Err(e) => flight.arg("error", e.kind()),
        }
        let elapsed_us = started.elapsed().as_micros() as u64;
        self.obs.request_us.record(elapsed_us);
        self.obs.request_us_window.record(elapsed_us);
        self.flights.push(flight.finish());
        result
    }

    fn handle_staged(
        &self,
        req: &Request,
        started: Instant,
        flight: &mut SpanRecorder,
    ) -> Result<Response, ServeError> {
        let (dag, accel, cfg, strategy, fp) = flight.timed("build", |_| {
            let (dag, accel) = build_workload(req)?;
            let strategy = Strategy::parse(&req.strategy)
                .ok_or_else(|| ServeError::UnknownStrategy(req.strategy.clone()))?;
            let cfg = space_of(req, &accel);
            let fp = fingerprint(&dag, &accel, &cfg, &strategy);
            Ok::<_, ServeError>((dag, accel, cfg, strategy, fp))
        })?;

        if let Some(rec) = flight.timed("lookup", |_| self.store.lookup(&fp)) {
            self.obs.hits.inc();
            return Ok(flight.timed("respond", |_| {
                self.respond(req, &fp, &rec, CacheTag::Hit, started, &dag, &accel)
            }));
        }

        let (result, shared) = flight.timed("coalesce", |span| {
            self.coalescer.run(&fp.hash, || {
                span.timed("tune", |_| self.compile(&dag, &accel, &cfg, &strategy, &fp))
            })
        });
        let result = result?;
        let tag = if shared {
            CacheTag::Coalesced
        } else {
            result.cache
        };
        match tag {
            CacheTag::Hit => &self.obs.hits,
            CacheTag::Warm => &self.obs.warm,
            CacheTag::Miss => &self.obs.misses,
            CacheTag::Coalesced => &self.obs.coalesced,
        }
        .inc();
        Ok(flight.timed("respond", |_| {
            self.respond(req, &fp, &result.rec, tag, started, &dag, &accel)
        }))
    }

    /// The leader path under coalescing: re-check the store (an identical
    /// leader may have landed between our miss and acquiring the slot),
    /// then warm- or cold-compile, persist, and share.
    fn compile(
        &self,
        dag: &TensorDag,
        accel: &CelloConfig,
        cfg: &SpaceConfig,
        strategy: &Strategy,
        fp: &Fingerprint,
    ) -> Result<CompileResult, ServeError> {
        if let Some(rec) = self.store.lookup(fp) {
            return Ok(CompileResult {
                rec: Arc::new(rec),
                cache: CacheTag::Hit,
            });
        }
        let family = self.store.lookup_family(fp);
        let tuner = Tuner::new(dag, accel, cfg.clone());
        let tune_started = Instant::now();
        let (out, cache) = match &family {
            Some(rec) => (
                tuner.tune_seeded(&warm_strategy(strategy), &rec.seeds()),
                CacheTag::Warm,
            ),
            None => (tuner.tune(strategy), CacheTag::Miss),
        };
        self.obs
            .tune_us
            .record(tune_started.elapsed().as_micros() as u64);
        self.obs.compiles.inc();
        cello_obs::debug!(
            "serve",
            "compiled {} ({}): {} evals, {} surrogate",
            fp.hash,
            cache.as_str(),
            out.evaluations,
            out.surrogate_scored
        );
        let rec = StoredOutcome::from_outcome(fp, &out);
        if let Err(e) = self.store.insert(fp, &rec) {
            // Serving beats caching: answer from the in-memory outcome and
            // let the next identical request recompile.
            cello_obs::warn!("serve", "could not persist {}: {e}", fp.hash);
        }
        Ok(CompileResult {
            rec: Arc::new(rec),
            cache,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn respond(
        &self,
        req: &Request,
        fp: &Fingerprint,
        rec: &StoredOutcome,
        cache: CacheTag,
        started: Instant,
        dag: &TensorDag,
        accel: &CelloConfig,
    ) -> Response {
        let dot = req.emit_dot.then(|| {
            let schedule = rec.best.candidate.build(dag);
            schedule_dot(dag, &schedule, accel)
        });
        Response {
            id: req.id,
            fingerprint: fp.hash.clone(),
            family: fp.family.clone(),
            cache,
            compile_micros: started.elapsed().as_micros() as u64,
            strategy: rec.strategy.clone(),
            best_key: rec.best.key.clone(),
            base_cycles: rec.base_cycles,
            tuned_cycles: rec.tuned_cycles,
            tuned_dram_bytes: rec.best.cost.dram_bytes,
            tuned_noc_hop_bytes: rec.best.cost.noc_hop_bytes,
            tuned_traffic_bytes: rec.best.cost.total_traffic_bytes(),
            tuned_energy_pj: rec.tuned_energy_pj,
            evaluations: match cache {
                CacheTag::Hit => 0,
                _ => rec.evaluations,
            },
            surrogate_scored: match cache {
                CacheTag::Hit => 0,
                _ => rec.surrogate_scored,
            },
            pareto_size: rec.pareto.len() as u64,
            dot,
        }
    }

    fn stats_line(&self, id: u64) -> String {
        let c = &self.obs;
        compact(&Json::Obj(vec![
            ("id".into(), Json::int(id)),
            ("status".into(), Json::Str("ok".into())),
            ("op".into(), Json::Str("stats".into())),
            ("requests".into(), Json::int(c.requests.get())),
            ("ok".into(), Json::int(c.ok.get())),
            ("errors".into(), Json::int(c.errors.get())),
            ("hits".into(), Json::int(c.hits.get())),
            ("warm".into(), Json::int(c.warm.get())),
            ("misses".into(), Json::int(c.misses.get())),
            ("coalesced".into(), Json::int(c.coalesced.get())),
            ("compiles".into(), Json::int(c.compiles.get())),
            ("store_records".into(), Json::int(self.store.len() as u64)),
            (
                "store_collisions".into(),
                Json::int(self.store.collisions()),
            ),
            (
                "in_flight".into(),
                Json::int(self.coalescer.in_flight() as u64),
            ),
        ]))
    }

    /// Point-in-time gauges refresh at snapshot time (shared by the
    /// `metrics` and `metrics-prom` ops).
    fn refresh_gauges(&self) {
        self.obs
            .registry
            .gauge("in_flight")
            .set(self.coalescer.in_flight() as i64);
        self.obs
            .registry
            .gauge("store_records")
            .set(self.store.len() as i64);
        self.obs
            .registry
            .gauge("flight_spans")
            .set(self.flights.len() as i64);
    }

    /// The `metrics` op: the full registry snapshot — counters, gauges, and
    /// histogram summaries (count/mean/min/max/p50/p95/p99).
    fn metrics_line(&self, id: u64) -> String {
        self.refresh_gauges();
        let snap = self.obs.registry.snapshot();
        let counters = Json::Obj(
            snap.counters
                .iter()
                .map(|(name, v)| (name.clone(), Json::int(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            snap.gauges
                .iter()
                .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            snap.histograms
                .iter()
                .map(|(name, h)| {
                    let empty = h.count == 0;
                    (
                        name.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::int(h.count)),
                            ("mean".into(), Json::Num(h.mean())),
                            ("min".into(), Json::int(if empty { 0 } else { h.min })),
                            ("max".into(), Json::int(h.max)),
                            ("p50".into(), Json::int(h.percentile(50.0))),
                            ("p95".into(), Json::int(h.percentile(95.0))),
                            ("p99".into(), Json::int(h.percentile(99.0))),
                        ]),
                    )
                })
                .collect(),
        );
        compact(&Json::Obj(vec![
            ("id".into(), Json::int(id)),
            ("status".into(), Json::Str("ok".into())),
            ("op".into(), Json::Str("metrics".into())),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ]))
    }

    /// The `metrics-prom` op: the registry rendered in the Prometheus text
    /// exposition format, plus the live `request_us_window` summary
    /// (quantiles over the last 60 s, not since boot). Exposition text is
    /// multi-line, so it ships as the escaped `text` member of a one-line
    /// JSON response; `cello_client --metrics-prom` unwraps and prints it
    /// raw, scrape-ready.
    fn metrics_prom_line(&self, id: u64) -> String {
        self.refresh_gauges();
        let snap = self.obs.registry.snapshot();
        let windows = std::collections::BTreeMap::from([(
            "request_us_window".to_string(),
            self.obs.request_us_window.snapshot(),
        )]);
        let text = snap.to_prometheus_text_with_windows(&windows);
        compact(&Json::Obj(vec![
            ("id".into(), Json::int(id)),
            ("status".into(), Json::Str("ok".into())),
            ("op".into(), Json::Str("metrics-prom".into())),
            ("text".into(), Json::Str(text)),
        ]))
    }

    /// The `trace` op: the flight recorder's retained request span trees
    /// rendered as an embedded Chrome trace document (one track per
    /// request), importable straight into Perfetto.
    fn trace_line(&self, id: u64) -> String {
        let recent = self.flights.recent();
        // `chrome_trace` emits a single-line JSON object, embeddable as-is.
        format!(
            "{{\"id\": {id}, \"status\": \"ok\", \"op\": \"trace\", \"spans\": {}, \"trace\": {}}}",
            recent.len(),
            cello_obs::chrome::chrome_trace(&recent),
        )
    }
}

/// The warm-start narrowing: seeds substitute for beam breadth, so a warm
/// beam runs at a quarter of the requested width (floor 2). Non-beam
/// traversals keep their shape (seeds still join the comparison set).
fn warm_strategy(strategy: &Strategy) -> Strategy {
    match strategy {
        Strategy::Beam { width } => Strategy::Beam {
            width: (*width / 4).max(2),
        },
        Strategy::Prefiltered { keep_frac, inner } => Strategy::Prefiltered {
            keep_frac: *keep_frac,
            inner: Box::new(warm_strategy(inner)),
        },
        other => other.clone(),
    }
}

/// Resolves a request's pattern into (DAG, accelerator).
fn build_workload(req: &Request) -> Result<(TensorDag, CelloConfig), ServeError> {
    let accel = CelloConfig::paper().with_sram_bytes(req.sram_mb << 20);
    let dataset = match &req.dataset {
        Some(name) => Some(
            registry()
                .into_iter()
                .find(|d| d.name == name.as_str())
                .ok_or_else(|| ServeError::UnknownDataset(name.clone()))?,
        ),
        None => None,
    };
    // Explicit m/nnz (e.g. derived client-side from a real SuiteSparse
    // `.mtx`) beats the registry; one of the two must pin the pattern.
    let pattern = |what: &'static str| -> Result<(u64, u64), ServeError> {
        match (req.m, req.nnz, &dataset) {
            (Some(m), Some(nnz), _) => Ok((m, nnz)),
            (None, None, Some(d)) => Ok((d.m as u64, d.nnz as u64)),
            (Some(_), None, _) | (None, Some(_), _) => Err(ServeError::BadParam(
                "explicit patterns need both m and nnz".into(),
            )),
            (None, None, None) => Err(ServeError::MissingField(what)),
        }
    };
    let dag = match req.workload.as_str() {
        "cg" => {
            let (m, nnz) = pattern("dataset")?;
            build_cg_dag(&CgParams {
                m,
                occupancy: nnz as f64 / m as f64,
                a_payload_words: 2 * nnz + m + 1,
                n: req.n,
                nprime: req.n,
                iterations: req.iterations,
                a_occupancy: None,
            })
        }
        "bicgstab" => {
            let (m, nnz) = pattern("dataset")?;
            build_bicgstab_dag(&BicgParams {
                m,
                occupancy: nnz as f64 / m as f64,
                a_payload_words: 2 * nnz + m + 1,
                n: req.n,
                iterations: req.iterations,
            })
        }
        "hpcg" => build_hpcg_dag(&HpcgParams {
            nx: req.nx.unwrap_or(48),
            n: req.n,
            iterations: req.iterations,
        }),
        "gcn" => {
            let params = match &dataset {
                Some(d) => {
                    if !matches!(d.kind, DatasetKind::Graph { .. }) {
                        return Err(ServeError::BadParam(format!(
                            "dataset {:?} is not a graph (gcn needs cora/protein or explicit m+nnz)",
                            d.name
                        )));
                    }
                    GcnParams::from_dataset(d, req.layers)
                }
                None => {
                    let (m, nnz) = pattern("dataset")?;
                    GcnParams {
                        vertices: m,
                        nnz,
                        // Paper-typical feature widths for ad-hoc graphs.
                        features: 128,
                        outputs: 16,
                        layers: req.layers,
                    }
                }
            };
            build_gcn_dag(&params)
        }
        other => return Err(ServeError::UnknownWorkload(other.into())),
    };
    Ok((dag, accel))
}

/// The search space a request asks for.
fn space_of(req: &Request, accel: &CelloConfig) -> SpaceConfig {
    let mut cfg = if req.widened {
        SpaceConfig::widened_with_nodes(&req.nodes)
    } else {
        SpaceConfig::with_nodes(&req.nodes)
    };
    if req.per_phase_sram {
        cfg = cfg.with_repartition(accel.sram_words());
    }
    cfg
}

/// Renders a scheduled DAG as annotated Graphviz: nodes clustered by phase,
/// each cluster labeled with its resolved SRAM split (pipeline / RF words
/// and the CHORD remainder), edges colored by realization.
pub fn schedule_dot(dag: &TensorDag, schedule: &Schedule, accel: &CelloConfig) -> String {
    let phase_of = schedule.phase_of();
    let labels: Vec<String> = schedule
        .phase_splits
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let chord = if schedule.options.enable_chord {
                accel.sram_words().saturating_sub(s.reserved_words())
            } else {
                0
            };
            format!(
                "phase {i} | pb={} rf={} chord={}",
                s.pipeline_buffer_words, s.rf_capacity_words, chord
            )
        })
        .collect();
    to_dot_annotated(
        dag,
        |e| {
            if schedule.realized.get(e.0).copied().unwrap_or(false) {
                ("blue".into(), "pipe".into())
            } else {
                let tensor = &dag.node(cello_graph::dag::NodeId(dag.edge(e).src)).output;
                let binding = format!("{:?}", schedule.binding_of(&tensor.name)).to_lowercase();
                ("gray".into(), binding)
            }
        },
        |n| phase_of.get(n.0).copied(),
        &labels,
    )
}

/// Data needed by tests and `loadgen` to pick apart a workload the same way
/// the service does.
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    registry().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cello-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_request(id: u64) -> Request {
        let mut req = Request::cg("fv1");
        req.id = id;
        req.iterations = 1;
        req.strategy = "beam2".into();
        req
    }

    #[test]
    fn miss_then_hit_with_persistent_cache() {
        let dir = tmpdir("miss-hit");
        let service = Service::open(&dir).unwrap();
        let first = service.handle(&tiny_request(1)).unwrap();
        assert_eq!(first.cache, CacheTag::Miss);
        assert!(first.evaluations > 0);
        let second = service.handle(&tiny_request(2)).unwrap();
        assert_eq!(second.cache, CacheTag::Hit);
        assert_eq!(second.id, 2);
        assert_eq!(second.evaluations, 0);
        assert_eq!(second.best_key, first.best_key);
        assert_eq!(second.tuned_cycles, first.tuned_cycles);
        assert_eq!(service.compiles(), 1);
        // A fresh service over the same directory hits straight from disk.
        let warm_boot = Service::open(&dir).unwrap();
        let third = warm_boot.handle(&tiny_request(3)).unwrap();
        assert_eq!(third.cache, CacheTag::Hit);
        assert_eq!(third.best_key, first.best_key);
        assert_eq!(warm_boot.compiles(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn near_miss_warm_starts() {
        let dir = tmpdir("warm");
        let service = Service::open(&dir).unwrap();
        let cold = service.handle(&tiny_request(1)).unwrap();
        assert_eq!(cold.cache, CacheTag::Miss);
        // Same DAG + strategy, different SRAM: family member → warm.
        let mut near = tiny_request(2);
        near.sram_mb = 8;
        let warm = service.handle(&near).unwrap();
        assert_eq!(warm.cache, CacheTag::Warm);
        assert_eq!(warm.family, cold.family);
        assert_ne!(warm.fingerprint, cold.fingerprint);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handle_line_never_panics_and_shutdown_flags() {
        let dir = tmpdir("lines");
        let service = Service::open(&dir).unwrap();
        for line in ["", "{", "null", r#"{"workload": "fft"}"#] {
            let (resp, shutdown) = service.handle_line(line);
            assert!(resp.contains("\"status\": \"error\""), "{resp}");
            assert!(!shutdown);
            Json::parse(&resp).expect("error responses are valid JSON");
        }
        let (resp, shutdown) = service.handle_line(r#"{"op": "stats"}"#);
        assert!(!shutdown);
        assert!(resp.contains("\"requests\""));
        let (resp, shutdown) = service.handle_line(r#"{"op": "shutdown", "id": 5}"#);
        assert!(shutdown);
        assert!(resp.contains("\"shutdown\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_and_trace_ops_reflect_activity() {
        let dir = tmpdir("metrics");
        let service = Service::open(&dir).unwrap();
        let (first, _) = service.handle_line(&tiny_request(1).to_line());
        assert!(first.contains("\"status\": \"ok\""), "{first}");
        let (_, _) = service.handle_line(&tiny_request(2).to_line());

        let (m, shutdown) = service.handle_line(r#"{"op": "metrics", "id": 9}"#);
        assert!(!shutdown);
        let doc = Json::parse(&m).expect("metrics is valid JSON");
        let counter = |name: &str| {
            doc.get("counters")
                .and_then(|c| c.get(name))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("counter {name} missing: {m}")) as u64
        };
        assert_eq!(counter("requests_total"), 2);
        assert_eq!(counter("cache_hits"), 1, "second request hit the store");
        assert_eq!(counter("cache_misses"), 1);
        assert_eq!(counter("compiles_total"), 1);
        let tune = doc
            .get("histograms")
            .and_then(|h| h.get("tune_us"))
            .expect("tune_us histogram present");
        let field = |k: &str| tune.get(k).and_then(Json::as_f64).unwrap() as u64;
        assert_eq!(field("count"), 1, "one real tuner run");
        assert!(field("min") <= field("p50"));
        assert!(field("p50") <= field("p95"));
        assert!(field("p95") <= field("p99"));
        assert!(field("p99") <= field("max").max(1));
        assert_eq!(
            doc.get("histograms")
                .and_then(|h| h.get("request_us"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64),
            Some(2.0),
            "both requests timed"
        );

        let (t, shutdown) = service.handle_line(r#"{"op": "trace", "id": 4}"#);
        assert!(!shutdown);
        let tdoc = Json::parse(&t).expect("trace is valid JSON");
        assert_eq!(
            tdoc.get("spans").and_then(Json::as_f64),
            Some(2.0),
            "two flights retained: {t}"
        );
        let events = tdoc
            .get("trace")
            .and_then(|tr| tr.get("traceEvents"))
            .and_then(Json::as_array)
            .expect("embedded chrome document");
        assert!(
            events.len() >= 2 + 2 * 3,
            "request roots plus stage children"
        );
        assert!(t.contains("\"ph\": \"X\""));
        assert!(
            t.contains("\"tune\""),
            "leader flight records the tune stage"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_prom_scrape_is_parseable_and_monotone() {
        let dir = tmpdir("prom");
        let service = Service::open(&dir).unwrap();
        let (_, _) = service.handle_line(&tiny_request(1).to_line());

        let scrape = |id: u64| {
            let (line, shutdown) =
                service.handle_line(&format!(r#"{{"op": "metrics-prom", "id": {id}}}"#));
            assert!(!shutdown);
            let doc = Json::parse(&line).expect("metrics-prom is valid JSON");
            doc.get("text")
                .and_then(Json::as_str)
                .expect("text member present")
                .to_string()
        };
        let first = scrape(1);
        assert!(first.contains("# TYPE requests_total counter\n"), "{first}");
        assert!(first.contains("requests_total 1\n"));
        assert!(first.contains("# TYPE request_us histogram\n"));
        assert!(first.contains("request_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(
            first.contains("request_us_window{quantile=\"0.95\"} "),
            "live windowed p95 exposed: {first}"
        );
        assert!(first.contains("request_us_window_count 1\n"));
        assert!(first.contains("flight_depth 128\n"), "default depth gauge");
        // Every non-comment line is `name[{labels}] value`.
        for line in first.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (metric, value) = line.rsplit_once(' ').expect(line);
            assert!(!metric.is_empty());
            value.parse::<f64>().expect(line);
        }

        let (_, _) = service.handle_line(&tiny_request(2).to_line());
        let second = scrape(2);
        assert!(
            second.contains("requests_total 2\n"),
            "requests_total monotone across scrapes: {second}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_depth_is_configurable_and_published() {
        let dir = tmpdir("depth");
        let service = Service::open_with_options(&dir, Arc::new(Registry::new()), 2).unwrap();
        for id in 0..5 {
            let _ = service.handle(&tiny_request(id));
        }
        assert_eq!(service.flights().len(), 2, "ring truncates to the depth");
        assert_eq!(service.registry().gauge("flight_depth").get(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dot_response_is_annotated() {
        let dir = tmpdir("dot");
        let service = Service::open(&dir).unwrap();
        let mut req = tiny_request(1);
        req.emit_dot = true;
        let resp = service.handle(&req).unwrap();
        let dot = resp.dot.expect("dot requested");
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("pb="), "phase labels carry the SRAM split");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_dataset_is_typed() {
        let dir = tmpdir("unknown");
        let service = Service::open(&dir).unwrap();
        let mut req = tiny_request(1);
        req.dataset = Some("zz_matrix".into());
        assert_eq!(service.handle(&req).unwrap_err().kind(), "unknown-dataset");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The persistent, fingerprint-keyed schedule cache.
//!
//! Layout: one JSON file per compiled workload under the cache directory,
//! named `<fingerprint-hash>.json`. Each record stores the **full canonical
//! text** alongside the outcome, and every lookup re-compares it — a hash
//! collision (or a canonical-format drift across versions) degrades to a
//! cache miss, never to serving another workload's schedule. The
//! [`ServeError::Store`](crate::error::ServeError) path covers unreadable
//! and corrupted files the same way: a bad record is a miss plus a counter
//! tick, and the daemon recompiles.
//!
//! Besides exact hits, the store answers **family** (near-miss) lookups:
//! records whose DAG + strategy match but whose accelerator/space config
//! differs. Their stored Pareto candidates (portable specs, see
//! [`crate::protocol::candidate_to_json`]) become warm-start seeds for
//! [`cello_search::Tuner::tune_seeded`].
//!
//! Writes go through a tmp-file + atomic rename so a crashed or killed
//! daemon never leaves a half-written record that later parses as garbage.

use crate::error::ServeError;
use crate::protocol::{candidate_from_json, candidate_to_json, compact, field_str, field_u64};
use cello_bench::json::Json;
use cello_search::fingerprint::Fingerprint;
use cello_search::{Candidate, SearchOutcome};
use cello_sim::evaluate::CostEstimate;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// How many Pareto entries a record keeps as warm-start seeds. Fronts are
/// rank-sorted, so truncation keeps the best end; a handful of seeds is what
/// the narrow warm beam can actually exploit.
const MAX_STORED_PARETO: usize = 12;

/// One cached candidate: its canonical key, cost, and portable spec.
#[derive(Clone, Debug)]
pub struct StoredCandidate {
    /// Canonical schedule key (hex of the interned 128-bit
    /// [`cello_search::ScheduleKey`]).
    pub key: String,
    /// The four objectives.
    pub cost: CostEstimate,
    /// The rebuild-anywhere candidate spec.
    pub candidate: Candidate,
}

/// One cached compilation outcome.
#[derive(Clone, Debug)]
pub struct StoredOutcome {
    /// Exact fingerprint hash.
    pub fingerprint: String,
    /// Family (near-miss) hash.
    pub family: String,
    /// Strategy label the outcome was tuned with.
    pub strategy: String,
    /// Paper-heuristic baseline cycles.
    pub base_cycles: u64,
    /// Best-total-traffic schedule: canonical key + objectives + spec.
    pub best: StoredCandidate,
    /// Best-cycles energy (the response's energy field).
    pub tuned_energy_pj: f64,
    /// Best-found cycles (may differ from `best`'s, which optimizes
    /// traffic).
    pub tuned_cycles: u64,
    /// Sim evaluations the original compilation cost.
    pub evaluations: u64,
    /// Surrogate scorings the original compilation cost.
    pub surrogate_scored: u64,
    /// Rank-sorted Pareto prefix (capped at `MAX_STORED_PARETO` entries).
    pub pareto: Vec<StoredCandidate>,
}

impl StoredOutcome {
    /// Converts a fresh tuner outcome into its storable form.
    pub fn from_outcome(fp: &Fingerprint, out: &SearchOutcome) -> Self {
        let cand = |e: &cello_search::Evaluated| StoredCandidate {
            key: e.key.hex(),
            cost: e.cost,
            candidate: e.candidate.clone(),
        };
        Self {
            fingerprint: fp.hash.clone(),
            family: fp.family.clone(),
            strategy: out.strategy.clone(),
            base_cycles: out.baseline.cost.cycles,
            best: cand(&out.best_traffic),
            tuned_energy_pj: out.best_cycles.cost.energy_pj,
            tuned_cycles: out.best_cycles.cost.cycles,
            evaluations: out.evaluations,
            surrogate_scored: out.surrogate_scored,
            pareto: out
                .pareto
                .iter()
                .take(MAX_STORED_PARETO)
                .map(cand)
                .collect(),
        }
    }

    /// Warm-start seeds: the stored Pareto candidates (best first).
    pub fn seeds(&self) -> Vec<Candidate> {
        self.pareto.iter().map(|s| s.candidate.clone()).collect()
    }
}

fn stored_candidate_to_json(s: &StoredCandidate) -> Json {
    Json::Obj(vec![
        ("key".into(), Json::Str(s.key.clone())),
        ("cycles".into(), Json::int(s.cost.cycles)),
        ("dram_bytes".into(), Json::int(s.cost.dram_bytes)),
        ("noc_hop_bytes".into(), Json::int(s.cost.noc_hop_bytes)),
        ("energy_pj".into(), Json::Num(s.cost.energy_pj)),
        ("spec".into(), candidate_to_json(&s.candidate)),
    ])
}

fn stored_candidate_from_json(doc: &Json) -> Result<StoredCandidate, ServeError> {
    let need = |key: &'static str| {
        field_u64(doc, key)?.ok_or(ServeError::Store(format!("record missing {key}")))
    };
    Ok(StoredCandidate {
        key: field_str(doc, "key")?
            .ok_or_else(|| ServeError::Store("record missing key".into()))?,
        cost: CostEstimate {
            cycles: need("cycles")?,
            dram_bytes: need("dram_bytes")?,
            noc_hop_bytes: need("noc_hop_bytes")?,
            // A NaN energy was rendered as null; treat it as NaN again
            // rather than rejecting the record.
            energy_pj: doc
                .get("energy_pj")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
        },
        candidate: candidate_from_json(
            doc.get("spec")
                .ok_or_else(|| ServeError::Store("record missing spec".into()))?,
        )?,
    })
}

/// The on-disk store plus an in-memory `hash → family` index (rebuilt by
/// scanning the directory at open, kept in sync by inserts).
pub struct ScheduleStore {
    dir: PathBuf,
    index: Mutex<HashMap<String, String>>,
    collisions: AtomicU64,
}

impl ScheduleStore {
    /// Opens (creating if needed) a cache directory and indexes its records.
    /// Unreadable records are skipped with a note — a corrupted cache must
    /// not stop the daemon from starting.
    pub fn open(dir: &Path) -> Result<Self, ServeError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError::Store(format!("cannot create {dir:?}: {e}")))?;
        let mut index = HashMap::new();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| ServeError::Store(format!("cannot scan {dir:?}: {e}")))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            match Self::read_record(&path) {
                Ok((rec, _)) => {
                    index.insert(rec.fingerprint.clone(), rec.family.clone());
                }
                Err(e) => eprintln!("[store] skipping {path:?}: {e}"),
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            index: Mutex::new(index),
            collisions: AtomicU64::new(0),
        })
    }

    fn path_of(&self, hash: &str) -> PathBuf {
        // Hashes are produced by our own hex formatter, but belt-and-
        // braces: never let a stored name escape the cache directory.
        let safe: String = hash.chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        self.dir.join(format!("{safe}.json"))
    }

    fn read_record(path: &Path) -> Result<(StoredOutcome, String), ServeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::Store(format!("cannot read {path:?}: {e}")))?;
        let doc = Json::parse(&text)
            .map_err(|e| ServeError::Store(format!("corrupt record {path:?}: {e}")))?;
        let need_str = |key: &'static str| {
            field_str(&doc, key)?.ok_or(ServeError::Store(format!("record missing {key}")))
        };
        let need_u64 = |key: &'static str| {
            field_u64(&doc, key)?.ok_or(ServeError::Store(format!("record missing {key}")))
        };
        let pareto = doc
            .get("pareto")
            .and_then(Json::as_array)
            .ok_or_else(|| ServeError::Store("record missing pareto".into()))?
            .iter()
            .map(stored_candidate_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let best = stored_candidate_from_json(
            doc.get("best")
                .ok_or_else(|| ServeError::Store("record missing best".into()))?,
        )?;
        let canon = need_str("canon")?;
        Ok((
            StoredOutcome {
                fingerprint: need_str("fingerprint")?,
                family: need_str("family")?,
                strategy: need_str("strategy")?,
                base_cycles: need_u64("base_cycles")?,
                best,
                tuned_energy_pj: doc
                    .get("tuned_energy_pj")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                tuned_cycles: need_u64("tuned_cycles")?,
                evaluations: need_u64("evaluations")?,
                surrogate_scored: need_u64("surrogate_scored")?,
                pareto,
            },
            canon,
        ))
    }

    /// Exact lookup: present, parseable, **and** canonical-text-equal.
    /// A record whose canon differs under the same hash is a detected
    /// collision: counted, reported as a miss.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<StoredOutcome> {
        let path = self.path_of(&fp.hash);
        if !path.exists() {
            return None;
        }
        let (rec, canon) = match Self::read_record(&path) {
            Ok(found) => found,
            Err(e) => {
                eprintln!("[store] {e}");
                return None;
            }
        };
        if canon != fp.canon {
            self.collisions.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "[store] fingerprint collision on {}: treating as miss",
                fp.hash
            );
            return None;
        }
        Some(rec)
    }

    /// Near-miss lookup: any record sharing `fp.family` but not its exact
    /// hash, with the stored record's family canon re-checked against the
    /// request's (the same collision discipline as exact hits). Returns the
    /// first match in index order — any family member's front is a usable
    /// seed set.
    pub fn lookup_family(&self, fp: &Fingerprint) -> Option<StoredOutcome> {
        let family_canon = Fingerprint::family_canon_of(&fp.canon);
        let mut candidates: Vec<String> = {
            let index = self.index.lock().unwrap_or_else(PoisonError::into_inner);
            index
                .iter()
                .filter(|(hash, family)| **hash != fp.hash && **family == fp.family)
                .map(|(hash, _)| hash.clone())
                .collect()
        };
        // Hash-map iteration order is arbitrary; sort so which family member
        // seeds a warm start is deterministic across runs.
        candidates.sort();
        for hash in candidates {
            let path = self.path_of(&hash);
            match Self::read_record(&path) {
                Ok((rec, canon)) => {
                    if Fingerprint::family_canon_of(&canon) == family_canon {
                        return Some(rec);
                    }
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => eprintln!("[store] {e}"),
            }
        }
        None
    }

    /// Persists a record (atomic tmp + rename) and indexes it.
    pub fn insert(&self, fp: &Fingerprint, rec: &StoredOutcome) -> Result<(), ServeError> {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::int(1)),
            ("fingerprint".into(), Json::Str(rec.fingerprint.clone())),
            ("family".into(), Json::Str(rec.family.clone())),
            ("canon".into(), Json::Str(fp.canon.clone())),
            ("strategy".into(), Json::Str(rec.strategy.clone())),
            ("base_cycles".into(), Json::int(rec.base_cycles)),
            ("tuned_cycles".into(), Json::int(rec.tuned_cycles)),
            ("tuned_energy_pj".into(), Json::Num(rec.tuned_energy_pj)),
            ("evaluations".into(), Json::int(rec.evaluations)),
            ("surrogate_scored".into(), Json::int(rec.surrogate_scored)),
            ("best".into(), stored_candidate_to_json(&rec.best)),
            (
                "pareto".into(),
                Json::Arr(rec.pareto.iter().map(stored_candidate_to_json).collect()),
            ),
        ]);
        let path = self.path_of(&fp.hash);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, compact(&doc))
            .map_err(|e| ServeError::Store(format!("cannot write {tmp:?}: {e}")))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| ServeError::Store(format!("cannot commit {path:?}: {e}")))?;
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(fp.hash.clone(), fp.family.clone());
        Ok(())
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no record is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Detected hash collisions (served as misses).
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_core::accel::CelloConfig;
    use cello_search::{fingerprint, SpaceConfig, Strategy, Tuner};
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cello-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_outcome() -> (Fingerprint, SearchOutcome) {
        let dag = build_cg_dag(&CgParams {
            m: 10_000,
            occupancy: 4.0,
            a_payload_words: 2 * 40_000 + 10_001,
            n: 16,
            nprime: 16,
            iterations: 1,
            a_occupancy: None,
        });
        let accel = CelloConfig::paper();
        let cfg = SpaceConfig {
            max_cut_points: 1,
            max_steer_tensors: 1,
            max_loop_order_nodes: 0,
            pipeline_words_choices: vec![65_536],
            rf_words_choices: vec![16_384],
            node_choices: vec![1],
            max_chord_bias_tensors: 0,
            chord_bias_magnitudes: vec![1],
            repartition_profiles: Vec::new(),
            transfer_menu: Vec::new(),
            overbook_menu: Vec::new(),
        };
        let strategy = Strategy::Beam { width: 2 };
        let fp = fingerprint(&dag, &accel, &cfg, &strategy);
        let out = Tuner::new(&dag, &accel, cfg).tune(&strategy);
        (fp, out)
    }

    #[test]
    fn insert_lookup_round_trip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let store = ScheduleStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let (fp, out) = small_outcome();
        assert!(store.lookup(&fp).is_none());
        store
            .insert(&fp, &StoredOutcome::from_outcome(&fp, &out))
            .unwrap();
        let rec = store.lookup(&fp).expect("hit");
        assert_eq!(rec.best.key, out.best_traffic.key.hex());
        assert_eq!(rec.best.cost, out.best_traffic.cost);
        assert_eq!(rec.base_cycles, out.baseline.cost.cycles);
        assert_eq!(rec.pareto.len(), out.pareto.len().min(MAX_STORED_PARETO));
        // Reopening re-indexes from disk.
        let reopened = ScheduleStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(reopened.lookup(&fp).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same hash + different canon (a forged collision) must read as a miss.
    #[test]
    fn collision_detection_degrades_to_miss() {
        let dir = tmpdir("collision");
        let store = ScheduleStore::open(&dir).unwrap();
        let (fp, out) = small_outcome();
        store
            .insert(&fp, &StoredOutcome::from_outcome(&fp, &out))
            .unwrap();
        let mut forged = fp.clone();
        forged.canon.push_str("tampered");
        assert!(store.lookup(&forged).is_none());
        assert_eq!(store.collisions(), 1);
        // The honest fingerprint still hits.
        assert!(store.lookup(&fp).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupted record file is a miss (and survives reopen), not a panic.
    #[test]
    fn corrupt_records_are_misses() {
        let dir = tmpdir("corrupt");
        let store = ScheduleStore::open(&dir).unwrap();
        let (fp, out) = small_outcome();
        store
            .insert(&fp, &StoredOutcome::from_outcome(&fp, &out))
            .unwrap();
        std::fs::write(store.path_of(&fp.hash), "{ not json").unwrap();
        assert!(store.lookup(&fp).is_none());
        let reopened = ScheduleStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 0, "corrupt record skipped at open");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! In-flight request coalescing: concurrent identical requests share one
//! compilation.
//!
//! The persistent store only helps *after* a compilation lands; without
//! coalescing, eight clients asking for the same cold workload at once
//! would run eight identical multi-second tuner runs. [`Coalescer::run`]
//! keys in-flight work by workload fingerprint: the first caller computes,
//! every concurrent caller with the same key blocks on a condvar and shares
//! the leader's result (tagged so the service can report `coalesced`
//! instead of `miss`).
//!
//! If the leader's compute panics, its drop guard completes the slot empty
//! and unblocks the followers, who then compute for themselves — a bad
//! request degrades to un-coalesced work, never to followers blocked
//! forever or a poisoned map.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// One in-flight computation: `Some(value)` once the leader finished,
/// completed-but-empty if it panicked.
struct Slot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

struct SlotState<T> {
    done: bool,
    value: Option<T>,
}

/// The in-flight table (see module docs).
pub struct Coalescer<T> {
    inflight: Mutex<HashMap<String, Arc<Slot<T>>>>,
}

impl<T: Clone> Default for Coalescer<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Completes the slot on drop (normally or during an unwind) and retires it
/// from the in-flight table.
struct LeaderGuard<'a, T: Clone> {
    coalescer: &'a Coalescer<T>,
    key: &'a str,
    slot: &'a Arc<Slot<T>>,
    value: Option<T>,
}

impl<T: Clone> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        {
            let mut state = self
                .slot
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.done = true;
            state.value = self.value.take();
        }
        self.slot.ready.notify_all();
        let mut inflight = self
            .coalescer
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Remove only OUR slot: after a panicking leader's notify, a woken
        // follower can retire the dead slot and install a fresh one it now
        // leads before this drop reaches the table — removing
        // unconditionally would delete the successor's live slot and turn
        // every later identical request into a redundant compile.
        if let Some(current) = inflight.get(self.key) {
            if Arc::ptr_eq(current, self.slot) {
                inflight.remove(self.key);
            }
        }
    }
}

impl<T: Clone> Coalescer<T> {
    /// Empty table.
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` under `key`, or waits for the identical in-flight run.
    /// Returns the value plus `true` when it was shared from another
    /// caller's computation (the follower case).
    pub fn run(&self, key: &str, compute: impl FnOnce() -> T) -> (T, bool) {
        let mut compute = Some(compute);
        loop {
            let slot = {
                let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
                match inflight.get(key) {
                    Some(slot) => Arc::clone(slot), // follower: wait below
                    None => {
                        let slot = Arc::new(Slot {
                            state: Mutex::new(SlotState {
                                done: false,
                                value: None,
                            }),
                            ready: Condvar::new(),
                        });
                        inflight.insert(key.to_string(), Arc::clone(&slot));
                        drop(inflight); // compute outside the table lock
                        let mut guard = LeaderGuard {
                            coalescer: self,
                            key,
                            slot: &slot,
                            value: None,
                        };
                        guard.value = Some((compute.take().expect("leader runs once"))());
                        let value = guard.value.clone().expect("just set");
                        drop(guard); // completes slot, wakes followers
                        return (value, false);
                    }
                }
            };
            let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            while !state.done {
                state = slot
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if let Some(value) = state.value.clone() {
                return (value, true);
            }
            // The leader panicked (its guard completed the slot empty). Retire
            // the dead slot if it is still in the table — the leader's own
            // removal may not have run yet, and retrying against a completed
            // slot would spin — then loop: this caller (or another follower)
            // becomes the new leader.
            drop(state);
            let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(current) = inflight.get(key) {
                if Arc::ptr_eq(current, &slot) {
                    inflight.remove(key);
                }
            }
        }
    }

    /// Number of in-flight keys (for stats).
    pub fn in_flight(&self) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    /// The coalescing acceptance shape: k identical concurrent requests
    /// trigger exactly one computation; distinct keys stay independent.
    #[test]
    fn identical_concurrent_keys_compute_once() {
        let coalescer = Coalescer::new();
        let computed = AtomicUsize::new(0);
        let shared = AtomicUsize::new(0);
        let k = 8;
        let barrier = Barrier::new(k);
        std::thread::scope(|s| {
            for _ in 0..k {
                s.spawn(|| {
                    barrier.wait();
                    let (value, was_shared) = coalescer.run("same", || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Let followers pile up behind the slot.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        42u64
                    });
                    assert_eq!(value, 42);
                    if was_shared {
                        shared.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one compute");
        assert_eq!(shared.load(Ordering::SeqCst), k - 1, "k-1 followers");
        assert_eq!(coalescer.in_flight(), 0, "slot retired");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let coalescer = Coalescer::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..4 {
                let computed = &computed;
                let coalescer = &coalescer;
                s.spawn(move || {
                    let (v, shared) = coalescer.run(&format!("k{i}"), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        i
                    });
                    assert_eq!(v, i);
                    assert!(!shared);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 4);
    }

    /// A panicking leader unblocks followers, who compute for themselves.
    #[test]
    fn leader_panic_does_not_strand_followers() {
        let coalescer = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let coalescer = Arc::clone(&coalescer);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    coalescer.run("k", || {
                        barrier.wait(); // follower is enqueued behind us
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("leader dies");
                    })
                }));
                assert!(result.is_err());
            })
        };
        barrier.wait();
        // Follower: arrives while the leader is computing, must not hang.
        let (value, _) = coalescer.run("k", || 7u64);
        assert_eq!(value, 7);
        leader.join().unwrap();
        assert_eq!(coalescer.in_flight(), 0);
    }
}

//! Typed request-path errors.
//!
//! Everything that can go wrong between a client's raw bytes and a tuned
//! schedule lands here, and every variant renders as a structured error
//! *response* ([`ServeError::kind`] + message) — the daemon's contract is
//! that one malformed request can never kill it, so the request path has no
//! `unwrap`/`expect` on client-controlled data (the same discipline the
//! shared eval cache adopted when it dropped its poisoning `expect`s).

use std::fmt;

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The frame was not valid JSON (or not an object).
    Parse(String),
    /// A required field is missing.
    MissingField(&'static str),
    /// A field is present but mistyped or out of range.
    BadParam(String),
    /// `workload` names no known builder.
    UnknownWorkload(String),
    /// `dataset` names no registry entry.
    UnknownDataset(String),
    /// `strategy` does not parse (see `cello_search::Strategy::parse`).
    UnknownStrategy(String),
    /// The request is structurally valid but bigger than the daemon is
    /// willing to compile (caps keep one request from starving the pool).
    TooLarge(String),
    /// The persistent cache could not be read or written.
    Store(String),
    /// A compile worker panicked or an internal invariant failed — the
    /// catch-all that turns "bug" into "error response" instead of
    /// "dead daemon".
    Internal(String),
}

impl ServeError {
    /// Stable machine-readable discriminant carried in error responses.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Parse(_) => "parse",
            ServeError::MissingField(_) => "missing-field",
            ServeError::BadParam(_) => "bad-param",
            ServeError::UnknownWorkload(_) => "unknown-workload",
            ServeError::UnknownDataset(_) => "unknown-dataset",
            ServeError::UnknownStrategy(_) => "unknown-strategy",
            ServeError::TooLarge(_) => "too-large",
            ServeError::Store(_) => "store",
            ServeError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(msg) => write!(f, "bad frame: {msg}"),
            ServeError::MissingField(name) => write!(f, "missing field {name:?}"),
            ServeError::BadParam(msg) => write!(f, "bad parameter: {msg}"),
            ServeError::UnknownWorkload(w) => {
                write!(f, "unknown workload {w:?} (expected cg|hpcg|gcn|bicgstab)")
            }
            ServeError::UnknownDataset(d) => write!(f, "unknown dataset {d:?}"),
            ServeError::UnknownStrategy(s) => write!(
                f,
                "unknown strategy {s:?} (expected exhaustive|beamN|randomN@S|prefilterF+inner)"
            ),
            ServeError::TooLarge(msg) => write!(f, "request too large: {msg}"),
            ServeError::Store(msg) => write!(f, "schedule store: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let all = [
            ServeError::Parse("x".into()),
            ServeError::MissingField("workload"),
            ServeError::BadParam("x".into()),
            ServeError::UnknownWorkload("x".into()),
            ServeError::UnknownDataset("x".into()),
            ServeError::UnknownStrategy("x".into()),
            ServeError::TooLarge("x".into()),
            ServeError::Store("x".into()),
            ServeError::Internal("x".into()),
        ];
        let kinds: std::collections::HashSet<&str> = all.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), all.len());
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }
}

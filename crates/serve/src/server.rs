//! The TCP front end: newline-delimited JSON over `std::net`, one
//! connection per worker-pool job.
//!
//! The accept loop is deliberately boring: take a connection, hand it to
//! the worker pool (the vendored rayon stand-in's `ThreadPool`), repeat.
//! Each connection handler reads lines, feeds them through
//! [`Service::handle_line`] (which never panics), and writes one response
//! line per request. A `shutdown` frame acks, then trips a flag the accept
//! loop checks; a wake-up connection from the handler unblocks `accept` so
//! the daemon exits promptly without platform-specific socket tricks.

use crate::protocol::{caps, error_line};
use crate::service::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Runs the service behind `listener` with `workers` connection handlers.
/// Blocks until a client sends a `shutdown` frame, then drains: open
/// connections are served to EOF before the worker pool is released, so a
/// shutdown never cuts off an in-flight response (clients that want a fast
/// daemon exit should close their connections first).
pub fn serve(listener: TcpListener, service: Arc<Service>, workers: usize) -> std::io::Result<u64> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers.max(1))
        .build()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut connections = 0u64;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            // A failed accept (e.g. the client vanished between SYN and
            // accept) is that client's problem, not the daemon's.
            Err(e) => {
                cello_obs::warn!("serve", "accept failed: {e}");
                continue;
            }
        };
        connections += 1;
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        pool.spawn(move || handle_connection(stream, &service, &stop, local));
    }
    Ok(connections)
}

/// One connection: a sequence of newline-delimited frames.
fn handle_connection(stream: TcpStream, service: &Service, stop: &AtomicBool, local: SocketAddr) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    // One small request/response pair per round trip: Nagle + delayed ACK
    // would add ~40 ms to every exchange.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            cello_obs::error!("serve", "{peer}: cannot clone stream: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        line.clear();
        // Capped read: `read_line` into an unbounded String would let a
        // client stream newline-less bytes until the daemon OOMs — the
        // MAX_LINE_BYTES cap must bind *while reading*, not after. An
        // over-long frame gets a typed error and the connection closes
        // (framing can't be resynced mid-line).
        match read_capped_line(&mut reader, &mut line, caps::MAX_LINE_BYTES) {
            Ok(0) => return, // EOF: client done
            Ok(_) => {}
            Err(ReadLineError::TooLong) => {
                let err = crate::error::ServeError::TooLarge(format!(
                    "frame exceeds {} bytes",
                    caps::MAX_LINE_BYTES
                ));
                let _ = writer.write_all(format!("{}\n", error_line(0, &err)).as_bytes());
                return;
            }
            Err(ReadLineError::Io(e)) => {
                cello_obs::warn!("serve", "{peer}: read failed: {e}");
                return;
            }
        }
        let line = String::from_utf8_lossy(&line);
        if line.trim().is_empty() {
            continue;
        }
        let (mut response, shutdown) = service.handle_line(&line);
        response.push('\n');
        // One write per response (a split frame + Nagle costs a delayed-ACK
        // round trip per request).
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            // The client hung up mid-response; nothing left to serve it.
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag.
            let _ = TcpStream::connect(local);
            return;
        }
    }
}

enum ReadLineError {
    /// The line outgrew the cap before a newline arrived.
    TooLong,
    /// The underlying read failed.
    Io(std::io::Error),
}

/// Reads one `\n`-terminated line into `buf` (newline excluded), refusing
/// to buffer more than `cap` bytes. Returns the number of bytes read (0 =
/// clean EOF).
fn read_capped_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    cap: usize,
) -> Result<usize, ReadLineError> {
    loop {
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadLineError::Io(e)),
        };
        if available.is_empty() {
            // EOF mid-line still yields what we have (matches read_line).
            return Ok(buf.len());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if buf.len() + newline > cap {
                    return Err(ReadLineError::TooLong);
                }
                buf.extend_from_slice(&available[..newline]);
                reader.consume(newline + 1);
                return Ok(buf.len() + 1);
            }
            None => {
                let take = available.len();
                if buf.len() + take > cap {
                    return Err(ReadLineError::TooLong);
                }
                buf.extend_from_slice(available);
                reader.consume(take);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{compact, Request, Response};
    use cello_bench::json::Json;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cello-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Sends one line, reads one line.
    fn round_trip(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        out
    }

    /// Full daemon loop over a real socket: compile (miss), compile (hit),
    /// malformed frame (typed error), stats, shutdown — then the serve loop
    /// actually returns.
    #[test]
    fn end_to_end_over_tcp() {
        let dir = tmpdir("e2e");
        let service = Arc::new(Service::open(&dir).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve(listener, service, 4).unwrap())
        };

        let mut req = Request::cg("fv1");
        req.iterations = 1;
        req.strategy = "beam2".into();
        req.id = 1;
        let first =
            Response::from_json(&Json::parse(&round_trip(addr, &req.to_line())).unwrap()).unwrap();
        assert_eq!(first.cache.as_str(), "miss");
        req.id = 2;
        let second =
            Response::from_json(&Json::parse(&round_trip(addr, &req.to_line())).unwrap()).unwrap();
        assert_eq!(second.cache.as_str(), "hit");
        assert_eq!(second.best_key, first.best_key);

        let err = round_trip(addr, "{ not json");
        assert!(err.contains("\"status\": \"error\""), "{err}");

        let stats = round_trip(addr, r#"{"op": "stats"}"#);
        assert!(stats.contains("\"hits\": 1"), "{stats}");

        let ack = round_trip(addr, r#"{"op": "shutdown"}"#);
        assert!(ack.contains("\"shutdown\""));
        daemon.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A newline-less flood larger than the frame cap gets a typed
    /// `too-large` error and a closed connection — the daemon buffers at
    /// most `caps::MAX_LINE_BYTES`, it does not read until OOM.
    #[test]
    fn oversized_frame_is_rejected_while_reading() {
        let dir = tmpdir("flood");
        let service = Arc::new(Service::open(&dir).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve(listener, service, 2).unwrap())
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        let chunk = vec![b'x'; 1 << 16];
        // Write until the server refuses (it answers + closes once the cap
        // trips); cap our own effort at ~2x the server cap.
        let mut sent = 0usize;
        while sent <= 2 * caps::MAX_LINE_BYTES {
            match stream.write_all(&chunk) {
                Ok(()) => sent += chunk.len(),
                Err(_) => break, // server already closed on us
            }
        }
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("too-large"), "{line}");
        let _ = round_trip(addr, r#"{"op": "shutdown"}"#);
        daemon.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Several frames down one connection get one response line each, in
    /// order.
    #[test]
    fn pipelined_frames_one_connection() {
        let dir = tmpdir("pipeline");
        let service = Arc::new(Service::open(&dir).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve(listener, service, 2).unwrap())
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut req = Request::cg("fv1");
        req.iterations = 1;
        req.strategy = "beam2".into();
        for id in [10, 11, 12] {
            req.id = id;
            stream
                .write_all(format!("{}\n", req.to_line()).as_bytes())
                .unwrap();
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for id in [10, 11, 12] {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let resp = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(resp.id, id);
        }
        // Close *both* fds of the main connection (the reader holds a dup;
        // the handler only sees EOF — and the pool only drains — once every
        // clone is gone).
        drop(reader);
        drop(stream);
        let _ = round_trip(
            addr,
            &compact(&Json::Obj(vec![(
                "op".into(),
                Json::Str("shutdown".into()),
            )])),
        );
        daemon.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! `cello_serve` — the schedule-compilation daemon.
//!
//! Listens on `--addr` for newline-delimited JSON compile requests (see
//! `cello_serve::protocol`), compiles through `cello-search` with in-flight
//! coalescing, and persists every outcome in the fingerprint-keyed cache
//! under `--cache-dir` (collision-checked; safe to keep across restarts —
//! a warm boot serves hits straight from disk).
//!
//! Usage: `cargo run --release --bin cello_serve --
//!   [--addr 127.0.0.1:7070] [--cache-dir serve-cache] [--workers N]`
//!
//! Stop it with a `{"op": "shutdown"}` frame (`cello_client --shutdown`).

use cello_serve::{serve, Service};
use std::net::TcpListener;
use std::sync::Arc;

struct Args {
    addr: String,
    cache_dir: std::path::PathBuf,
    workers: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7070".into(),
        cache_dir: "serve-cache".into(),
        workers: rayon::current_num_threads().min(8),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--cache-dir" => args.cache_dir = value("--cache-dir").into(),
            "--workers" => {
                args.workers = value("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("--workers needs a positive integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: cello_serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let service = match Service::open(&args.cache_dir) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("cello_serve: {e}");
            std::process::exit(1);
        }
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("cello_serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.addr.clone());
    println!(
        "cello_serve listening on {local} ({} workers, cache {:?} with {} records)",
        args.workers,
        args.cache_dir,
        service.store_len(),
    );
    match serve(listener, service, args.workers) {
        Ok(connections) => println!("cello_serve: shutdown after {connections} connections"),
        Err(e) => {
            eprintln!("cello_serve: {e}");
            std::process::exit(1);
        }
    }
}

//! `cello_serve` — the schedule-compilation daemon.
//!
//! Listens on `--addr` for newline-delimited JSON compile requests (see
//! `cello_serve::protocol`), compiles through `cello-search` with in-flight
//! coalescing, and persists every outcome in the fingerprint-keyed cache
//! under `--cache-dir` (collision-checked; safe to keep across restarts —
//! a warm boot serves hits straight from disk).
//!
//! Usage: `cargo run --release --bin cello_serve --
//!   [--addr 127.0.0.1:7070] [--cache-dir serve-cache] [--workers N]
//!   [--flight-depth 128]`
//!
//! Stop it with a `{"op": "shutdown"}` frame (`cello_client --shutdown`).

use cello_serve::{serve, Service};
use std::net::TcpListener;
use std::sync::Arc;

struct Args {
    addr: String,
    cache_dir: std::path::PathBuf,
    workers: usize,
    flight_depth: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7070".into(),
        cache_dir: "serve-cache".into(),
        workers: rayon::current_num_threads().min(8),
        flight_depth: cello_serve::DEFAULT_FLIGHT_DEPTH,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                cello_obs::error!("serve", "{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--cache-dir" => args.cache_dir = value("--cache-dir").into(),
            "--workers" => {
                args.workers = value("--workers").parse().unwrap_or_else(|_| {
                    cello_obs::error!("serve", "--workers needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--flight-depth" => {
                args.flight_depth = value("--flight-depth")
                    .parse()
                    .ok()
                    .filter(|&d: &usize| d >= 1)
                    .unwrap_or_else(|| {
                        cello_obs::error!("serve", "--flight-depth needs a positive integer");
                        std::process::exit(2);
                    })
            }
            other => {
                cello_obs::error!(
                    "serve",
                    "unknown argument {other:?}; usage: cello_serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N] [--flight-depth N]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    // `CELLO_LOG` controls daemon verbosity (default `info`); e.g.
    // `CELLO_LOG=debug,serve=trace cello_serve` for per-compile detail.
    cello_obs::log::init_from_env();
    let args = parse_args();
    // The daemon shares the process-global metrics registry so search-layer
    // counters (exact/surrogate evals, prefilter tallies) show up in the
    // same `metrics` snapshot as the serve-layer ones.
    let registry = cello_obs::metrics::global();
    let service = match Service::open_with_options(&args.cache_dir, registry, args.flight_depth) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            cello_obs::error!("serve", "cello_serve: {e}");
            std::process::exit(1);
        }
    };
    let listener = match TcpListener::bind(&args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            cello_obs::error!("serve", "cello_serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.addr.clone());
    println!(
        "cello_serve listening on {local} ({} workers, cache {:?} with {} records)",
        args.workers,
        args.cache_dir,
        service.store_len(),
    );
    cello_obs::info!(
        "serve",
        "accepting connections on {local}; send {{\"op\": \"metrics\"}} or {{\"op\": \"trace\"}} to inspect"
    );
    match serve(listener, service, args.workers) {
        Ok(connections) => println!("cello_serve: shutdown after {connections} connections"),
        Err(e) => {
            cello_obs::error!("serve", "cello_serve: {e}");
            std::process::exit(1);
        }
    }
}

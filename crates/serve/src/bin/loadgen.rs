//! `loadgen` — drive the daemon with N concurrent clients over a mixed
//! workload stream and measure serving behavior.
//!
//! The stream mixes CG (two Table VI datasets + one *real-pattern* request
//! whose m/nnz come from a Matrix Market file, `--mtx`), HPCG, GCN, and
//! BiCGStab compile requests; each client replays the mix `--rounds` times,
//! so after the first cold compilations the stream is dominated by
//! fingerprint cache hits — the amortization the serving layer exists for.
//!
//! Reports per-request p50/p95 latency, throughput, cache hit rate, and
//! the cold-vs-hit latency ratio, into `BENCH_serve.json` (gated by
//! `bench_check` against `results/bench_baseline.json`) plus a
//! `results/serve_loadgen.tsv` table.
//!
//! `--quick` is the CI smoke shape (8 clients × 4 rounds) and additionally
//! *enforces* the serving acceptance bar: zero failed requests, ≥ 50% hit
//! rate, and cache hits ≥ 100× faster than cold compilation.
//!
//! With `--addr` it drives an already-running daemon; without, it
//! self-hosts one in-process (still over real TCP on a loopback port).
//!
//! Usage: `cargo run --release --bin loadgen --
//!   [--addr 127.0.0.1:7070] [--clients 8] [--rounds 4]
//!   [--cache-dir DIR] [--mtx data/pde_512.mtx] [--quick]`

use cello_bench::json::Json;
use cello_bench::{emit, f3};
use cello_obs::HistogramSnapshot;
use cello_serve::protocol::{CacheTag, Request, Response};
use cello_serve::{serve, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    addr: Option<String>,
    clients: usize,
    rounds: usize,
    cache_dir: Option<PathBuf>,
    mtx: Option<PathBuf>,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        clients: 8,
        rounds: 4,
        cache_dir: None,
        mtx: None,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--clients" => {
                args.clients = value("--clients").parse().unwrap_or_else(|_| {
                    eprintln!("--clients needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--rounds" => {
                args.rounds = value("--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("--rounds needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir").into()),
            "--mtx" => args.mtx = Some(value("--mtx").into()),
            "--quick" => args.quick = true,
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: loadgen [--addr HOST:PORT] [--clients N] [--rounds R] [--cache-dir DIR] [--mtx FILE] [--quick]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.clients == 0 || args.rounds == 0 {
        eprintln!("--clients and --rounds must be positive");
        std::process::exit(2);
    }
    args
}

/// The mixed request stream (name, request). Cold compiles are sized like
/// production requests — widened spaces, several unrolled iterations, a
/// multi-node menu — so the cold-vs-hit ratio measures a real amortization;
/// a full `--quick` run stays CI-friendly because after round one the
/// cache carries the load.
fn workload_mix(mtx: Option<&PathBuf>) -> Vec<(String, Request)> {
    let cg = |dataset: &str, iterations: u32, nodes: Vec<u64>| {
        let mut req = Request::cg(dataset);
        req.iterations = iterations;
        req.nodes = nodes;
        req.strategy = "beam8".into();
        req.widened = true;
        req
    };
    let mut mix = vec![
        ("cg/G2_circuit".to_string(), {
            let mut req = cg("G2_circuit", 5, vec![1, 4]);
            req.per_phase_sram = true;
            req
        }),
        ("cg/fv1".to_string(), cg("fv1", 6, vec![1])),
        ("hpcg/nx32".to_string(), {
            let mut req = cg("fv1", 4, vec![1]);
            req.workload = "hpcg".into();
            req.dataset = None;
            req.nx = Some(32);
            req
        }),
        ("gcn/cora".to_string(), {
            let mut req = cg("cora", 2, vec![1, 4]);
            req.workload = "gcn".into();
            req.layers = 3;
            req
        }),
        ("bicgstab/NASA4704".to_string(), {
            let mut req = cg("NASA4704", 3, vec![1]);
            req.workload = "bicgstab".into();
            req
        }),
    ];
    // The real-pattern request: m/nnz read from a Matrix Market file
    // client-side (the daemon only ever sees numbers).
    if let Some(path) = mtx {
        match cello_workloads::datasets::load_matrix_market(path) {
            Ok(a) => {
                let mut req = cg("fv1", 6, vec![1]);
                req.dataset = None;
                req.m = Some(a.rows() as u64);
                req.nnz = Some(a.nnz() as u64);
                mix.push((format!("cg/mtx:{}", path.display()), req));
            }
            Err(e) => {
                eprintln!("loadgen: cannot load {path:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    mix
}

/// One request's observation. `micros` is the client-side wall clock
/// (queueing included — what a user feels); `server_micros` is the
/// daemon-reported time to produce the response (what the cache saves).
struct Sample {
    name: String,
    micros: u64,
    server_micros: u64,
    tag: Option<CacheTag>, // None = failed request
}

/// Folds an iterator of latencies into the shared obs histogram type — the
/// same log2-bucketed estimator the daemon's `metrics` op reports, so
/// loadgen's p50/p95/p99 and the server-side `request_us` snapshot are
/// directly comparable (both clamp percentiles to the exact [min, max]).
fn histogram(values: impl Iterator<Item = u64>) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::empty();
    for v in values {
        h.record(v);
    }
    h
}

fn main() {
    let args = parse_args();
    let mtx = args.mtx.clone().or_else(|| {
        let default = PathBuf::from("data/pde_512.mtx");
        default.exists().then_some(default)
    });
    let mix = workload_mix(mtx.as_ref());

    // Self-host when no --addr: a real daemon on a loopback port.
    let (addr, hosted) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let cache_dir = args.cache_dir.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!("cello-loadgen-{}", std::process::id()))
            });
            let fresh = !cache_dir.exists();
            let service = Arc::new(Service::open(&cache_dir).unwrap_or_else(|e| {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }));
            let listener = TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
                eprintln!("loadgen: cannot bind loopback: {e}");
                std::process::exit(1);
            });
            let addr = listener.local_addr().expect("bound").to_string();
            let daemon = std::thread::spawn(move || serve(listener, service, 8));
            println!("[self-hosted daemon on {addr}, cache {cache_dir:?}]");
            (
                addr,
                Some((daemon, cache_dir, fresh && args.cache_dir.is_none())),
            )
        }
    };

    let started = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client| {
                let mix = &mix;
                let addr = &addr;
                scope.spawn(move || {
                    let mut samples = Vec::new();
                    let stream = match TcpStream::connect(addr) {
                        Ok(stream) => {
                            let _ = stream.set_nodelay(true);
                            stream
                        }
                        Err(e) => {
                            eprintln!("loadgen client {client}: connect failed: {e}");
                            return samples;
                        }
                    };
                    let mut writer = match stream.try_clone() {
                        Ok(w) => w,
                        Err(e) => {
                            eprintln!("loadgen client {client}: {e}");
                            return samples;
                        }
                    };
                    let mut reader = BufReader::new(stream);
                    for round in 0..args.rounds {
                        for (wi, (name, req)) in mix.iter().enumerate() {
                            let mut req = req.clone();
                            req.id = (client * 1_000_000 + round * 1_000 + wi) as u64;
                            let frame = format!("{}\n", req.to_line());
                            let begun = Instant::now();
                            let mut line = String::new();
                            let ok = writer.write_all(frame.as_bytes()).is_ok()
                                && writer.flush().is_ok()
                                && matches!(reader.read_line(&mut line), Ok(n) if n > 0);
                            let micros = begun.elapsed().as_micros() as u64;
                            let resp = if ok {
                                Json::parse(line.trim())
                                    .ok()
                                    .and_then(|doc| Response::from_json(&doc).ok())
                            } else {
                                None
                            };
                            samples.push(Sample {
                                name: name.clone(),
                                micros,
                                server_micros: resp.as_ref().map_or(0, |r| r.compile_micros),
                                tag: resp.map(|r| r.cache),
                            });
                        }
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall = started.elapsed().as_secs_f64().max(1e-9);

    // Shut the self-hosted daemon down before reporting.
    if let Some((daemon, cache_dir, ephemeral)) = hosted {
        if let Ok(mut stream) = TcpStream::connect(&addr) {
            let _ = stream.write_all(b"{\"op\": \"shutdown\"}\n");
            let mut line = String::new();
            let _ = BufReader::new(stream).read_line(&mut line);
        }
        match daemon.join() {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => eprintln!("loadgen: daemon error: {e}"),
            Err(_) => eprintln!("loadgen: daemon panicked"),
        }
        if ephemeral {
            let _ = std::fs::remove_dir_all(&cache_dir);
        }
    }

    // Aggregate.
    let total = samples.len();
    let failed = samples.iter().filter(|s| s.tag.is_none()).count();
    let hits = samples
        .iter()
        .filter(|s| matches!(s.tag, Some(CacheTag::Hit) | Some(CacheTag::Coalesced)))
        .count();
    let hit_rate = hits as f64 / total.max(1) as f64;
    let coalesced = samples
        .iter()
        .filter(|s| s.tag == Some(CacheTag::Coalesced))
        .count();
    let latencies = histogram(samples.iter().map(|s| s.micros));
    let p50 = latencies.percentile(50.0);
    let p95 = latencies.percentile(95.0);
    let p99 = latencies.percentile(99.0);
    // Cold-vs-hit on *server-reported* time: client wall clock under full
    // concurrency folds queueing and CPU contention from neighboring
    // compiles into hit latency, which would understate (and jitter) the
    // amortization the cache actually provides.
    let cold_count = samples
        .iter()
        .filter(|s| matches!(s.tag, Some(CacheTag::Miss) | Some(CacheTag::Warm)))
        .count();
    let cold_micros = histogram(
        samples
            .iter()
            .filter(|s| matches!(s.tag, Some(CacheTag::Miss) | Some(CacheTag::Warm)))
            .map(|s| s.server_micros),
    )
    .mean();
    let hit_micros = histogram(
        samples
            .iter()
            .filter(|s| matches!(s.tag, Some(CacheTag::Hit)))
            .map(|s| s.server_micros),
    )
    .mean();
    let hit_speedup = if hit_micros > 0.0 {
        cold_micros / hit_micros
    } else {
        0.0
    };
    let throughput = total as f64 / wall;

    // Per-workload table.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, _) in &mix {
        let of: Vec<&Sample> = samples.iter().filter(|s| &s.name == name).collect();
        if of.is_empty() {
            continue;
        }
        let lat = histogram(of.iter().map(|s| s.micros));
        let tag_count = |want: CacheTag| {
            of.iter()
                .filter(|s| s.tag == Some(want))
                .count()
                .to_string()
        };
        rows.push(vec![
            name.clone(),
            of.len().to_string(),
            of.iter().filter(|s| s.tag.is_none()).count().to_string(),
            tag_count(CacheTag::Miss),
            tag_count(CacheTag::Warm),
            tag_count(CacheTag::Coalesced),
            tag_count(CacheTag::Hit),
            lat.percentile(50.0).to_string(),
            lat.percentile(95.0).to_string(),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        total.to_string(),
        failed.to_string(),
        String::new(),
        String::new(),
        String::new(),
        hits.to_string(),
        p50.to_string(),
        p95.to_string(),
    ]);
    emit(
        "serve_loadgen",
        &format!(
            "loadgen: {} clients x {} rounds x {} workloads over {addr}",
            args.clients,
            args.rounds,
            mix.len()
        ),
        &[
            "workload",
            "requests",
            "failed",
            "miss",
            "warm",
            "coalesced",
            "hit",
            "p50_us",
            "p95_us",
        ],
        &rows,
    );
    println!(
        "hit rate {} | p50 {p50} µs | p95 {p95} µs | p99 {p99} µs | {} req/s | cold {} µs vs hit {} µs ({}x)",
        f3(hit_rate),
        f3(throughput),
        f3(cold_micros),
        f3(hit_micros),
        f3(hit_speedup),
    );

    // The trajectory artifact bench_check gates.
    let doc = Json::Obj(vec![
        ("schema".into(), Json::int(1)),
        (
            "generated_by".into(),
            Json::Str(format!(
                "loadgen --clients {} --rounds {}{}",
                args.clients,
                args.rounds,
                if args.quick { " --quick" } else { "" }
            )),
        ),
        (
            "workloads".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".into(), Json::Str("serve/mixed".into())),
                ("nodes".into(), Json::int(args.clients as u64)),
                ("requests".into(), Json::int(total as u64)),
                ("failed".into(), Json::int(failed as u64)),
                ("hit_rate".into(), Json::Num(hit_rate)),
                ("p50_micros".into(), Json::int(p50)),
                ("p95_micros".into(), Json::int(p95)),
                ("p99_us".into(), Json::int(p99)),
                ("coalesced_requests".into(), Json::int(coalesced as u64)),
                ("throughput_rps".into(), Json::Num(throughput)),
                ("cold_micros".into(), Json::Num(cold_micros)),
                ("hit_micros".into(), Json::Num(hit_micros)),
                ("hit_speedup".into(), Json::Num(hit_speedup)),
            ])]),
        ),
    ]);
    match std::fs::write("BENCH_serve.json", doc.render()) {
        Ok(()) => println!("[saved BENCH_serve.json]"),
        Err(e) => {
            eprintln!("loadgen: could not write BENCH_serve.json: {e}");
            std::process::exit(1);
        }
    }

    // The serving acceptance bar — enforced in --quick (CI) so regressions
    // fail loudly; plain runs just report.
    if args.quick {
        let mut violations: Vec<String> = Vec::new();
        if failed > 0 {
            violations.push(format!("{failed} of {total} requests failed"));
        }
        if hit_rate < 0.5 {
            violations.push(format!("hit rate {hit_rate:.3} below 0.5"));
        }
        // Vacuous when the persistent cache already covered the whole mix
        // (a re-run against a warmed daemon has no cold samples to
        // compare against — the best-case serving state, not a failure).
        if cold_count == 0 {
            println!("[no cold compiles this run (cache fully warm): speedup bar skipped]");
        } else if hit_speedup < 100.0 {
            violations.push(format!(
                "cache hits only {hit_speedup:.1}x faster than cold compiles (need >= 100x)"
            ));
        }
        if !violations.is_empty() {
            eprintln!("loadgen --quick FAILED (artifact written above):");
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
        println!("loadgen --quick acceptance OK");
    }
}

//! `cello_client` — one-shot CLI client for the `cello_serve` daemon.
//!
//! Builds a compile request from flags, sends it as one newline-delimited
//! JSON frame, prints the response, and optionally writes the served
//! schedule's annotated DOT (phase clusters + per-phase SRAM splits) to a
//! file for visual audit.
//!
//! Usage:
//!   `cello_client [--addr 127.0.0.1:7070] [--workload cg] [--dataset fv1]`
//!   `             [--mtx data/pde_512.mtx] [--n 16] [--iterations 2]`
//!   `             [--nodes 1,4] [--strategy beam4] [--sram-mb 4]`
//!   `             [--per-phase-sram] [--widened] [--dot schedule.dot]`
//!   `cello_client --stats | --metrics | --metrics-prom | --trace | --shutdown`
//!
//! `--metrics-prom` prints the daemon's registry in the Prometheus text
//! exposition format (raw, scrape-ready), including the live
//! `request_us_window` summary (p50/p95/p99 over the last 60 s).

use cello_bench::json::Json;
use cello_serve::protocol::{compact, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

struct Args {
    addr: String,
    request: Request,
    mtx: Option<std::path::PathBuf>,
    dot_path: Option<std::path::PathBuf>,
    op: Op,
}

enum Op {
    Compile,
    Stats,
    Metrics,
    MetricsProm,
    Trace,
    Shutdown,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7070".into(),
        request: Request::cg("fv1"),
        mtx: None,
        dot_path: None,
        op: Op::Compile,
    };
    args.request.dataset = None; // set below by --dataset / --mtx / defaults
    let mut dataset: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--workload" => args.request.workload = value("--workload"),
            "--dataset" => dataset = Some(value("--dataset")),
            "--mtx" => args.mtx = Some(value("--mtx").into()),
            "--n" => args.request.n = parse_num(&value("--n"), "--n"),
            "--iterations" => {
                args.request.iterations = parse_num(&value("--iterations"), "--iterations") as u32
            }
            "--layers" => args.request.layers = parse_num(&value("--layers"), "--layers") as u32,
            "--nx" => args.request.nx = Some(parse_num(&value("--nx"), "--nx")),
            "--nodes" => {
                args.request.nodes = value("--nodes")
                    .split(',')
                    .map(|s| parse_num(s.trim(), "--nodes"))
                    .collect()
            }
            "--strategy" => args.request.strategy = value("--strategy"),
            "--sram-mb" => args.request.sram_mb = parse_num(&value("--sram-mb"), "--sram-mb"),
            "--per-phase-sram" => args.request.per_phase_sram = true,
            "--widened" => args.request.widened = true,
            "--dot" => {
                args.request.emit_dot = true;
                args.dot_path = Some(value("--dot").into());
            }
            "--stats" => args.op = Op::Stats,
            "--metrics" => args.op = Op::Metrics,
            "--metrics-prom" => args.op = Op::MetricsProm,
            "--trace" => args.op = Op::Trace,
            "--shutdown" => args.op = Op::Shutdown,
            other => {
                eprintln!("unknown argument {other:?} (see the module docs for usage)");
                std::process::exit(2);
            }
        }
    }
    if let Some(d) = dataset {
        args.request.dataset = Some(d);
    }
    args
}

fn parse_num(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: not a number: {s:?}");
        std::process::exit(2);
    })
}

fn exchange(addr: &str, line: &str) -> String {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("cello_client: cannot connect to {addr}: {e} (is cello_serve running?)");
        std::process::exit(1);
    });
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("cello_client: {e}");
        std::process::exit(1);
    });
    if let Err(e) = writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
    {
        eprintln!("cello_client: send failed: {e}");
        std::process::exit(1);
    }
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    if let Err(e) = reader.read_line(&mut response) {
        eprintln!("cello_client: read failed: {e}");
        std::process::exit(1);
    }
    response
}

fn main() {
    let mut args = parse_args();

    // A local .mtx becomes an explicit pattern: the daemon never reads
    // client file systems — the client derives m/nnz and ships numbers.
    if let Some(path) = &args.mtx {
        match cello_workloads::datasets::load_matrix_market(path) {
            Ok(a) => {
                args.request.dataset = None;
                args.request.m = Some(a.rows() as u64);
                args.request.nnz = Some(a.nnz() as u64);
                println!(
                    "[mtx] {path:?}: {} x {}, {} non-zeros (occupancy {:.2})",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    a.occupancy(),
                );
            }
            Err(e) => {
                eprintln!("cello_client: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.request.dataset.is_none() && args.request.m.is_none() {
        args.request.dataset = Some("fv1".into());
    }

    let line = match args.op {
        Op::Stats => r#"{"op": "stats"}"#.to_string(),
        Op::Metrics => r#"{"op": "metrics"}"#.to_string(),
        Op::MetricsProm => r#"{"op": "metrics-prom"}"#.to_string(),
        Op::Trace => r#"{"op": "trace"}"#.to_string(),
        Op::Shutdown => r#"{"op": "shutdown"}"#.to_string(),
        Op::Compile => args.request.to_line(),
    };
    let raw = exchange(&args.addr, &line);
    let doc = match Json::parse(raw.trim()) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cello_client: unparseable response ({e}): {raw}");
            std::process::exit(1);
        }
    };
    match args.op {
        Op::Stats | Op::Metrics | Op::Trace | Op::Shutdown => {
            println!("{}", doc.render().trim_end());
        }
        Op::MetricsProm => {
            // Print the exposition text raw (scrape-ready), not the JSON
            // envelope it shipped in.
            match doc.get("text").and_then(Json::as_str) {
                Some(text) => print!("{text}"),
                None => {
                    eprintln!("cello_client: response has no text member: {raw}");
                    std::process::exit(1);
                }
            }
        }
        Op::Compile => match Response::from_json(&doc) {
            Ok(resp) => {
                let speedup = resp.base_cycles as f64 / resp.tuned_cycles.max(1) as f64;
                println!(
                    "[{}] fp {} in {} µs: {} cycles ({speedup:.2}x vs heuristic), {} B traffic, {} sim evals, pareto {}",
                    resp.cache.as_str(),
                    &resp.fingerprint[..12.min(resp.fingerprint.len())],
                    resp.compile_micros,
                    resp.tuned_cycles,
                    resp.tuned_traffic_bytes,
                    resp.evaluations,
                    resp.pareto_size,
                );
                match (args.dot_path, resp.dot) {
                    (Some(path), Some(dot)) => match std::fs::write(&path, dot) {
                        Ok(()) => println!("[saved {}]", path.display()),
                        Err(e) => {
                            eprintln!("cello_client: cannot write {path:?}: {e}");
                            std::process::exit(1);
                        }
                    },
                    (Some(_), None) => eprintln!("cello_client: server sent no dot"),
                    _ => {}
                }
            }
            Err(e) => {
                eprintln!("cello_client: {e}");
                // Show the raw frame so the typed kind/message is visible.
                eprintln!("{}", compact(&doc));
                std::process::exit(1);
            }
        },
    }
}

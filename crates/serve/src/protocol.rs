//! The newline-delimited JSON wire protocol and the candidate-spec
//! serialization the persistent store uses.
//!
//! One request per line, one response per line, both JSON objects (the
//! hand-rolled `cello_bench::json` value — the vendored serde has no
//! serializer). Parsing is *total*: any byte sequence maps to either a
//! [`Frame`] or a typed [`ServeError`], never a panic — the protocol
//! proptest feeds arbitrary garbage through [`parse_frame`] to pin that.
//!
//! A compile request names a workload family (`cg`/`hpcg`/`gcn`/
//! `bicgstab`), a sparsity pattern (a Table VI `dataset` name or explicit
//! `m`/`nnz` — e.g. read client-side from a real SuiteSparse `.mtx`), and
//! the search configuration (strategy label, node menu, SRAM size, widened /
//! per-phase-SRAM toggles). Unknown fields are ignored (forward
//! compatibility); wrong types and out-of-range values are typed errors.

use crate::error::ServeError;
use cello_bench::json::Json;
use cello_core::chord::{PriorityBias, MAX_BIAS_LEVEL};
use cello_core::score::binding::{Binding, PipelineScope};
use cello_core::score::loop_order::LoopOrder;
use cello_core::score::multinode::{Partition, PartitionAxis};
use cello_core::score::repartition::{PhaseRepartition, PhaseSplit, PhaseSplits};
use cello_core::{ChordOverbook, TransferTuning, MAX_OVERBOOK_LEVEL};
use cello_search::Candidate;
use cello_tensor::shape::RankId;

/// Hard caps on compile-request parameters. One runaway request must not
/// starve the worker pool: the DAG size scales with `iterations` and the
/// search cost with the node menu, so both are bounded; the rest are sanity
/// bounds (typed [`ServeError::TooLarge`], not panics or OOM).
pub mod caps {
    /// Max matrix order `M`.
    pub const MAX_M: u64 = 50_000_000;
    /// Max non-zeros.
    pub const MAX_NNZ: u64 = 2_000_000_000;
    /// Max unrolled loop iterations.
    pub const MAX_ITERATIONS: u32 = 64;
    /// Max block width `N`.
    pub const MAX_N: u64 = 4_096;
    /// Max HPCG grid side.
    pub const MAX_NX: u64 = 256;
    /// Max stacked GCN layers.
    pub const MAX_LAYERS: u32 = 16;
    /// Max node count in the partition menu.
    pub const MAX_NODES: u64 = 1_024;
    /// Max entries in the node menu.
    pub const MAX_NODE_MENU: usize = 8;
    /// Max SRAM size in MiB.
    pub const MAX_SRAM_MB: u64 = 1_024;
    /// Max request line length in bytes (a frame beyond this is rejected
    /// before JSON parsing).
    pub const MAX_LINE_BYTES: usize = 1 << 20;
}

/// One parsed wire frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Compile (or fetch) a schedule.
    Compile(Request),
    /// Report service counters.
    Stats {
        /// Echoed request id.
        id: u64,
    },
    /// Report the full observability registry snapshot (counters, gauges,
    /// and histogram percentiles).
    Metrics {
        /// Echoed request id.
        id: u64,
    },
    /// Report the registry snapshot rendered as Prometheus text exposition
    /// (plus live windowed summaries), shipped as the `text` member of the
    /// response object.
    MetricsProm {
        /// Echoed request id.
        id: u64,
    },
    /// Ship the flight recorder's recent per-request span trees as Chrome
    /// trace JSON.
    Trace {
        /// Echoed request id.
        id: u64,
    },
    /// Stop accepting connections and exit the daemon.
    Shutdown {
        /// Echoed request id.
        id: u64,
    },
}

/// A validated compile request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response (default 0).
    pub id: u64,
    /// Workload family: `cg` | `hpcg` | `gcn` | `bicgstab`.
    pub workload: String,
    /// Table VI dataset name (`fv1`, `G2_circuit`, …). Exclusive with the
    /// explicit pattern below.
    pub dataset: Option<String>,
    /// Explicit pattern: matrix order (vertices for `gcn`).
    pub m: Option<u64>,
    /// Explicit pattern: non-zero count.
    pub nnz: Option<u64>,
    /// HPCG grid side (`m = nx³`); `hpcg` only.
    pub nx: Option<u64>,
    /// Stacked GCN layers (default 2); `gcn` only.
    pub layers: u32,
    /// Block width `N` (default 16).
    pub n: u64,
    /// Loop iterations to unroll (default 2).
    pub iterations: u32,
    /// Node-count menu for the partition dimension (default `[1]`).
    pub nodes: Vec<u64>,
    /// Strategy label (`cello_search::Strategy::parse` grammar).
    pub strategy: String,
    /// Open the per-phase SRAM repartition dimension.
    pub per_phase_sram: bool,
    /// Use the widened (prefilter-scale) space.
    pub widened: bool,
    /// Accelerator SRAM in MiB (default 4, the paper value).
    pub sram_mb: u64,
    /// Include an annotated DOT render of the winning schedule.
    pub emit_dot: bool,
}

impl Request {
    /// A CG compile of `dataset` with everything else at protocol defaults —
    /// the shape `loadgen` and tests start from.
    pub fn cg(dataset: &str) -> Self {
        Self {
            id: 0,
            workload: "cg".into(),
            dataset: Some(dataset.into()),
            m: None,
            nnz: None,
            nx: None,
            layers: 2,
            n: 16,
            iterations: 2,
            nodes: vec![1],
            strategy: "beam4".into(),
            per_phase_sram: false,
            widened: false,
            sram_mb: 4,
            emit_dot: false,
        }
    }

    /// Renders the request as its wire object (round-trips through
    /// [`parse_frame`]).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("id".into(), Json::int(self.id)),
            ("op".into(), Json::Str("compile".into())),
            ("workload".into(), Json::Str(self.workload.clone())),
        ];
        if let Some(d) = &self.dataset {
            members.push(("dataset".into(), Json::Str(d.clone())));
        }
        if let Some(m) = self.m {
            members.push(("m".into(), Json::int(m)));
        }
        if let Some(nnz) = self.nnz {
            members.push(("nnz".into(), Json::int(nnz)));
        }
        if let Some(nx) = self.nx {
            members.push(("nx".into(), Json::int(nx)));
        }
        members.extend([
            ("layers".into(), Json::int(self.layers as u64)),
            ("n".into(), Json::int(self.n)),
            ("iterations".into(), Json::int(self.iterations as u64)),
            (
                "nodes".into(),
                Json::Arr(self.nodes.iter().map(|&n| Json::int(n)).collect()),
            ),
            ("strategy".into(), Json::Str(self.strategy.clone())),
            ("per_phase_sram".into(), Json::Bool(self.per_phase_sram)),
            ("widened".into(), Json::Bool(self.widened)),
            ("sram_mb".into(), Json::int(self.sram_mb)),
            ("emit_dot".into(), Json::Bool(self.emit_dot)),
        ]);
        Json::Obj(members)
    }

    /// One line of wire text (no trailing newline).
    pub fn to_line(&self) -> String {
        compact(&self.to_json())
    }
}

/// Renders a JSON value on one line (the pretty printer is for artifacts;
/// the wire needs newline-free frames).
pub fn compact(v: &Json) -> String {
    match v {
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(compact).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Obj(members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(k, v)| {
                    let mut key = String::new();
                    // Keys render through the same escaper as values.
                    let rendered = Json::Str(k.clone()).render();
                    key.push_str(rendered.trim_end());
                    format!("{key}: {}", compact(v))
                })
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        other => other.render().trim_end().to_string(),
    }
}

pub(crate) fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.0e15 => Ok(Some(*n as u64)),
        Some(other) => Err(ServeError::BadParam(format!(
            "{key} must be a non-negative integer, got {other:?}"
        ))),
    }
}

pub(crate) fn field_str(obj: &Json, key: &str) -> Result<Option<String>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ServeError::BadParam(format!(
            "{key} must be a string, got {other:?}"
        ))),
    }
}

pub(crate) fn field_bool(obj: &Json, key: &str) -> Result<Option<bool>, ServeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(ServeError::BadParam(format!(
            "{key} must be a boolean, got {other:?}"
        ))),
    }
}

/// Parses one wire line into a [`Frame`] — total over arbitrary bytes.
pub fn parse_frame(line: &str) -> Result<Frame, ServeError> {
    if line.len() > caps::MAX_LINE_BYTES {
        return Err(ServeError::TooLarge(format!(
            "frame of {} bytes (cap {})",
            line.len(),
            caps::MAX_LINE_BYTES
        )));
    }
    let doc = Json::parse(line.trim()).map_err(ServeError::Parse)?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ServeError::Parse("frame must be a JSON object".into()));
    }
    let id = field_u64(&doc, "id")?.unwrap_or(0);
    let op = field_str(&doc, "op")?.unwrap_or_else(|| "compile".into());
    match op.as_str() {
        "stats" => return Ok(Frame::Stats { id }),
        "metrics" => return Ok(Frame::Metrics { id }),
        "metrics-prom" => return Ok(Frame::MetricsProm { id }),
        "trace" => return Ok(Frame::Trace { id }),
        "shutdown" => return Ok(Frame::Shutdown { id }),
        "compile" => {}
        other => {
            return Err(ServeError::BadParam(format!(
                "op must be compile|stats|metrics|metrics-prom|trace|shutdown, got {other:?}"
            )))
        }
    }

    let workload = field_str(&doc, "workload")?.ok_or(ServeError::MissingField("workload"))?;
    if !matches!(workload.as_str(), "cg" | "hpcg" | "gcn" | "bicgstab") {
        return Err(ServeError::UnknownWorkload(workload));
    }
    let nodes = match doc.get("nodes") {
        None | Some(Json::Null) => vec![1],
        Some(Json::Arr(items)) => {
            if items.is_empty() || items.len() > caps::MAX_NODE_MENU {
                return Err(ServeError::BadParam(format!(
                    "nodes menu must have 1..={} entries",
                    caps::MAX_NODE_MENU
                )));
            }
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item.as_f64() {
                    Some(n) if n >= 1.0 && n.fract() == 0.0 && n <= caps::MAX_NODES as f64 => {
                        out.push(n as u64)
                    }
                    _ => {
                        return Err(ServeError::BadParam(format!(
                            "nodes entries must be integers in 1..={}, got {item:?}",
                            caps::MAX_NODES
                        )))
                    }
                }
            }
            out
        }
        Some(other) => {
            return Err(ServeError::BadParam(format!(
                "nodes must be an array, got {other:?}"
            )))
        }
    };
    let strategy = field_str(&doc, "strategy")?.unwrap_or_else(|| "beam4".into());
    if cello_search::Strategy::parse(&strategy).is_none() {
        return Err(ServeError::UnknownStrategy(strategy));
    }
    let bounded = |key: &'static str, v: Option<u64>, lo: u64, hi: u64, default: u64| {
        let v = v.unwrap_or(default);
        if (lo..=hi).contains(&v) {
            Ok(v)
        } else if v > hi {
            Err(ServeError::TooLarge(format!("{key} {v} (cap {hi})")))
        } else {
            Err(ServeError::BadParam(format!(
                "{key} {v} below minimum {lo}"
            )))
        }
    };
    let req = Request {
        id,
        workload,
        dataset: field_str(&doc, "dataset")?,
        m: match field_u64(&doc, "m")? {
            Some(m) => Some(bounded("m", Some(m), 1, caps::MAX_M, 1)?),
            None => None,
        },
        nnz: match field_u64(&doc, "nnz")? {
            Some(nnz) => Some(bounded("nnz", Some(nnz), 1, caps::MAX_NNZ, 1)?),
            None => None,
        },
        nx: match field_u64(&doc, "nx")? {
            Some(nx) => Some(bounded("nx", Some(nx), 1, caps::MAX_NX, 1)?),
            None => None,
        },
        layers: bounded(
            "layers",
            field_u64(&doc, "layers")?,
            1,
            caps::MAX_LAYERS as u64,
            2,
        )? as u32,
        n: bounded("n", field_u64(&doc, "n")?, 1, caps::MAX_N, 16)?,
        iterations: bounded(
            "iterations",
            field_u64(&doc, "iterations")?,
            1,
            caps::MAX_ITERATIONS as u64,
            2,
        )? as u32,
        nodes,
        strategy,
        per_phase_sram: field_bool(&doc, "per_phase_sram")?.unwrap_or(false),
        widened: field_bool(&doc, "widened")?.unwrap_or(false),
        sram_mb: bounded(
            "sram_mb",
            field_u64(&doc, "sram_mb")?,
            1,
            caps::MAX_SRAM_MB,
            4,
        )?,
        emit_dot: field_bool(&doc, "emit_dot")?.unwrap_or(false),
    };
    Ok(Frame::Compile(req))
}

/// How a compile response was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTag {
    /// Served from the persistent store (exact fingerprint match).
    Hit,
    /// Compiled fresh, warm-started from a same-family record.
    Warm,
    /// Compiled fresh from scratch.
    Miss,
    /// Waited on an identical in-flight compilation and shared its result.
    Coalesced,
}

impl CacheTag {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTag::Hit => "hit",
            CacheTag::Warm => "warm",
            CacheTag::Miss => "miss",
            CacheTag::Coalesced => "coalesced",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<CacheTag> {
        Some(match s {
            "hit" => CacheTag::Hit,
            "warm" => CacheTag::Warm,
            "miss" => CacheTag::Miss,
            "coalesced" => CacheTag::Coalesced,
            _ => return None,
        })
    }
}

/// A successful compile response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echoed request id.
    pub id: u64,
    /// Exact workload fingerprint (the cache key).
    pub fingerprint: String,
    /// Near-miss family hash.
    pub family: String,
    /// How this response was produced.
    pub cache: CacheTag,
    /// Wall-clock spent producing it, µs.
    pub compile_micros: u64,
    /// Strategy label the outcome was tuned with.
    pub strategy: String,
    /// Canonical schedule key of the best-total-traffic schedule.
    pub best_key: String,
    /// Paper-heuristic baseline cycles.
    pub base_cycles: u64,
    /// Best-found cycles.
    pub tuned_cycles: u64,
    /// Best-total-traffic schedule's DRAM bytes.
    pub tuned_dram_bytes: u64,
    /// Best-total-traffic schedule's NoC hop-bytes.
    pub tuned_noc_hop_bytes: u64,
    /// DRAM + NoC total of the best-total-traffic schedule.
    pub tuned_traffic_bytes: u64,
    /// Energy estimate of the best-cycles schedule, pJ.
    pub tuned_energy_pj: f64,
    /// Fresh sim evaluations this response cost (0 on hits).
    pub evaluations: u64,
    /// Surrogate scorings this response cost.
    pub surrogate_scored: u64,
    /// Pareto-front size of the outcome.
    pub pareto_size: u64,
    /// Annotated DOT of the winning schedule, when requested.
    pub dot: Option<String>,
}

impl Response {
    /// Renders the wire object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("id".into(), Json::int(self.id)),
            ("status".into(), Json::Str("ok".into())),
            ("fingerprint".into(), Json::Str(self.fingerprint.clone())),
            ("family".into(), Json::Str(self.family.clone())),
            ("cache".into(), Json::Str(self.cache.as_str().into())),
            ("compile_micros".into(), Json::int(self.compile_micros)),
            ("strategy".into(), Json::Str(self.strategy.clone())),
            ("best_key".into(), Json::Str(self.best_key.clone())),
            ("base_cycles".into(), Json::int(self.base_cycles)),
            ("tuned_cycles".into(), Json::int(self.tuned_cycles)),
            ("tuned_dram_bytes".into(), Json::int(self.tuned_dram_bytes)),
            (
                "tuned_noc_hop_bytes".into(),
                Json::int(self.tuned_noc_hop_bytes),
            ),
            (
                "tuned_traffic_bytes".into(),
                Json::int(self.tuned_traffic_bytes),
            ),
            ("tuned_energy_pj".into(), Json::Num(self.tuned_energy_pj)),
            ("evaluations".into(), Json::int(self.evaluations)),
            ("surrogate_scored".into(), Json::int(self.surrogate_scored)),
            ("pareto_size".into(), Json::int(self.pareto_size)),
        ];
        if let Some(dot) = &self.dot {
            members.push(("dot".into(), Json::Str(dot.clone())));
        }
        Json::Obj(members)
    }

    /// Parses a wire object back (the client and the differential tests).
    /// Returns `Err` with the server's message for error responses.
    pub fn from_json(doc: &Json) -> Result<Response, ServeError> {
        let status = field_str(doc, "status")?.ok_or(ServeError::MissingField("status"))?;
        if status != "ok" {
            let kind = field_str(doc, "kind")?.unwrap_or_else(|| "?".into());
            let msg = field_str(doc, "message")?.unwrap_or_default();
            return Err(ServeError::Internal(format!(
                "server error [{kind}]: {msg}"
            )));
        }
        let need_u64 =
            |key: &'static str| field_u64(doc, key)?.ok_or(ServeError::MissingField(key));
        let need_str =
            |key: &'static str| field_str(doc, key)?.ok_or(ServeError::MissingField(key));
        Ok(Response {
            id: field_u64(doc, "id")?.unwrap_or(0),
            fingerprint: need_str("fingerprint")?,
            family: need_str("family")?,
            cache: CacheTag::parse(&need_str("cache")?)
                .ok_or_else(|| ServeError::BadParam("bad cache tag".into()))?,
            compile_micros: need_u64("compile_micros")?,
            strategy: need_str("strategy")?,
            best_key: need_str("best_key")?,
            base_cycles: need_u64("base_cycles")?,
            tuned_cycles: need_u64("tuned_cycles")?,
            tuned_dram_bytes: need_u64("tuned_dram_bytes")?,
            tuned_noc_hop_bytes: need_u64("tuned_noc_hop_bytes")?,
            tuned_traffic_bytes: need_u64("tuned_traffic_bytes")?,
            tuned_energy_pj: doc
                .get("tuned_energy_pj")
                .and_then(Json::as_f64)
                .ok_or(ServeError::MissingField("tuned_energy_pj"))?,
            evaluations: need_u64("evaluations")?,
            surrogate_scored: need_u64("surrogate_scored")?,
            pareto_size: need_u64("pareto_size")?,
            dot: field_str(doc, "dot")?,
        })
    }
}

/// The error response line for a failed request (`status: "error"`, the
/// typed kind, and the human-readable message).
pub fn error_line(id: u64, err: &ServeError) -> String {
    compact(&Json::Obj(vec![
        ("id".into(), Json::int(id)),
        ("status".into(), Json::Str("error".into())),
        ("kind".into(), Json::Str(err.kind().into())),
        ("message".into(), Json::Str(err.to_string())),
    ]))
}

// ---------------------------------------------------------------------------
// Candidate specs: the store's portable schedule representation.
// ---------------------------------------------------------------------------

/// Serializes a search candidate as a space-independent JSON spec: exactly
/// the options/constraints the decision dimensions control, so a cached
/// candidate can be rebuilt in a *different* request's space (via
/// `SearchSpace::project`) for warm-starting.
pub fn candidate_to_json(c: &Candidate) -> Json {
    let scope = match c.options.scope {
        PipelineScope::None => "none",
        PipelineScope::SoleConsumer => "sole",
        PipelineScope::AllPipelineOrHold => "all-hold",
        PipelineScope::Any => "any",
    };
    let mut members = vec![
        ("scope".into(), Json::Str(scope.into())),
        ("hold".into(), Json::Bool(c.options.enable_hold)),
        ("multicast".into(), Json::Bool(c.options.enable_multicast)),
        ("chord".into(), Json::Bool(c.options.enable_chord)),
        ("pb".into(), Json::int(c.options.pipeline_buffer_words)),
        ("rf".into(), Json::int(c.options.rf_capacity_words)),
        (
            "cuts".into(),
            Json::Arr(
                c.constraints
                    .cut_before
                    .iter()
                    .map(|&n| Json::int(n as u64))
                    .collect(),
            ),
        ),
    ];
    let binding_str = |b: Binding| match b {
        Binding::RegisterFile => "rf",
        Binding::Pipeline => "pipe",
        Binding::Chord => "chord",
        Binding::Dram => "dram",
    };
    members.push((
        "steer".into(),
        Json::Obj(
            c.constraints
                .binding_overrides
                .iter()
                .map(|(t, b)| (t.clone(), Json::Str(binding_str(*b).into())))
                .collect(),
        ),
    ));
    members.push((
        "orders".into(),
        Json::Obj(
            c.constraints
                .loop_orders
                .iter()
                .map(|(node, order)| {
                    (
                        node.to_string(),
                        Json::Arr(
                            order
                                .order
                                .iter()
                                .map(|r| Json::Str(r.name().into()))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        ),
    ));
    members.push((
        "bias".into(),
        Json::Obj(
            c.constraints
                .chord_priority_bias
                .iter()
                .map(|(t, b)| {
                    // Graded wire form: "+N"/"-N" (level 1..=MAX_BIAS_LEVEL).
                    let tag = match b {
                        PriorityBias::Boost(_) => format!("+{}", b.level()),
                        PriorityBias::Demote(_) => format!("-{}", b.level()),
                    };
                    (t.clone(), Json::Str(tag))
                })
                .collect(),
        ),
    ));
    if let Some(p) = c.constraints.partition {
        let mut part = vec![("nodes".into(), Json::int(p.nodes))];
        match p.axis {
            PartitionAxis::Stage => part.push(("axis".into(), Json::Str("stage".into()))),
            PartitionAxis::Rank(r) => {
                part.push(("axis".into(), Json::Str("rank".into())));
                part.push(("rank".into(), Json::Str(r.name().into())));
            }
        }
        members.push(("partition".into(), Json::Obj(part)));
    }
    if let Some(rep) = &c.constraints.phase_repartition {
        let split = |s: &PhaseSplit| {
            Json::Arr(vec![
                Json::int(s.pipeline_buffer_words),
                Json::int(s.rf_capacity_words),
            ])
        };
        let mut obj = vec![("sram".into(), Json::int(rep.sram_words))];
        match &rep.splits {
            PhaseSplits::ByKind { fused, solo } => {
                obj.push(("fused".into(), split(fused)));
                obj.push(("solo".into(), split(solo)));
            }
            PhaseSplits::ByIndex(map) => {
                obj.push((
                    "by_index".into(),
                    Json::Obj(
                        map.iter()
                            .map(|(idx, s)| (idx.to_string(), split(s)))
                            .collect(),
                    ),
                ));
            }
        }
        members.push(("repartition".into(), Json::Obj(obj)));
    }
    if let Some(t) = c.constraints.transfer {
        let t = t.normalized();
        if !t.is_off() {
            members.push((
                "transfer".into(),
                Json::Obj(vec![
                    ("depth".into(), Json::int(t.prefetch_depth as u64)),
                    ("db".into(), Json::Bool(t.double_buffer)),
                ]),
            ));
        }
    }
    if let Some(o) = c.constraints.chord_overbook {
        let o = o.normalized();
        if !o.is_off() {
            members.push((
                "overbook".into(),
                Json::Obj(vec![("level".into(), Json::int(o.level as u64))]),
            ));
        }
    }
    Json::Obj(members)
}

/// Inverse of [`candidate_to_json`]. Malformed specs (a corrupted or
/// hand-edited cache file) are typed errors, not panics — a bad record
/// degrades to a cache miss upstream.
pub fn candidate_from_json(doc: &Json) -> Result<Candidate, ServeError> {
    let bad = |msg: &str| ServeError::Store(format!("bad candidate spec: {msg}"));
    let mut c = Candidate::paper_heuristic();
    c.options.scope = match field_str(doc, "scope")?.as_deref() {
        Some("none") => PipelineScope::None,
        Some("sole") => PipelineScope::SoleConsumer,
        Some("all-hold") => PipelineScope::AllPipelineOrHold,
        Some("any") => PipelineScope::Any,
        other => return Err(bad(&format!("scope {other:?}"))),
    };
    c.options.enable_hold = field_bool(doc, "hold")?.ok_or_else(|| bad("missing hold"))?;
    c.options.enable_multicast =
        field_bool(doc, "multicast")?.ok_or_else(|| bad("missing multicast"))?;
    c.options.enable_chord = field_bool(doc, "chord")?.ok_or_else(|| bad("missing chord"))?;
    c.options.pipeline_buffer_words = field_u64(doc, "pb")?.ok_or_else(|| bad("missing pb"))?;
    c.options.rf_capacity_words = field_u64(doc, "rf")?.ok_or_else(|| bad("missing rf"))?;
    if let Some(cuts) = doc.get("cuts") {
        for item in cuts.as_array().ok_or_else(|| bad("cuts not an array"))? {
            let n = item
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| bad("bad cut index"))?;
            c.constraints.cut_before.insert(n as usize);
        }
    }
    if let Some(Json::Obj(steer)) = doc.get("steer") {
        for (tensor, b) in steer {
            let binding = match b.as_str() {
                Some("rf") => Binding::RegisterFile,
                Some("pipe") => Binding::Pipeline,
                Some("chord") => Binding::Chord,
                Some("dram") => Binding::Dram,
                other => return Err(bad(&format!("steer binding {other:?}"))),
            };
            c.constraints
                .binding_overrides
                .insert(tensor.clone(), binding);
        }
    }
    if let Some(Json::Obj(orders)) = doc.get("orders") {
        for (node, ranks) in orders {
            let node: usize = node.parse().map_err(|_| bad("bad order node index"))?;
            let order = ranks
                .as_array()
                .ok_or_else(|| bad("order not an array"))?
                .iter()
                .map(|r| {
                    r.as_str()
                        .map(RankId::new)
                        .ok_or_else(|| bad("bad rank name"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            c.constraints.loop_orders.insert(node, LoopOrder { order });
        }
    }
    if let Some(Json::Obj(bias)) = doc.get("bias") {
        for (tensor, b) in bias {
            // "+N"/"-N"; bare "+"/"-" (pre-graded cache files) parse as
            // level 1, matching their old semantics exactly.
            let level = |rest: &str| -> Result<u8, ServeError> {
                if rest.is_empty() {
                    return Ok(1);
                }
                rest.parse::<u8>()
                    .ok()
                    .filter(|l| (1..=MAX_BIAS_LEVEL).contains(l))
                    .ok_or_else(|| bad(&format!("bias level {rest:?}")))
            };
            let bias = match b.as_str() {
                Some(s) if s.starts_with('+') => PriorityBias::Boost(level(&s[1..])?),
                Some(s) if s.starts_with('-') => PriorityBias::Demote(level(&s[1..])?),
                other => return Err(bad(&format!("bias {other:?}"))),
            };
            c.constraints
                .chord_priority_bias
                .insert(tensor.clone(), bias);
        }
    }
    if let Some(part) = doc.get("partition") {
        let nodes = field_u64(part, "nodes")?.ok_or_else(|| bad("partition missing nodes"))?;
        let axis = match field_str(part, "axis")?.as_deref() {
            Some("stage") => PartitionAxis::Stage,
            Some("rank") => PartitionAxis::Rank(RankId::new(
                &field_str(part, "rank")?.ok_or_else(|| bad("rank axis missing rank"))?,
            )),
            other => return Err(bad(&format!("partition axis {other:?}"))),
        };
        c.constraints.partition = Some(Partition { nodes, axis });
    }
    if let Some(rep) = doc.get("repartition") {
        let sram = field_u64(rep, "sram")?.ok_or_else(|| bad("repartition missing sram"))?;
        let split = |v: &Json| -> Result<PhaseSplit, ServeError> {
            let arr = v
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| bad("split must be [pipeline_words, rf_words]"))?;
            let get = |i: usize| {
                arr[i]
                    .as_f64()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .map(|n| n as u64)
                    .ok_or_else(|| bad("bad split words"))
            };
            Ok(PhaseSplit::new(get(0)?, get(1)?))
        };
        let rebuilt = match (rep.get("fused"), rep.get("solo"), rep.get("by_index")) {
            (Some(f), Some(s), None) => PhaseRepartition::by_kind(sram, split(f)?, split(s)?),
            (None, None, Some(Json::Obj(map))) => {
                let mut splits = std::collections::BTreeMap::new();
                for (idx, v) in map {
                    let idx: usize = idx.parse().map_err(|_| bad("bad phase index"))?;
                    splits.insert(idx, split(v)?);
                }
                PhaseRepartition::by_index(sram, splits)
            }
            _ => return Err(bad("repartition needs fused+solo or by_index")),
        };
        c.constraints.phase_repartition =
            Some(rebuilt.map_err(|e| bad(&format!("invalid repartition: {e}")))?);
    }
    // Absent member = serialized transfers (the only spelling depth 0 has;
    // specs written before the dimension existed parse unchanged).
    if let Some(xfer) = doc.get("transfer") {
        let depth = field_u64(xfer, "depth")?.ok_or_else(|| bad("transfer missing depth"))?;
        if !(1..=u8::MAX as u64).contains(&depth) {
            return Err(bad(&format!("transfer depth {depth} out of range")));
        }
        let t = if field_bool(xfer, "db")?.unwrap_or(false) {
            TransferTuning::double_buffered(depth as u8)
        } else {
            TransferTuning::single_buffered(depth as u8)
        };
        c.constraints.transfer = Some(t);
    }
    // Absent member = overbooking off (the only spelling level 0 has; specs
    // written before the dimension existed parse unchanged).
    if let Some(ob) = doc.get("overbook") {
        let level = field_u64(ob, "level")?.ok_or_else(|| bad("overbook missing level"))?;
        if !(1..=MAX_OVERBOOK_LEVEL as u64).contains(&level) {
            return Err(bad(&format!("overbook level {level} out of range")));
        }
        c.constraints.chord_overbook = Some(ChordOverbook::at(level as u8));
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_wire_text() {
        let mut req = Request::cg("G2_circuit");
        req.id = 42;
        req.nodes = vec![1, 4];
        req.strategy = "prefilter0.1+beam8".into();
        req.per_phase_sram = true;
        req.emit_dot = true;
        let line = req.to_line();
        assert!(!line.contains('\n'));
        match parse_frame(&line).unwrap() {
            Frame::Compile(back) => assert_eq!(back, req),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn defaults_fill_in_and_ops_parse() {
        match parse_frame(r#"{"workload": "cg", "dataset": "fv1"}"#).unwrap() {
            Frame::Compile(req) => {
                assert_eq!(req.n, 16);
                assert_eq!(req.iterations, 2);
                assert_eq!(req.nodes, vec![1]);
                assert_eq!(req.strategy, "beam4");
                assert_eq!(req.sram_mb, 4);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_frame(r#"{"op": "stats", "id": 7}"#).unwrap(),
            Frame::Stats { id: 7 }
        );
        assert_eq!(
            parse_frame(r#"{"op": "metrics", "id": 3}"#).unwrap(),
            Frame::Metrics { id: 3 }
        );
        assert_eq!(
            parse_frame(r#"{"op": "metrics-prom", "id": 5}"#).unwrap(),
            Frame::MetricsProm { id: 5 }
        );
        assert_eq!(
            parse_frame(r#"{"op": "trace"}"#).unwrap(),
            Frame::Trace { id: 0 }
        );
        assert_eq!(
            parse_frame(r#"{"op": "shutdown"}"#).unwrap(),
            Frame::Shutdown { id: 0 }
        );
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        let cases: Vec<(&str, &str)> = vec![
            ("", "parse"),
            ("{", "parse"),
            ("[1,2]", "parse"),
            (r#"{"op": "explode"}"#, "bad-param"),
            (r#"{"op": "compile"}"#, "missing-field"),
            (r#"{"workload": "fft"}"#, "unknown-workload"),
            (
                r#"{"workload": "cg", "strategy": "annealed"}"#,
                "unknown-strategy",
            ),
            (r#"{"workload": "cg", "n": "sixteen"}"#, "bad-param"),
            (r#"{"workload": "cg", "nodes": []}"#, "bad-param"),
            (r#"{"workload": "cg", "nodes": [0]}"#, "bad-param"),
            (r#"{"workload": "cg", "iterations": 100000}"#, "too-large"),
            (r#"{"workload": "cg", "m": 99999999999}"#, "too-large"),
            (r#"{"workload": "cg", "iterations": 0}"#, "bad-param"),
        ];
        for (line, kind) in cases {
            let err = parse_frame(line).expect_err(line);
            assert_eq!(err.kind(), kind, "{line} -> {err}");
        }
        let huge = format!(
            r#"{{"workload": "cg", "pad": "{}"}}"#,
            "x".repeat(caps::MAX_LINE_BYTES)
        );
        assert_eq!(parse_frame(&huge).unwrap_err().kind(), "too-large");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            id: 9,
            fingerprint: "ab".repeat(16),
            family: "cd".repeat(16),
            cache: CacheTag::Warm,
            compile_micros: 1234,
            strategy: "beam4".into(),
            best_key: "k|;10;".into(),
            base_cycles: 100,
            tuned_cycles: 80,
            tuned_dram_bytes: 4096,
            tuned_noc_hop_bytes: 128,
            tuned_traffic_bytes: 4224,
            tuned_energy_pj: 1.5,
            evaluations: 17,
            surrogate_scored: 90,
            pareto_size: 3,
            dot: Some("digraph cello {}\n".into()),
        };
        let line = compact(&resp.to_json());
        assert!(!line.contains('\n'), "dot newlines must be escaped");
        let back = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, resp);
        // Error lines parse as Err with the kind preserved in the message.
        let err_line = error_line(3, &ServeError::UnknownDataset("zz".into()));
        let err = Response::from_json(&Json::parse(&err_line).unwrap()).unwrap_err();
        assert!(err.to_string().contains("unknown-dataset"), "{err}");
    }

    #[test]
    fn candidate_spec_round_trips_rich_candidates() {
        use cello_core::score::repartition::PhaseSplit;
        let mut c = Candidate::paper_heuristic();
        c.options.scope = PipelineScope::AllPipelineOrHold;
        c.options.pipeline_buffer_words = 16_384;
        c.constraints.cut_before.extend([3, 9]);
        c.constraints
            .binding_overrides
            .insert("S@1".into(), Binding::Dram);
        c.constraints.loop_orders.insert(
            4,
            LoopOrder {
                order: vec![RankId::new("m"), RankId::new("k"), RankId::new("n")],
            },
        );
        c.constraints
            .chord_priority_bias
            .insert("A".into(), PriorityBias::Boost(1));
        c.constraints
            .chord_priority_bias
            .insert("B".into(), PriorityBias::Demote(2));
        c.constraints.partition = Some(Partition::by_rank(4, RankId::new("m")));
        c.constraints.phase_repartition = Some(
            PhaseRepartition::by_kind(
                1 << 20,
                PhaseSplit::new(65_536, 16_384),
                PhaseSplit::new(0, 4_096),
            )
            .unwrap(),
        );
        c.constraints.transfer = Some(TransferTuning::double_buffered(2));
        c.constraints.chord_overbook = Some(ChordOverbook::at(2));
        let json = candidate_to_json(&c);
        // Through wire text, like a store record.
        let text = compact(&json);
        let back = candidate_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);
        // The plain heuristic round-trips too — and emits no transfer or
        // overbook member, so pre-transfer cache files stay byte-compatible.
        let plain = Candidate::paper_heuristic();
        let plain_json = candidate_to_json(&plain);
        assert!(plain_json.get("transfer").is_none());
        assert!(plain_json.get("overbook").is_none());
        let back = candidate_from_json(&plain_json).unwrap();
        assert_eq!(back, plain);
        // Explicitly-off overbooking serializes exactly like absent: the
        // member is dropped and the spec parses back to the off default.
        let mut off = Candidate::paper_heuristic();
        off.constraints.chord_overbook = Some(ChordOverbook::off());
        let off_json = candidate_to_json(&off);
        assert!(off_json.get("overbook").is_none());
        // Single-buffered prefetch keeps its db=false spelling.
        let mut sb = Candidate::paper_heuristic();
        sb.constraints.transfer = Some(TransferTuning::single_buffered(3));
        let back = candidate_from_json(&candidate_to_json(&sb)).unwrap();
        assert_eq!(back, sb);
    }

    #[test]
    fn corrupted_candidate_specs_are_typed_errors() {
        for bad in [
            r#"{"scope": "diagonal"}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "cuts": ["x"]}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "partition": {"axis": "rank"}}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "repartition": {"sram": 10, "fused": [100, 100], "solo": [0, 0]}}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "bias": {"A": "+9"}}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "bias": {"A": "~1"}}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "transfer": {"depth": 0}}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "transfer": {"db": true}}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "overbook": {"level": 0}}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "overbook": {"level": 99}}"#,
            r#"{"scope": "any", "hold": true, "multicast": true, "chord": true, "pb": 1, "rf": 1, "overbook": {}}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            let err = candidate_from_json(&doc).unwrap_err();
            assert_eq!(err.kind(), "store", "{bad}");
        }
    }

    /// Cache files written before bias levels existed carry bare "+"/"-"
    /// tags; they must keep parsing, as level 1 (their old semantics).
    #[test]
    fn legacy_ungraded_bias_tags_parse_as_level_one() {
        let text = r#"{"scope": "any", "hold": true, "multicast": true, "chord": true,
                       "pb": 1, "rf": 1, "bias": {"A": "+", "B": "-"}}"#;
        let c = candidate_from_json(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(
            c.constraints.chord_priority_bias.get("A"),
            Some(&PriorityBias::Boost(1))
        );
        assert_eq!(
            c.constraints.chord_priority_bias.get("B"),
            Some(&PriorityBias::Demote(1))
        );
    }
}

//! Block Conjugate Gradient (paper Algorithm 1): numeric solver + DAG builder.
//!
//! Block CG solves `A·X = B` for `N` right-hand sides simultaneously
//! (Eq 2). One loop iteration is the 7-operation cascade of Fig 1:
//!
//! ```text
//! 1   S = A·P            SpMM                      (U: contracted rank compressed)
//! 2a  Δ = Pᵀ·S           contraction over M        (C)
//! 2b  Λ = Δ⁻¹·Γ          small inverse             (op ≠ tensor_mac)
//! 3   X = X + P·Λ        skewed GEMM + add         (U)
//! 4   R = R − S·Λ        skewed GEMM + sub         (U)
//! 5   Γ = Rᵀ·R           contraction over M        (C)
//! 6   Φ = Γ_prev⁻¹·Γ     small inverse             (op ≠ tensor_mac)
//! 7   P = R + P·Φ        skewed GEMM + add         (U)
//! ```
//!
//! [`build_cg_dag`] unrolls `iterations` copies with versioned tensor names
//! and all cross-iteration edges, so SCORE sees the delayed dependencies the
//! paper highlights: `S→4` and `R→7`/`R→4'` (delayed writeback), `X→3'`
//! (classified pipelineable but unrealizable across clusters → CHORD), `A`
//! reused every iteration, and the Greek tensors in the register file.
//! [`solve_block_cg`] is the numeric algorithm over real kernels.

use cello_graph::dag::{NodeId, TensorDag};
use cello_graph::edge::TensorMeta;
use cello_graph::node::OpKind;
use cello_tensor::dense::DenseMatrix;
use cello_tensor::einsum::EinsumSpec;
use cello_tensor::kernels::{add, gemm, gemm_at_b, invert_small, spmm, sub};
use cello_tensor::shape::{RankExtent, RankId};
use cello_tensor::sparse::{CsrMatrix, OccupancyStats};
use serde::{Deserialize, Serialize};

/// Row-block granularity for occupancy statistics: aim for ~64 blocks so the
/// histogram resolves structure without micro-blocking tiny matrices.
pub(crate) const OCCUPANCY_BLOCK_TARGET: usize = 64;

/// Shape parameters of a CG problem (Table VI/VII).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CgParams {
    /// Large dimension `M` (matrix order).
    pub m: u64,
    /// Average non-zeros per row of `A`.
    pub occupancy: f64,
    /// CSR payload of `A` in words (values + indices + pointers).
    pub a_payload_words: u64,
    /// Block width `N` (number of simultaneous right-hand sides).
    pub n: u64,
    /// `N'` (equal to `N` in the paper's runs).
    pub nprime: u64,
    /// CG loop iterations to unroll (Table VII: 10).
    pub iterations: u32,
    /// Measured per-row-block occupancy statistics of `A` when built from a
    /// real matrix ([`CgParams::from_csr`]). `None` keeps the worst-case
    /// dense footprint model.
    pub a_occupancy: Option<OccupancyStats>,
}

impl CgParams {
    /// Builds from a dataset registry entry.
    pub fn from_dataset(d: &crate::datasets::Dataset, n: u64, iterations: u32) -> Self {
        Self {
            m: d.m as u64,
            occupancy: d.occupancy(),
            a_payload_words: d.csr_payload_words(),
            n,
            nprime: n,
            iterations,
            a_occupancy: None,
        }
    }

    /// Builds from an actual sparse matrix — e.g. a real SuiteSparse
    /// pattern loaded with [`crate::datasets::load_matrix_market`] — so the
    /// DAG's footprints and occupancy reflect the file's true sparsity
    /// rather than a registry entry's published statistics. The per-row-block
    /// occupancy histogram of `A` rides along for the overbooking model.
    pub fn from_csr(a: &CsrMatrix, n: u64, iterations: u32) -> Self {
        let block_rows = a.rows().div_ceil(OCCUPANCY_BLOCK_TARGET).max(1);
        Self {
            m: a.rows() as u64,
            occupancy: a.occupancy(),
            a_payload_words: a.payload_words(),
            n,
            nprime: n,
            iterations,
            a_occupancy: Some(a.occupancy_stats(block_rows)),
        }
    }

    /// Words of one skewed `M×N` tensor (`P`, `R`, `S`, `X`).
    pub fn big_words(&self) -> u64 {
        self.m * self.n
    }

    /// Words of one small `N'×N` tensor (`Δ`, `Λ`, `Γ`, `Φ`).
    pub fn small_words(&self) -> u64 {
        self.nprime * self.n
    }

    /// Effective nnz used for MAC counting.
    pub fn nnz(&self) -> u64 {
        (self.m as f64 * self.occupancy).round() as u64
    }
}

/// Rank extents for one CG iteration's einsums.
struct CgRanks {
    m: RankExtent,
    k_sparse: RankExtent,
    k_dense: RankExtent,
    j: RankExtent,
    n: RankExtent,
    p: RankExtent,
}

impl CgRanks {
    fn new(prm: &CgParams) -> Self {
        let occ = prm.occupancy.ceil().max(1.0) as u64;
        Self {
            m: RankExtent::dense("m", prm.m),
            k_sparse: RankExtent::compressed("k", prm.m, occ.min(prm.m)),
            k_dense: RankExtent::dense("k", prm.m),
            j: RankExtent::dense("j", prm.nprime),
            n: RankExtent::dense("n", prm.n),
            p: RankExtent::dense("p", prm.nprime),
        }
    }

    /// SpMM `S[m,n] = Σ_k A[m,k]·P[k,n]` (compressed k).
    fn spmm(&self) -> EinsumSpec {
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new("m"), RankId::new("k")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("m"), RankId::new("n")],
            &[self.m, self.k_sparse, self.n],
        )
    }

    /// Contraction `Δ[p,n] = Σ_k P[k,p]·S[k,n]` (dense huge k).
    fn contraction(&self) -> EinsumSpec {
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new("k"), RankId::new("p")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("p"), RankId::new("n")],
            &[self.k_dense, self.p, self.n],
        )
    }

    /// Skewed update `Z[m,n] = Σ_j T[m,j]·W[j,n]` (lines 3/4/7).
    fn update(&self) -> EinsumSpec {
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new("m"), RankId::new("j")],
                vec![RankId::new("j"), RankId::new("n")],
            ],
            vec![RankId::new("m"), RankId::new("n")],
            &[self.m, self.j, self.n],
        )
    }

    /// Small op `Λ[p,n] = Δ⁻¹[p,j]·Γ[j,n]` (lines 2b/6).
    fn small(&self) -> EinsumSpec {
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new("p"), RankId::new("j")],
                vec![RankId::new("j"), RankId::new("n")],
            ],
            vec![RankId::new("p"), RankId::new("n")],
            &[self.p, self.j, self.n],
        )
    }
}

/// Node ids of one unrolled CG iteration.
#[derive(Clone, Copy, Debug)]
pub struct CgIterationNodes {
    /// Line 1 (SpMM).
    pub n1: NodeId,
    /// Line 2 contraction.
    pub n2a: NodeId,
    /// Line 2 inverse.
    pub n2b: NodeId,
    /// Line 3.
    pub n3: NodeId,
    /// Line 4.
    pub n4: NodeId,
    /// Line 5.
    pub n5: NodeId,
    /// Line 6.
    pub n6: NodeId,
    /// Line 7.
    pub n7: NodeId,
}

/// Builds the unrolled CG tensor dependency DAG (Fig 1 across iterations).
pub fn build_cg_dag(prm: &CgParams) -> TensorDag {
    let r = CgRanks::new(prm);
    let mut dag = TensorDag::new();
    let big = |name: String, w: u64| TensorMeta::dense(name, &["m", "n"], w);
    let small = |name: String, w: u64| TensorMeta::dense(name, &["p", "n"], w);
    let bw = prm.big_words();
    let sw = prm.small_words();

    let mut iters: Vec<CgIterationNodes> = Vec::with_capacity(prm.iterations as usize);
    for i in 1..=prm.iterations {
        let n1 = dag.add_op(
            format!("1@{i}:S=A·P"),
            r.spmm(),
            OpKind::TensorMac,
            big(format!("S@{i}"), bw),
        );
        let n2a = dag.add_op(
            format!("2a@{i}:Δ=PᵀS"),
            r.contraction(),
            OpKind::TensorMac,
            small(format!("D@{i}"), sw),
        );
        let n2b = dag.add_op(
            format!("2b@{i}:Λ=Δ⁻¹Γ"),
            r.small(),
            OpKind::Inverse,
            small(format!("L@{i}"), sw),
        );
        let n3 = dag.add_op(
            format!("3@{i}:X+=PΛ"),
            r.update(),
            OpKind::TensorMac,
            big(format!("X@{i}"), bw),
        );
        let n4 = dag.add_op(
            format!("4@{i}:R-=SΛ"),
            r.update(),
            OpKind::TensorMac,
            big(format!("R@{i}"), bw),
        );
        let n5 = dag.add_op(
            format!("5@{i}:Γ=RᵀR"),
            r.contraction(),
            OpKind::TensorMac,
            small(format!("G@{i}"), sw),
        );
        let n6 = dag.add_op(
            format!("6@{i}:Φ=Γp⁻¹Γ"),
            r.small(),
            OpKind::Inverse,
            small(format!("F@{i}"), sw),
        );
        let n7 = dag.add_op(
            format!("7@{i}:P=R+PΦ"),
            r.update(),
            OpKind::TensorMac,
            big(format!("P@{i}"), bw),
        );

        // Intra-iteration edges.
        dag.add_edge(n1, n2a, &["k", "n"]); // S into the contraction
        dag.add_edge(n2a, n2b, &["p", "j"]); // Δ
        dag.add_edge(n2b, n3, &["j", "n"]); // Λ multicast …
        dag.add_edge(n2b, n4, &["j", "n"]); // … to 3 and 4
        dag.add_edge(n1, n4, &["m", "j"]); // S delayed (via 2a/2b)
        dag.add_edge(n4, n5, &["k", "n"]); // R into the contraction
        dag.add_edge(n5, n6, &["j", "n"]); // Γ
        dag.add_edge(n6, n7, &["j", "n"]); // Φ
        dag.add_edge(n4, n7, &["m", "j"]); // R delayed (via 5/6)

        // Cross-iteration edges from the previous iteration.
        if let Some(prev) = iters.last().copied() {
            dag.add_edge(prev.n7, n1, &["k", "n"]); // P into SpMM (unshared)
            dag.add_edge(prev.n7, n2a, &["k", "p"]); // P into Δ
            dag.add_edge(prev.n7, n3, &["m", "j"]); // P into X update
            dag.add_edge(prev.n7, n7, &["m", "j"]); // P into the next P
            dag.add_edge(prev.n3, n3, &["m", "n"]); // X accumulator
            dag.add_edge(prev.n4, n4, &["m", "n"]); // R accumulator
            dag.add_edge(prev.n5, n2b, &["j", "n"]); // Γ into Λ
            dag.add_edge(prev.n5, n6, &["p", "j"]); // Γ_prev into Φ
        }
        iters.push(CgIterationNodes {
            n1,
            n2a,
            n2b,
            n3,
            n4,
            n5,
            n6,
            n7,
        });
    }

    // External inputs.
    let first = iters[0];
    let a_consumers: Vec<(NodeId, &[&str])> = iters
        .iter()
        .map(|it| (it.n1, ["m", "k"].as_slice()))
        .collect();
    let mut a_meta = TensorMeta::sparse("A", &["m", "k"], prm.a_payload_words);
    if let Some(occ) = prm.a_occupancy {
        a_meta = a_meta.with_occupancy(occ);
    }
    dag.add_external(a_meta, &a_consumers);
    dag.add_external(
        TensorMeta::dense("P@0", &["m", "n"], bw),
        &[
            (first.n1, &["k", "n"]),
            (first.n2a, &["k", "p"]),
            (first.n3, &["m", "j"]),
            (first.n7, &["m", "j"]),
        ],
    );
    dag.add_external(
        TensorMeta::dense("X@0", &["m", "n"], bw),
        &[(first.n3, &["m", "n"])],
    );
    dag.add_external(
        TensorMeta::dense("R@0", &["m", "n"], bw),
        &[(first.n4, &["m", "n"])],
    );
    dag.add_external(
        TensorMeta::dense("G@0", &["p", "n"], sw),
        &[(first.n2b, &["j", "n"]), (first.n6, &["p", "j"])],
    );
    dag
}

/// Result of a numeric block-CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// The solution block `X` (`M × N`).
    pub x: DenseMatrix,
    /// Iterations actually run.
    pub iterations_run: u32,
    /// Worst (max) squared column residual norm among unconverged columns
    /// after each iteration — `max(diag(Γ))` over the whole block while no
    /// column has deflated.
    pub residual_history: Vec<f64>,
    /// Whether `diag(Γ) ≤ ε` was reached.
    pub converged: bool,
}

/// Numeric block CG (Algorithm 1) on real kernels.
///
/// ```
/// use cello_tensor::dense::DenseMatrix;
/// use cello_tensor::gen::laplacian_2d;
/// use cello_workloads::cg::solve_block_cg;
///
/// let a = laplacian_2d(12, 12); // 144×144 SPD Poisson matrix
/// let mut b = DenseMatrix::zeros(144, 2);
/// for i in 0..144 { b.set(i, 0, 1.0); b.set(i, 1, (i % 3) as f64); }
/// let res = solve_block_cg(&a, &b, 500, 1e-12);
/// assert!(res.converged);
/// ```
///
/// Block CG can *break down* when the search-direction block loses rank
/// (columns of `P` become dependent as individual right-hand sides converge
/// at different rates, driving `Γ_prev` numerically singular). Like
/// production block solvers, we handle this by **deflation**: converged
/// columns leave the active block, and each restart phase solves the
/// column-normalized correction system `A·Y = R·D⁻¹` so `Δ` and `Γ` stay
/// well-scaled regardless of per-column residual spread. A phase ends on
/// per-column convergence, conditioning loss, stagnation, or inversion
/// failure (rank-deficient blocks additionally drop to one column at a
/// time); the outer loop then recomputes the true residual and re-deflates.
pub fn solve_block_cg(a: &CsrMatrix, b: &DenseMatrix, max_iters: u32, eps: f64) -> CgResult {
    assert_eq!(a.rows(), a.cols(), "CG needs a square matrix");
    assert_eq!(a.rows(), b.rows(), "rhs row mismatch");
    // A column is done when its squared residual falls below the caller's
    // eps — or below a relative guard near machine precision, so stalled
    // columns deflate instead of poisoning Γ for the others.
    const REL_FLOOR: f64 = 1e-28;
    let n = b.cols();
    let floors: Vec<f64> = (0..n).map(|j| eps.max(col_sq(b, j) * REL_FLOOR)).collect();
    let mut x = DenseMatrix::zeros(b.rows(), n);
    let mut history = Vec::new();
    let mut converged = false;
    let mut it = 0u32;
    // Block phases share one Krylov space across right-hand sides. When the
    // residual columns go (near-)collinear, Γ turns numerically singular and
    // the conjugacy recurrence blows up; a phase that fails to reduce the
    // residual demotes the solve to per-column scalar phases (the same 7-op
    // cascade with 1×1 Δ/Γ/Φ), which cannot break down.
    let mut scalar_mode = false;
    let mut round = 0usize;
    while it < max_iters {
        // True residual, recomputed per phase (kills incremental drift).
        let resid = sub(b, &spmm(a, &x));
        let all_active: Vec<usize> = (0..n).filter(|&j| col_sq(&resid, j) > floors[j]).collect();
        if all_active.is_empty() {
            converged = true;
            break;
        }
        let active: Vec<usize> = if scalar_mode {
            vec![all_active[round % all_active.len()]]
        } else {
            all_active.clone()
        };
        round += 1;
        // Worst squared residual among unconverged columns *outside* this
        // phase's block — folded into every history entry so the history
        // keeps its global "worst unconverged column" meaning even when a
        // scalar phase works on a single column.
        let other_worst: f64 = all_active
            .iter()
            .filter(|j| !active.contains(j))
            .map(|&j| col_sq(&resid, j))
            .fold(0.0f64, f64::max);
        // Column-normalized correction system A·Y = R_a·D⁻¹.
        let scales: Vec<f64> = active.iter().map(|&j| col_sq(&resid, j).sqrt()).collect();
        let start_worst: f64 = scales.iter().map(|s| s * s).fold(0.0f64, f64::max);
        let mut r = gather_scaled(&resid, &active, &scales);
        let mut y = DenseMatrix::zeros(b.rows(), active.len());
        let mut gamma = gemm_at_b(&r, &r); // Γ = RᵀR (≈ I at phase start)
        let mut p = r.clone();
        let mut stagnant = 0u32;
        let mut last_worst = f64::INFINITY;
        let mut floor_exit = false;
        while it < max_iters {
            it += 1;
            let s = spmm(a, &p); // 1
            let delta = gemm_at_b(&p, &s); // 2a
            let Some(delta_inv) = invert_small(&delta) else {
                // Rank-deficient search block (e.g. duplicate right-hand
                // sides): demote to one column at a time.
                scalar_mode = scalar_mode || active.len() > 1;
                break;
            };
            let lambda = gemm(&delta_inv, &gamma); // 2b
            y = add(&y, &gemm(&p, &lambda)); // 3
            r = sub(&r, &gemm(&s, &lambda)); // 4
            let gamma_prev = gamma.clone();
            gamma = gemm_at_b(&r, &r); // 5
            let diag = gamma.diagonal();
            // History records the worst *unscaled* squared residual.
            let worst = diag
                .iter()
                .zip(&scales)
                .map(|(d, s)| d * s * s)
                .fold(0.0f64, f64::max);
            history.push(worst.max(other_worst));
            let hit_floor = diag
                .iter()
                .zip(scales.iter().zip(&active))
                .any(|(d, (s, &j))| d * s * s <= floors[j]);
            if hit_floor {
                last_worst = worst;
                floor_exit = true;
                break; // re-deflate in the outer loop
            }
            // Stagnation: residual shrinking by less than 0.1% per iteration
            // for several iterations — conjugacy lost to round-off (healthy
            // CG at any realistic condition number converges orders of
            // magnitude faster than this, so only genuine stalls qualify;
            // a post-breakdown crawl decreases strictly but glacially, which
            // an exact `worst >= last` test would never catch).
            if worst > last_worst * 0.999 {
                stagnant += 1;
            } else {
                stagnant = 0;
            }
            last_worst = worst;
            if stagnant >= 3 {
                break;
            }
            let Some(gamma_prev_inv) = invert_small(&gamma_prev) else {
                scalar_mode = scalar_mode || active.len() > 1;
                break;
            };
            let phi = gemm(&gamma_prev_inv, &gamma); // 6
            p = add(&r, &gemm(&p, &phi)); // 7
        }
        // Fold the correction back: X[:, active] += Y·D.
        scatter_add_scaled(&mut x, &y, &active, &scales);
        // A block phase that ended without substantial progress means the
        // shared Krylov recurrence broke down — demote to scalar phases.
        // A floor exit is the opposite of breakdown (a column converged and
        // leaves the block), so it never demotes no matter how little the
        // slowest column moved.
        if !scalar_mode && !floor_exit && active.len() > 1 && last_worst > 0.25 * start_worst {
            scalar_mode = true;
        }
    }
    // Final convergence check when the iteration budget ran out exactly at
    // a phase boundary.
    if !converged {
        let resid = sub(b, &spmm(a, &x));
        converged = (0..n).all(|j| col_sq(&resid, j) <= floors[j]);
    }
    CgResult {
        x,
        iterations_run: it,
        residual_history: history,
        converged,
    }
}

/// Sum of squares of column `j`.
fn col_sq(m: &DenseMatrix, j: usize) -> f64 {
    (0..m.rows()).map(|i| m.get(i, j) * m.get(i, j)).sum()
}

/// Extracts `cols` of `m`, dividing column `k` by `scales[k]`.
fn gather_scaled(m: &DenseMatrix, cols: &[usize], scales: &[f64]) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(m.rows(), cols.len());
    for (k, (&j, &s)) in cols.iter().zip(scales).enumerate() {
        let inv = 1.0 / s;
        for i in 0..m.rows() {
            out.set(i, k, m.get(i, j) * inv);
        }
    }
    out
}

/// `x[:, cols[k]] += y[:, k] * scales[k]`.
fn scatter_add_scaled(x: &mut DenseMatrix, y: &DenseMatrix, cols: &[usize], scales: &[f64]) {
    for (k, (&j, &s)) in cols.iter().zip(scales).enumerate() {
        for i in 0..x.rows() {
            let v = x.get(i, j) + y.get(i, k) * s;
            x.set(i, j, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_tensor::gen::{laplacian_2d, random_spd};

    fn params() -> CgParams {
        CgParams {
            m: 81_920,
            occupancy: 4.0,
            a_payload_words: 2 * 327_680 + 81_921,
            n: 16,
            nprime: 16,
            iterations: 3,
            a_occupancy: None,
        }
    }

    #[test]
    fn dag_shape() {
        let dag = build_cg_dag(&params());
        assert_eq!(dag.node_count(), 8 * 3);
        // 9 intra edges per iteration + 8 cross-iteration edges per boundary.
        assert_eq!(dag.edge_count(), 9 * 3 + 8 * 2);
        assert_eq!(dag.externals().len(), 5);
    }

    #[test]
    fn dominances_match_fig7() {
        use cello_graph::node::Dominance;
        let dag = build_cg_dag(&params());
        let doms: Vec<Dominance> = dag.nodes().take(8).map(|(_, n)| n.dominance).collect();
        assert_eq!(
            doms,
            vec![
                Dominance::Uncontracted, // 1 (compressed k)
                Dominance::Contracted,   // 2a
                Dominance::Balanced,     // 2b (all small)
                Dominance::Uncontracted, // 3
                Dominance::Uncontracted, // 4
                Dominance::Contracted,   // 5
                Dominance::Balanced,     // 6
                Dominance::Uncontracted, // 7
            ]
        );
    }

    #[test]
    fn reuse_matches_fig10() {
        use cello_graph::reuse::ReuseProfile;
        let dag = build_cg_dag(&CgParams {
            iterations: 10,
            ..params()
        });
        let profile = ReuseProfile::compute(&dag, &dag.topo_order());
        // A is consumed once per iteration: freq 10 (Fig 10).
        assert_eq!(profile.tensor("A").unwrap().frequency, 10);
        // R@i: consumed by 5@i, 7@i, 4@(i+1): freq 3 (Fig 10).
        assert_eq!(profile.tensor("R@1").unwrap().frequency, 3);
        // X@i: only consumer is 3@(i+1): freq 1 (the paper's X example).
        assert_eq!(profile.tensor("X@1").unwrap().frequency, 1);
        // P@i: consumed by 1, 2a, 3, 7 of the next iteration.
        assert_eq!(profile.tensor("P@1").unwrap().frequency, 4);
        // Terminal-iteration outputs are dead.
        assert_eq!(profile.tensor("X@10").unwrap().frequency, 0);
    }

    #[test]
    fn numeric_cg_converges_on_laplacian() {
        let a = laplacian_2d(20, 20); // 400x400 SPD
        let mut b = DenseMatrix::zeros(400, 4);
        for i in 0..400 {
            for j in 0..4 {
                b.set(i, j, ((i * 7 + j * 13) % 23) as f64 / 23.0 + 0.1);
            }
        }
        let res = solve_block_cg(&a, &b, 200, 1e-18);
        assert!(res.converged, "history: {:?}", res.residual_history.last());
        // Check A·X ≈ B.
        let ax = spmm(&a, &res.x);
        assert!(ax.max_abs_diff(&b) < 1e-6, "{}", ax.max_abs_diff(&b));
    }

    #[test]
    fn numeric_cg_converges_on_random_spd() {
        let a = random_spd(300, 1800, 11);
        let mut b = DenseMatrix::zeros(300, 8);
        for i in 0..300 {
            for j in 0..8 {
                b.set(i, j, (((i + 3 * j) % 17) as f64 - 8.0) / 8.0);
            }
        }
        let res = solve_block_cg(&a, &b, 300, 1e-20);
        let ax = spmm(&a, &res.x);
        assert!(ax.max_abs_diff(&b) < 1e-7, "{}", ax.max_abs_diff(&b));
    }

    #[test]
    fn block_width_speeds_convergence() {
        // Block CG with more RHS should not need more iterations for the
        // same per-column accuracy (it searches a bigger Krylov block).
        let a = laplacian_2d(12, 12);
        let ones = |n: usize| {
            let mut b = DenseMatrix::zeros(144, n);
            for i in 0..144 {
                b.set(i, 0, 1.0);
            }
            b
        };
        let r1 = solve_block_cg(&a, &ones(1), 500, 1e-16);
        let r8 = solve_block_cg(&a, &ones(8), 500, 1e-16);
        assert!(r8.iterations_run <= r1.iterations_run);
    }

    #[test]
    fn residuals_decrease_monotonically_enough() {
        let a = laplacian_2d(15, 15);
        let mut b = DenseMatrix::zeros(225, 2);
        for i in 0..225 {
            b.set(i, 0, 1.0);
            b.set(i, 1, (i % 5) as f64);
        }
        let res = solve_block_cg(&a, &b, 50, 0.0);
        // Residual after the run is far below the start.
        let first = res.residual_history.first().copied().unwrap();
        let last = res.residual_history.last().copied().unwrap();
        assert!(last < first * 1e-6, "first {first} last {last}");
    }

    #[test]
    fn macs_accounting() {
        let dag = build_cg_dag(&params());
        let spmm_macs = dag.node(NodeId(0)).macs;
        assert_eq!(spmm_macs, 81_920 * 4 * 16); // nnz × N
        let contraction_macs = dag.node(NodeId(1)).macs;
        assert_eq!(contraction_macs, 81_920 * 16 * 16);
    }
}

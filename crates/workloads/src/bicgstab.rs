//! BiCGStab (van der Vorst 1992): numeric solver + DAG builder (Fig 13).
//!
//! The paper uses BiCGStab as a second PDE solver to show SCORE/CHORD
//! generalize beyond CG. One iteration is a 9-operation cascade with *two*
//! SpMMs and even richer delayed dependencies than CG (`v` is needed by the
//! α-contraction *and* the later `s` update; `s` by the SpMM, the
//! ω-contraction, and two updates; `t` by the contraction and the `r`
//! update):
//!
//! ```text
//! b1  ρ   = r̂₀ᵀ·r                 (C)
//! b2  p   = r + β(p − ω v)        (U)   β from scalars
//! b3  v   = A·p                   SpMM  (U)
//! b4  α   = ρ / (r̂₀ᵀ·v)          (C)
//! b5  s   = r − α v               (U)
//! b6  t   = A·s                   SpMM  (U)
//! b7  ω   = (tᵀ·s)/(tᵀ·t)        (C)
//! b8  x   = x + α p + ω s         (U)
//! b9  r   = s − ω t               (U)
//! ```

use cello_graph::dag::{NodeId, TensorDag};
use cello_graph::edge::TensorMeta;
use cello_graph::node::OpKind;
use cello_tensor::dense::DenseMatrix;
use cello_tensor::einsum::EinsumSpec;
use cello_tensor::shape::{RankExtent, RankId};
use cello_tensor::sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Shape parameters for a BiCGStab problem.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BicgParams {
    /// Matrix order `M`.
    pub m: u64,
    /// Average non-zeros per row.
    pub occupancy: f64,
    /// CSR payload words of `A`.
    pub a_payload_words: u64,
    /// Block width `N` (the paper runs N=1).
    pub n: u64,
    /// Iterations to unroll.
    pub iterations: u32,
}

impl BicgParams {
    /// From a dataset.
    pub fn from_dataset(d: &crate::datasets::Dataset, n: u64, iterations: u32) -> Self {
        Self {
            m: d.m as u64,
            occupancy: d.occupancy(),
            a_payload_words: d.csr_payload_words(),
            n,
            iterations,
        }
    }

    /// Words of an `M×N` vector block.
    pub fn big_words(&self) -> u64 {
        self.m * self.n
    }
}

fn specs(prm: &BicgParams) -> (EinsumSpec, EinsumSpec, EinsumSpec, EinsumSpec) {
    let occ = prm.occupancy.ceil().max(1.0) as u64;
    let m = RankExtent::dense("m", prm.m);
    let k_sp = RankExtent::compressed("k", prm.m, occ.min(prm.m));
    let k = RankExtent::dense("k", prm.m);
    let j = RankExtent::dense("j", prm.n);
    let n = RankExtent::dense("n", prm.n);
    let p = RankExtent::dense("p", prm.n);
    let spmm = EinsumSpec::from_parts(
        vec![
            vec![RankId::new("m"), RankId::new("k")],
            vec![RankId::new("k"), RankId::new("n")],
        ],
        vec![RankId::new("m"), RankId::new("n")],
        &[m, k_sp, n],
    );
    let contraction = EinsumSpec::from_parts(
        vec![
            vec![RankId::new("k"), RankId::new("p")],
            vec![RankId::new("k"), RankId::new("n")],
        ],
        vec![RankId::new("p"), RankId::new("n")],
        &[k, p, n],
    );
    let update = EinsumSpec::from_parts(
        vec![
            vec![RankId::new("m"), RankId::new("j")],
            vec![RankId::new("j"), RankId::new("n")],
        ],
        vec![RankId::new("m"), RankId::new("n")],
        &[m, j, n],
    );
    let small = EinsumSpec::from_parts(
        vec![
            vec![RankId::new("p"), RankId::new("j")],
            vec![RankId::new("j"), RankId::new("n")],
        ],
        vec![RankId::new("p"), RankId::new("n")],
        &[p, j, n],
    );
    (spmm, contraction, update, small)
}

/// Builds the unrolled BiCGStab DAG.
pub fn build_bicgstab_dag(prm: &BicgParams) -> TensorDag {
    let (spmm, contraction, update, _small) = specs(prm);
    let mut dag = TensorDag::new();
    let bw = prm.big_words();
    let sw = prm.n * prm.n;
    let big = |name: String| TensorMeta::dense(name, &["m", "n"], bw);
    let tiny = |name: String| TensorMeta::dense(name, &["p", "n"], sw);

    struct Iter {
        b1: NodeId,
        b2: NodeId,
        b3: NodeId,
        b8: NodeId,
        b9: NodeId,
    }
    let mut prev: Option<Iter> = None;
    let mut first: Option<(NodeId, NodeId, NodeId, NodeId, NodeId)> = None;

    for i in 1..=prm.iterations {
        let b1 = dag.add_op(
            format!("b1@{i}:ρ=r̂ᵀr"),
            contraction.clone(),
            OpKind::TensorMac,
            tiny(format!("rho@{i}")),
        );
        let b2 = dag.add_op(
            format!("b2@{i}:p=r+β(p-ωv)"),
            update.clone(),
            OpKind::TensorMac,
            big(format!("p@{i}")),
        );
        let b3 = dag.add_op(
            format!("b3@{i}:v=A·p"),
            spmm.clone(),
            OpKind::TensorMac,
            big(format!("v@{i}")),
        );
        let b4 = dag.add_op(
            format!("b4@{i}:α=ρ/r̂ᵀv"),
            contraction.clone(),
            OpKind::TensorMac,
            tiny(format!("al@{i}")),
        );
        let b5 = dag.add_op(
            format!("b5@{i}:s=r-αv"),
            update.clone(),
            OpKind::TensorMac,
            big(format!("s@{i}")),
        );
        let b6 = dag.add_op(
            format!("b6@{i}:t=A·s"),
            spmm.clone(),
            OpKind::TensorMac,
            big(format!("t@{i}")),
        );
        let b7 = dag.add_op(
            format!("b7@{i}:ω=tᵀs/tᵀt"),
            contraction.clone(),
            OpKind::TensorMac,
            tiny(format!("om@{i}")),
        );
        let b8 = dag.add_op(
            format!("b8@{i}:x+=αp+ωs"),
            update.clone(),
            OpKind::TensorMac,
            big(format!("x@{i}")),
        );
        let b9 = dag.add_op(
            format!("b9@{i}:r=s-ωt"),
            update.clone(),
            OpKind::TensorMac,
            big(format!("r@{i}")),
        );

        // Intra-iteration edges.
        dag.add_edge(b1, b2, &["p", "n"]); // ρ into β (tiny)
        dag.add_edge(b2, b3, &["k", "n"]); // p into SpMM (unshared -> seq)
        dag.add_edge(b3, b4, &["k", "n"]); // v into contraction (pipelineable)
        dag.add_edge(b4, b5, &["j", "n"]); // α
        dag.add_edge(b3, b5, &["m", "j"]); // v delayed via b4 (writeback)
        dag.add_edge(b5, b6, &["k", "n"]); // s into SpMM (unshared)
        dag.add_edge(b6, b7, &["k", "n"]); // t into contraction (pipelineable)
        dag.add_edge(b5, b7, &["k", "p"]); // s delayed into ω
        dag.add_edge(b7, b8, &["j", "n"]); // ω multicast …
        dag.add_edge(b7, b9, &["j", "n"]); // … to x and r updates
        dag.add_edge(b2, b8, &["m", "j"]); // p delayed into x (writeback)
        dag.add_edge(b5, b8, &["m", "j"]); // s delayed into x
        dag.add_edge(b5, b9, &["m", "j"]); // s delayed into r
        dag.add_edge(b6, b9, &["m", "j"]); // t delayed into r

        if let Some(pr) = &prev {
            dag.add_edge(pr.b9, b1, &["k", "n"]); // r into ρ
            dag.add_edge(pr.b9, b2, &["m", "j"]); // r into p update
            dag.add_edge(pr.b9, b5, &["m", "j"]); // r into s update
            dag.add_edge(pr.b2, b2, &["m", "j"]); // p accumulator
            dag.add_edge(pr.b3, b2, &["m", "j"]); // v into p update
            dag.add_edge(pr.b8, b8, &["m", "n"]); // x accumulator
            dag.add_edge(pr.b1, b2, &["p", "j"]); // ρ_prev into β
        } else {
            first = Some((b1, b2, b3, b5, b8));
        }
        prev = Some(Iter { b1, b2, b3, b8, b9 });
    }

    // Externals: A feeds both SpMMs of every iteration; r̂0 feeds the ρ/α
    // contractions; initial r/p/v/x feed iteration 1.
    let spmm_nodes: Vec<(NodeId, &[&str])> = dag
        .nodes()
        .filter(|(_, n)| n.name.contains("b3@") || n.name.contains("b6@"))
        .map(|(id, _)| (id, ["m", "k"].as_slice()))
        .collect();
    dag.add_external(
        TensorMeta::sparse("A", &["m", "k"], prm.a_payload_words),
        &spmm_nodes,
    );
    let rhat_nodes: Vec<(NodeId, &[&str])> = dag
        .nodes()
        .filter(|(_, n)| n.name.contains("b1@") || n.name.contains("b4@"))
        .map(|(id, _)| (id, ["k", "p"].as_slice()))
        .collect();
    dag.add_external(TensorMeta::dense("rhat0", &["m", "n"], bw), &rhat_nodes);
    let (f1, f2, _f3, f5, f8) = first.expect("at least one iteration");
    dag.add_external(
        TensorMeta::dense("r@0", &["m", "n"], bw),
        &[(f1, &["k", "n"]), (f2, &["m", "j"]), (f5, &["m", "j"])],
    );
    dag.add_external(
        TensorMeta::dense("p@0", &["m", "n"], bw),
        &[(f2, &["m", "j"])],
    );
    dag.add_external(
        TensorMeta::dense("v@0", &["m", "n"], bw),
        &[(f2, &["m", "j"])],
    );
    dag.add_external(
        TensorMeta::dense("x@0", &["m", "n"], bw),
        &[(f8, &["m", "n"])],
    );
    dag
}

/// Result of a numeric BiCGStab solve (single right-hand side).
#[derive(Clone, Debug)]
pub struct BicgResult {
    /// Solution vector (`M × 1`).
    pub x: DenseMatrix,
    /// Iterations run.
    pub iterations_run: u32,
    /// ‖r‖₂ after each iteration.
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was met.
    pub converged: bool,
}

fn dot(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| x * y)
        .sum()
}

/// Numeric BiCGStab for `A·x = b` (van der Vorst 1992).
pub fn solve_bicgstab(a: &CsrMatrix, b: &DenseMatrix, max_iters: u32, tol: f64) -> BicgResult {
    use cello_tensor::kernels::spmm;
    assert_eq!(b.cols(), 1, "solve_bicgstab is single-RHS");
    let m = a.rows();
    let mut x = DenseMatrix::zeros(m, 1);
    let mut r = b.clone();
    let rhat = r.clone();
    let (mut rho_prev, mut alpha, mut omega) = (1.0f64, 1.0f64, 1.0f64);
    let mut v = DenseMatrix::zeros(m, 1);
    let mut p = DenseMatrix::zeros(m, 1);
    let mut history = Vec::new();
    let mut converged = false;
    let mut it = 0;
    while it < max_iters {
        it += 1;
        let rho = dot(&rhat, &r); // b1
        if rho.abs() < 1e-300 {
            break;
        }
        let beta = (rho / rho_prev) * (alpha / omega); // scalar
                                                       // b2: p = r + β (p − ω v)
        let mut pmwv = p.clone();
        pmwv.axpy(-omega, &v);
        p = r.clone();
        p.axpy(beta, &pmwv);
        v = spmm(a, &p); // b3
        let rhat_v = dot(&rhat, &v); // b4
        if rhat_v.abs() < 1e-300 {
            break;
        }
        alpha = rho / rhat_v;
        let mut s = r.clone(); // b5
        s.axpy(-alpha, &v);
        let t = spmm(a, &s); // b6
        let tt = dot(&t, &t); // b7
        omega = if tt.abs() < 1e-300 {
            0.0
        } else {
            dot(&t, &s) / tt
        };
        x.axpy(alpha, &p); // b8
        x.axpy(omega, &s);
        r = s; // b9
        r.axpy(-omega, &t);
        let rnorm = r.frobenius_norm();
        history.push(rnorm);
        if rnorm <= tol {
            converged = true;
            break;
        }
        if omega == 0.0 {
            break;
        }
        rho_prev = rho;
    }
    BicgResult {
        x,
        iterations_run: it,
        residual_history: history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_tensor::gen::{laplacian_2d, random_spd};
    use cello_tensor::kernels::spmm;

    fn prm() -> BicgParams {
        BicgParams {
            m: 9604,
            occupancy: 8.9,
            a_payload_words: 2 * 85_264 + 9605,
            n: 1,
            iterations: 3,
        }
    }

    #[test]
    fn dag_shape() {
        let dag = build_bicgstab_dag(&prm());
        assert_eq!(dag.node_count(), 9 * 3);
        assert_eq!(dag.edge_count(), 14 * 3 + 7 * 2);
        assert_eq!(dag.externals().len(), 6);
        // A feeds two SpMMs per iteration.
        assert_eq!(dag.externals()[0].consumers.len(), 6);
    }

    #[test]
    fn delayed_writebacks_exist() {
        use cello_core::score::classify::classify;
        let dag = build_bicgstab_dag(&prm());
        let cls = classify(&dag);
        let h = cls.histogram();
        // BiCGStab is rich in delayed writebacks (v, s, t, p…).
        assert!(h[3] > 0, "expected delayed writebacks, histogram {h:?}");
        assert!(h[1] > 0, "expected pipelineable edges (v→α, t→ω)");
    }

    #[test]
    fn numeric_bicgstab_converges_on_spd() {
        let a = laplacian_2d(18, 18);
        let mut b = DenseMatrix::zeros(324, 1);
        for i in 0..324 {
            b.set(i, 0, ((i % 11) as f64 - 5.0) / 5.0 + 0.05);
        }
        let res = solve_bicgstab(&a, &b, 400, 1e-10);
        assert!(res.converged, "residual {:?}", res.residual_history.last());
        let ax = spmm(&a, &res.x);
        assert!(ax.max_abs_diff(&b) < 1e-7);
    }

    #[test]
    fn numeric_bicgstab_on_random_spd() {
        let a = random_spd(250, 1500, 5);
        let mut b = DenseMatrix::zeros(250, 1);
        for i in 0..250 {
            b.set(i, 0, 1.0 + (i % 7) as f64);
        }
        let res = solve_bicgstab(&a, &b, 400, 1e-9);
        let ax = spmm(&a, &res.x);
        assert!(ax.max_abs_diff(&b) < 1e-6, "{}", ax.max_abs_diff(&b));
    }

    #[test]
    fn residuals_shrink() {
        let a = laplacian_2d(14, 14);
        let mut b = DenseMatrix::zeros(196, 1);
        for i in 0..196 {
            b.set(i, 0, 1.0);
        }
        let res = solve_bicgstab(&a, &b, 60, 0.0);
        let first = res.residual_history.first().copied().unwrap();
        let last = res.residual_history.last().copied().unwrap();
        assert!(last < first * 1e-3, "first {first} last {last}");
    }
}

//! HPCG survey data (paper Table I) and an HPCG-shaped CG workload.
//!
//! The paper motivates CELLO with the HPCG-vs-HPL gap on the top
//! supercomputers (CG reaches only 1–3% of peak). The survey rows are
//! embedded so the `tab01_hpcg` harness can re-emit the table and tests can
//! verify the derived percentages. [`build_hpcg_dag`] additionally provides
//! a schedulable workload: HPCG's core is CG over a 27-point 3-D stencil,
//! so the DAG is the CG cascade at occupancy 27 — dense enough that the
//! sparse operand dwarfs the 5-point problems and stresses CHORD capacity
//! (which is what the `cello_dse` auto-tuner sweeps against).

use crate::cg::{build_cg_dag, CgParams, OCCUPANCY_BLOCK_TARGET};
use cello_graph::dag::TensorDag;
use cello_tensor::sparse::{OccupancyStats, OCCUPANCY_BUCKETS};
use serde::{Deserialize, Serialize};

/// HPCG problem shape: CG over an `nx³` 27-point stencil.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HpcgParams {
    /// Grid points per dimension (`m = nx³`).
    pub nx: u64,
    /// Simultaneous right-hand sides.
    pub n: u64,
    /// CG iterations to unroll.
    pub iterations: u32,
}

impl HpcgParams {
    /// The CG parameters this HPCG shape lowers to. The footprint model
    /// keeps the nominal occupancy 27 (interior rows dominate for any
    /// realistic `nx`), but the per-row-block occupancy histogram is the
    /// *exact* analytic one of the 27-point stencil — boundary blocks are
    /// genuinely thinner than interior ones, which is what lets the DSE's
    /// overbooking axis act on this workload instead of degenerating to
    /// the uniform identity path.
    pub fn cg(&self) -> CgParams {
        let m = self.nx * self.nx * self.nx;
        let occupancy = 27.0;
        let nnz = (m as f64 * occupancy).round() as u64;
        let block_rows = (m as usize).div_ceil(OCCUPANCY_BLOCK_TARGET).max(1);
        CgParams {
            m,
            occupancy,
            // CSR payload: values + column indices + row pointers.
            a_payload_words: 2 * nnz + m + 1,
            n: self.n,
            nprime: self.n,
            iterations: self.iterations,
            a_occupancy: Some(stencil27_occupancy(self.nx, block_rows)),
        }
    }
}

/// Analytic per-row-block occupancy of the 27-point stencil on an `nx³`
/// grid, bit-for-bit what [`CsrMatrix::occupancy_stats`] computes on the
/// materialized matrix — without materializing it. Row `r = (z·nx + y)·nx
/// + x` couples to every grid neighbor within Chebyshev distance 1, so its
/// nnz is `c(x)·c(y)·c(z)` where `c` is 3 interior, 2 on a face, 1 when
/// the dimension is degenerate (`nx == 1`).
///
/// [`CsrMatrix::occupancy_stats`]: cello_tensor::sparse::CsrMatrix::occupancy_stats
pub fn stencil27_occupancy(nx: u64, block_rows: usize) -> OccupancyStats {
    let nx = nx.max(1) as usize;
    let rows = nx * nx * nx;
    let block_rows = block_rows.clamp(1, rows);
    let blocks = rows.div_ceil(block_rows);
    let span = |i: usize| -> u64 {
        if nx == 1 {
            1
        } else if i == 0 || i == nx - 1 {
            2
        } else {
            3
        }
    };
    let row_nnz = |r: usize| span(r % nx) * span((r / nx) % nx) * span(r / (nx * nx));
    let cols = rows as f64;
    let mut fractions = Vec::with_capacity(blocks);
    for b in 0..blocks {
        let lo = b * block_rows;
        let hi = ((b + 1) * block_rows).min(rows);
        let nnz: u64 = (lo..hi).map(row_nnz).sum();
        let capacity = (hi - lo).max(1) as f64 * cols;
        fractions.push(nnz as f64 / capacity);
    }
    let n = fractions.len() as f64;
    let mean = fractions.iter().sum::<f64>() / n;
    let variance = fractions
        .iter()
        .map(|f| (f - mean) * (f - mean))
        .sum::<f64>()
        / n;
    let max = fractions.iter().cloned().fold(0.0f64, f64::max);
    let mut histogram = [0u32; OCCUPANCY_BUCKETS];
    for f in &fractions {
        let rel = if max > 0.0 { f / max } else { 0.0 };
        let bucket = ((rel * OCCUPANCY_BUCKETS as f64) as usize).min(OCCUPANCY_BUCKETS - 1);
        histogram[bucket] = histogram[bucket].saturating_add(1);
    }
    OccupancyStats {
        block_rows: block_rows as u32,
        blocks: blocks as u32,
        mean,
        variance,
        max,
        histogram,
    }
}

/// Builds the HPCG tensor dependency DAG (the unrolled CG cascade over a
/// 27-point stencil matrix).
pub fn build_hpcg_dag(prm: &HpcgParams) -> TensorDag {
    build_cg_dag(&prm.cg())
}

/// One Table I row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HpcgEntry {
    /// Supercomputer name.
    pub system: &'static str,
    /// HPL PFLOP/s.
    pub hpl_pflops: f64,
    /// HPCG PFLOP/s (`None` = not reported, e.g. Eagle).
    pub hpcg_pflops: Option<f64>,
    /// HPCG as % of peak, as published.
    pub hpcg_pct_of_peak: Option<f64>,
}

impl HpcgEntry {
    /// HPCG as a percentage of HPL (derived).
    pub fn hpcg_pct_of_hpl(&self) -> Option<f64> {
        self.hpcg_pflops.map(|h| 100.0 * h / self.hpl_pflops)
    }
}

/// Table I (adapted from the HPCG November 2023 list).
pub fn table1() -> Vec<HpcgEntry> {
    vec![
        HpcgEntry {
            system: "Frontier",
            hpl_pflops: 1206.0,
            hpcg_pflops: Some(14.05),
            hpcg_pct_of_peak: Some(0.8),
        },
        HpcgEntry {
            system: "Aurora",
            hpl_pflops: 1012.0,
            hpcg_pflops: Some(5.61),
            hpcg_pct_of_peak: Some(0.3),
        },
        HpcgEntry {
            system: "Eagle",
            hpl_pflops: 561.2,
            hpcg_pflops: None,
            hpcg_pct_of_peak: None,
        },
        HpcgEntry {
            system: "Fugaku",
            hpl_pflops: 442.01,
            hpcg_pflops: Some(16.0),
            hpcg_pct_of_peak: Some(3.0),
        },
        HpcgEntry {
            system: "Lumi",
            hpl_pflops: 379.7,
            hpcg_pflops: Some(4.587),
            hpcg_pct_of_peak: Some(0.87),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_systems() {
        assert_eq!(table1().len(), 5);
    }

    #[test]
    fn derived_percentages_match_paper() {
        let t = table1();
        // Frontier: 14.05/1206 = 1.16%.
        assert!((t[0].hpcg_pct_of_hpl().unwrap() - 1.16).abs() < 0.01);
        // Aurora: 5.61/1012 = 0.55%.
        assert!((t[1].hpcg_pct_of_hpl().unwrap() - 0.55).abs() < 0.01);
        // Fugaku: 16/442.01 = 3.62%.
        assert!((t[3].hpcg_pct_of_hpl().unwrap() - 3.62).abs() < 0.01);
        // Lumi: 4.587/379.7 = 1.2%.
        assert!((t[4].hpcg_pct_of_hpl().unwrap() - 1.21).abs() < 0.02);
    }

    #[test]
    fn cg_reaches_only_single_digit_percent_of_peak() {
        // The motivation: every reported system sits at 1–4% of HPL.
        for e in table1() {
            if let Some(pct) = e.hpcg_pct_of_hpl() {
                assert!(pct < 4.0, "{}: {pct}%", e.system);
                assert!(pct > 0.3);
            }
        }
    }

    #[test]
    fn hpcg_dag_is_cg_shaped_at_occupancy_27() {
        let prm = HpcgParams {
            nx: 32,
            n: 16,
            iterations: 3,
        };
        let cg = prm.cg();
        assert_eq!(cg.m, 32 * 32 * 32);
        assert_eq!(cg.occupancy, 27.0);
        assert_eq!(cg.a_payload_words, 2 * 27 * 32768 + 32768 + 1);
        let dag = build_hpcg_dag(&prm);
        assert_eq!(dag.node_count(), 8 * 3, "the 7-op cascade per iteration");
        assert!(!dag.externals().is_empty());
    }

    /// Materializes the 27-point stencil matrix. Test-only: the production
    /// path never builds it — that is the point of the analytic stats.
    fn stencil27_csr(nx: usize) -> cello_tensor::sparse::CsrMatrix {
        let mut coo = cello_tensor::sparse::CooMatrix::new(nx * nx * nx, nx * nx * nx);
        let idx = |x: usize, y: usize, z: usize| (z * nx + y) * nx + x;
        for z in 0..nx {
            for y in 0..nx {
                for x in 0..nx {
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                                let inside = |v: i64| (0..nx as i64).contains(&v);
                                if inside(xx) && inside(yy) && inside(zz) {
                                    coo.push(
                                        idx(x, y, z),
                                        idx(xx as usize, yy as usize, zz as usize),
                                        1.0,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn analytic_occupancy_matches_the_materialized_stencil() {
        for (nx, block_rows) in [(1u64, 1usize), (2, 1), (4, 3), (5, 2), (6, 64)] {
            let analytic = stencil27_occupancy(nx, block_rows);
            let exact = stencil27_csr(nx as usize).occupancy_stats(block_rows);
            assert_eq!(analytic, exact, "nx {nx}, block_rows {block_rows}");
        }
    }

    #[test]
    fn hpcg_params_carry_skewed_occupancy() {
        let stats = HpcgParams {
            nx: 16,
            n: 16,
            iterations: 1,
        }
        .cg()
        .a_occupancy
        .expect("hpcg must feed the overbooking model");
        // Boundary blocks are thinner than interior ones: real skew, so
        // the overbook axis has something to act on...
        assert!(stats.variance > 0.0, "stencil blocks must not be uniform");
        assert!(stats.rel_mean() < 1.0);
        // ...but a stencil is still far from pathological: the mean block
        // holds most of the worst block's occupancy.
        assert!(stats.rel_mean() > 0.5, "rel_mean {}", stats.rel_mean());
        // m = 16³ = 4096 rows over the 64-block target: 64 blocks of 64.
        assert_eq!((stats.block_rows, stats.blocks), (64, 64));
    }
}

//! HPCG survey data (paper Table I) and an HPCG-shaped CG workload.
//!
//! The paper motivates CELLO with the HPCG-vs-HPL gap on the top
//! supercomputers (CG reaches only 1–3% of peak). The survey rows are
//! embedded so the `tab01_hpcg` harness can re-emit the table and tests can
//! verify the derived percentages. [`build_hpcg_dag`] additionally provides
//! a schedulable workload: HPCG's core is CG over a 27-point 3-D stencil,
//! so the DAG is the CG cascade at occupancy 27 — dense enough that the
//! sparse operand dwarfs the 5-point problems and stresses CHORD capacity
//! (which is what the `cello_dse` auto-tuner sweeps against).

use crate::cg::{build_cg_dag, CgParams};
use cello_graph::dag::TensorDag;
use serde::{Deserialize, Serialize};

/// HPCG problem shape: CG over an `nx³` 27-point stencil.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HpcgParams {
    /// Grid points per dimension (`m = nx³`).
    pub nx: u64,
    /// Simultaneous right-hand sides.
    pub n: u64,
    /// CG iterations to unroll.
    pub iterations: u32,
}

impl HpcgParams {
    /// The CG parameters this HPCG shape lowers to.
    pub fn cg(&self) -> CgParams {
        let m = self.nx * self.nx * self.nx;
        let occupancy = 27.0;
        let nnz = (m as f64 * occupancy).round() as u64;
        CgParams {
            m,
            occupancy,
            // CSR payload: values + column indices + row pointers.
            a_payload_words: 2 * nnz + m + 1,
            n: self.n,
            nprime: self.n,
            iterations: self.iterations,
            a_occupancy: None,
        }
    }
}

/// Builds the HPCG tensor dependency DAG (the unrolled CG cascade over a
/// 27-point stencil matrix).
pub fn build_hpcg_dag(prm: &HpcgParams) -> TensorDag {
    build_cg_dag(&prm.cg())
}

/// One Table I row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HpcgEntry {
    /// Supercomputer name.
    pub system: &'static str,
    /// HPL PFLOP/s.
    pub hpl_pflops: f64,
    /// HPCG PFLOP/s (`None` = not reported, e.g. Eagle).
    pub hpcg_pflops: Option<f64>,
    /// HPCG as % of peak, as published.
    pub hpcg_pct_of_peak: Option<f64>,
}

impl HpcgEntry {
    /// HPCG as a percentage of HPL (derived).
    pub fn hpcg_pct_of_hpl(&self) -> Option<f64> {
        self.hpcg_pflops.map(|h| 100.0 * h / self.hpl_pflops)
    }
}

/// Table I (adapted from the HPCG November 2023 list).
pub fn table1() -> Vec<HpcgEntry> {
    vec![
        HpcgEntry {
            system: "Frontier",
            hpl_pflops: 1206.0,
            hpcg_pflops: Some(14.05),
            hpcg_pct_of_peak: Some(0.8),
        },
        HpcgEntry {
            system: "Aurora",
            hpl_pflops: 1012.0,
            hpcg_pflops: Some(5.61),
            hpcg_pct_of_peak: Some(0.3),
        },
        HpcgEntry {
            system: "Eagle",
            hpl_pflops: 561.2,
            hpcg_pflops: None,
            hpcg_pct_of_peak: None,
        },
        HpcgEntry {
            system: "Fugaku",
            hpl_pflops: 442.01,
            hpcg_pflops: Some(16.0),
            hpcg_pct_of_peak: Some(3.0),
        },
        HpcgEntry {
            system: "Lumi",
            hpl_pflops: 379.7,
            hpcg_pflops: Some(4.587),
            hpcg_pct_of_peak: Some(0.87),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_systems() {
        assert_eq!(table1().len(), 5);
    }

    #[test]
    fn derived_percentages_match_paper() {
        let t = table1();
        // Frontier: 14.05/1206 = 1.16%.
        assert!((t[0].hpcg_pct_of_hpl().unwrap() - 1.16).abs() < 0.01);
        // Aurora: 5.61/1012 = 0.55%.
        assert!((t[1].hpcg_pct_of_hpl().unwrap() - 0.55).abs() < 0.01);
        // Fugaku: 16/442.01 = 3.62%.
        assert!((t[3].hpcg_pct_of_hpl().unwrap() - 3.62).abs() < 0.01);
        // Lumi: 4.587/379.7 = 1.2%.
        assert!((t[4].hpcg_pct_of_hpl().unwrap() - 1.21).abs() < 0.02);
    }

    #[test]
    fn cg_reaches_only_single_digit_percent_of_peak() {
        // The motivation: every reported system sits at 1–4% of HPL.
        for e in table1() {
            if let Some(pct) = e.hpcg_pct_of_hpl() {
                assert!(pct < 4.0, "{}: {pct}%", e.system);
                assert!(pct > 0.3);
            }
        }
    }

    #[test]
    fn hpcg_dag_is_cg_shaped_at_occupancy_27() {
        let prm = HpcgParams {
            nx: 32,
            n: 16,
            iterations: 3,
        };
        let cg = prm.cg();
        assert_eq!(cg.m, 32 * 32 * 32);
        assert_eq!(cg.occupancy, 27.0);
        assert_eq!(cg.a_payload_words, 2 * 27 * 32768 + 32768 + 1);
        let dag = build_hpcg_dag(&prm);
        assert_eq!(dag.node_count(), 8 * 3, "the 7-op cascade per iteration");
        assert!(!dag.externals().is_empty());
    }
}

//! Dataset registry (paper Table VI) with synthetic generation, plus a
//! Matrix Market (`.mtx`) loader for real SuiteSparse sparsity patterns.
//!
//! The paper's datasets come from SuiteSparse (PDE matrices) and OMEGA (GNN
//! graphs). We register their published statistics and generate synthetic
//! stand-ins matching `M` and `nnz` (see DESIGN.md §2 — the traffic and
//! roofline study depends only on shapes/footprints, and our SPD generators
//! also let the numeric solvers converge). When an actual SuiteSparse
//! download is at hand, [`load_matrix_market`] parses the standard
//! coordinate format (`real`/`integer`/`pattern` fields, `general`/
//! `symmetric` symmetry) into a [`CsrMatrix`], so CG/HPCG-style DAGs can be
//! built from the *real* sparsity pattern instead of the stand-in —
//! `cello-serve`'s `loadgen --mtx` wires exactly that into its request mix.

use cello_tensor::gen::{random_graph_adjacency, random_spd};
use cello_tensor::sparse::{CooMatrix, CsrMatrix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of workload a dataset feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// PDE-style SPD matrix solved with CG/BiCGStab.
    Pde,
    /// Graph adjacency for a GCN layer, with input/output feature widths.
    Graph {
        /// Input feature width (`N` in Table VI).
        features: u64,
        /// Output feature width (`O`).
        outputs: u64,
    },
}

/// One Table VI dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// SuiteSparse/OMEGA name.
    pub name: &'static str,
    /// Row count (`M`; vertices for graphs).
    pub m: usize,
    /// Published non-zero count.
    pub nnz: usize,
    /// Workload kind.
    pub kind: DatasetKind,
    /// Paper context (Table VI "Workload" column).
    pub workload: &'static str,
}

impl Dataset {
    /// Average non-zeros per row.
    pub fn occupancy(&self) -> f64 {
        self.nnz as f64 / self.m as f64
    }

    /// CSR payload in words: values + column indices + row pointers.
    pub fn csr_payload_words(&self) -> u64 {
        2 * self.nnz as u64 + self.m as u64 + 1
    }

    /// Generates the synthetic stand-in matrix (deterministic per dataset).
    pub fn generate(&self) -> CsrMatrix {
        let seed = self
            .name
            .bytes()
            .fold(0xCE110u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        match self.kind {
            DatasetKind::Pde => random_spd(self.m, self.nnz, seed),
            DatasetKind::Graph { .. } => random_graph_adjacency(self.m, self.nnz, seed),
        }
    }
}

/// `fv1`: the 2D/3D problem matrix (Table VI row 1).
pub const FV1: Dataset = Dataset {
    name: "fv1",
    m: 9604,
    nnz: 85_264,
    kind: DatasetKind::Pde,
    workload: "2D/3D problem",
};

/// `shallow_water1`: computational fluid dynamics (Table VI row 2).
pub const SHALLOW_WATER1: Dataset = Dataset {
    name: "shallow_water1",
    m: 81_920,
    nnz: 327_680,
    kind: DatasetKind::Pde,
    workload: "Fluid Dynamics",
};

/// `G2_circuit`: circuit simulation (Table VI row 3).
pub const G2_CIRCUIT: Dataset = Dataset {
    name: "G2_circuit",
    m: 150_102,
    nnz: 726_674,
    kind: DatasetKind::Pde,
    workload: "Circuit sim",
};

/// `NASA4704`: the BiCGStab structural matrix (Fig 13).
pub const NASA4704: Dataset = Dataset {
    name: "NASA4704",
    m: 4704,
    nnz: 104_756,
    kind: DatasetKind::Pde,
    workload: "Structural (BiCGStab)",
};

/// `cora`: citation-graph GCN layer (Table VI row 4).
pub const CORA: Dataset = Dataset {
    name: "cora",
    m: 2708,
    nnz: 9464,
    kind: DatasetKind::Graph {
        features: 1433,
        outputs: 7,
    },
    workload: "GCN Layer",
};

/// `protein`: protein-graph GCN layer (Table VI row 5).
pub const PROTEIN: Dataset = Dataset {
    name: "protein",
    m: 3786,
    nnz: 14_456,
    kind: DatasetKind::Graph {
        features: 29,
        outputs: 2,
    },
    workload: "GCN Layer",
};

/// Why a Matrix Market file failed to load — a typed error, never a panic:
/// the serving path feeds untrusted files through this parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MtxError {
    /// The file could not be read.
    Io(String),
    /// Missing or malformed `%%MatrixMarket` banner.
    BadBanner(String),
    /// An unsupported format/field/symmetry combination (only
    /// `matrix coordinate {real,integer,pattern} {general,symmetric}` is
    /// accepted — `complex`/`hermitian`/`skew-symmetric`/`array` are not
    /// workloads this model runs).
    Unsupported(String),
    /// A malformed size or entry line (1-based line number + complaint).
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// An entry's coordinates fall outside the declared dimensions.
    OutOfBounds {
        /// 1-based line number in the file.
        line: usize,
        /// The offending (row, col), 1-based as written.
        coord: (usize, usize),
    },
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "cannot read .mtx file: {e}"),
            MtxError::BadBanner(b) => write!(f, "bad MatrixMarket banner: {b:?}"),
            MtxError::Unsupported(what) => write!(f, "unsupported MatrixMarket flavor: {what}"),
            MtxError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            MtxError::OutOfBounds { line, coord } => {
                write!(
                    f,
                    "line {line}: entry ({}, {}) out of bounds",
                    coord.0, coord.1
                )
            }
        }
    }
}

impl std::error::Error for MtxError {}

/// Parses Matrix Market coordinate text into CSR. Symmetric files must list
/// only the lower triangle (`row ≥ col`, the MM spec's rule) and each
/// off-diagonal entry is mirrored — an upper-triangle entry is a typed
/// [`MtxError::Parse`], because mirroring it *too* would silently double
/// any value the file also lists at the transposed coordinate. `pattern`
/// fields take value 1.0; duplicate coordinates accumulate (the COO
/// builder's semantics, matching the MM spec's "assembled from duplicates"
/// reading). Explicit zeros are dropped during CSR assembly
/// ([`CooMatrix::to_csr`]), so the loaded `nnz()` can sit below the header
/// count — stored structural non-zeros are what every payload/occupancy
/// consumer reads.
pub fn parse_matrix_market(text: &str) -> Result<CsrMatrix, MtxError> {
    let mut lines = text.lines().enumerate();
    let (_, banner) = lines
        .next()
        .ok_or_else(|| MtxError::BadBanner("empty file".into()))?;
    let tokens: Vec<String> = banner.split_whitespace().map(str::to_lowercase).collect();
    if tokens.first().map(String::as_str) != Some("%%matrixmarket") {
        return Err(MtxError::BadBanner(banner.into()));
    }
    if tokens.len() != 5 {
        return Err(MtxError::BadBanner(banner.into()));
    }
    let (object, format, field, symmetry) = (&tokens[1], &tokens[2], &tokens[3], &tokens[4]);
    if object != "matrix" || format != "coordinate" {
        return Err(MtxError::Unsupported(format!("{object} {format}")));
    }
    if !matches!(field.as_str(), "real" | "integer" | "pattern") {
        return Err(MtxError::Unsupported(format!("field {field}")));
    }
    let symmetric = match symmetry.as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(MtxError::Unsupported(format!("symmetry {other}"))),
    };
    let pattern = field == "pattern";

    // Size line: first non-comment, non-blank line after the banner.
    let mut size: Option<(usize, usize, usize, usize)> = None; // rows, cols, nnz, line no
    let mut coo: Option<CooMatrix> = None;
    let mut seen = 0usize;
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match size {
            None => {
                if fields.len() != 3 {
                    return Err(MtxError::Parse {
                        line: line_no,
                        msg: format!("size line needs 'rows cols nnz', got {line:?}"),
                    });
                }
                let parse = |s: &str| -> Result<usize, MtxError> {
                    s.parse().map_err(|_| MtxError::Parse {
                        line: line_no,
                        msg: format!("bad size {s:?}"),
                    })
                };
                let (r, c, n) = (parse(fields[0])?, parse(fields[1])?, parse(fields[2])?);
                size = Some((r, c, n, line_no));
                coo = Some(CooMatrix::new(r, c));
            }
            Some((rows, cols, declared, _)) => {
                let want = if pattern { 2 } else { 3 };
                if fields.len() < want {
                    return Err(MtxError::Parse {
                        line: line_no,
                        msg: format!("entry needs {want} fields, got {line:?}"),
                    });
                }
                let coord = |s: &str| -> Result<usize, MtxError> {
                    let v: usize = s.parse().map_err(|_| MtxError::Parse {
                        line: line_no,
                        msg: format!("bad index {s:?}"),
                    })?;
                    if v == 0 {
                        return Err(MtxError::Parse {
                            line: line_no,
                            msg: "indices are 1-based; found 0".into(),
                        });
                    }
                    Ok(v)
                };
                let (r1, c1) = (coord(fields[0])?, coord(fields[1])?);
                if r1 > rows || c1 > cols {
                    return Err(MtxError::OutOfBounds {
                        line: line_no,
                        coord: (r1, c1),
                    });
                }
                let value = if pattern {
                    1.0
                } else {
                    fields[2].parse::<f64>().map_err(|_| MtxError::Parse {
                        line: line_no,
                        msg: format!("bad value {:?}", fields[2]),
                    })?
                };
                seen += 1;
                if seen > declared {
                    return Err(MtxError::Parse {
                        line: line_no,
                        msg: format!("more than the declared {declared} entries"),
                    });
                }
                if symmetric && c1 > r1 {
                    return Err(MtxError::Parse {
                        line: line_no,
                        msg: format!(
                            "symmetric files store the lower triangle only; \
                             entry ({r1}, {c1}) is above the diagonal"
                        ),
                    });
                }
                let builder = coo.as_mut().expect("size parsed before entries");
                builder.push(r1 - 1, c1 - 1, value);
                if symmetric && r1 != c1 {
                    builder.push(c1 - 1, r1 - 1, value);
                }
            }
        }
    }
    let Some((_, _, declared, size_line)) = size else {
        return Err(MtxError::Parse {
            line: 1,
            msg: "no size line".into(),
        });
    };
    if seen != declared {
        return Err(MtxError::Parse {
            line: size_line,
            msg: format!("declared {declared} entries, file has {seen}"),
        });
    }
    Ok(coo.expect("built alongside size").to_csr())
}

/// Reads and parses a `.mtx` file from disk.
pub fn load_matrix_market(path: &std::path::Path) -> Result<CsrMatrix, MtxError> {
    let text = std::fs::read_to_string(path).map_err(|e| MtxError::Io(format!("{path:?}: {e}")))?;
    parse_matrix_market(&text)
}

/// Renders a CSR matrix as Matrix Market coordinate text — the round-trip
/// partner of [`parse_matrix_market`], also used to produce the checked-in
/// samples under `data/`. Exactly-symmetric matrices (`is_symmetric(0.0)`)
/// are written in the `symmetric` flavor with the lower triangle only —
/// halving on-disk nnz and matching the MM spec's storage rule — and
/// everything else as `general`.
pub fn write_matrix_market(a: &CsrMatrix) -> String {
    use std::fmt::Write as _;
    let symmetric = a.is_symmetric(0.0);
    let mut out = String::new();
    let flavor = if symmetric { "symmetric" } else { "general" };
    let _ = writeln!(out, "%%MatrixMarket matrix coordinate real {flavor}");
    let _ = writeln!(out, "% written by cello-workloads");
    let stored = if symmetric {
        // Lower triangle (incl. diagonal) only.
        (0..a.rows())
            .map(|r| a.row(r).filter(|&(c, _)| c <= r).count())
            .sum()
    } else {
        a.nnz()
    };
    let _ = writeln!(out, "{} {} {stored}", a.rows(), a.cols());
    for r in 0..a.rows() {
        for (c, v) in a.row(r) {
            if symmetric && c > r {
                continue;
            }
            let _ = writeln!(out, "{} {} {v:?}", r + 1, c + 1);
        }
    }
    out
}

/// Every Table VI dataset.
pub fn registry() -> Vec<Dataset> {
    vec![FV1, SHALLOW_WATER1, G2_CIRCUIT, NASA4704, CORA, PROTEIN]
}

/// The CG performance datasets (Fig 12).
pub fn cg_datasets() -> Vec<Dataset> {
    vec![FV1, SHALLOW_WATER1, G2_CIRCUIT]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_vi() {
        let r = registry();
        assert_eq!(r.len(), 6);
        assert_eq!(FV1.m, 9604);
        assert_eq!(FV1.nnz, 85_264);
        assert_eq!(SHALLOW_WATER1.m, 81_920);
        assert_eq!(G2_CIRCUIT.nnz, 726_674);
        assert_eq!(
            CORA.kind,
            DatasetKind::Graph {
                features: 1433,
                outputs: 7
            }
        );
    }

    #[test]
    fn occupancy_in_paper_range() {
        // "occupancy of 1-100 non-zeros per row" (§III-A).
        for d in registry() {
            let occ = d.occupancy();
            assert!((1.0..=100.0).contains(&occ), "{}: {occ}", d.name);
        }
    }

    #[test]
    fn generated_stats_match_registry() {
        for d in [FV1, PROTEIN] {
            let a = d.generate();
            assert_eq!(a.rows(), d.m);
            let err = (a.nnz() as f64 - d.nnz as f64).abs() / d.nnz as f64;
            assert!(err < 0.05, "{}: nnz {} vs {}", d.name, a.nnz(), d.nnz);
            assert!(a.is_symmetric(1e-12), "{} must be symmetric", d.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(FV1.generate(), FV1.generate());
    }

    #[test]
    fn payload_includes_metadata() {
        assert_eq!(FV1.csr_payload_words(), 2 * 85_264 + 9604 + 1);
    }

    #[test]
    fn mtx_round_trips_generated_matrices() {
        let a = FV1.generate();
        let back = parse_matrix_market(&write_matrix_market(&a)).unwrap();
        assert_eq!(a, back);
    }

    /// The writer emits the `symmetric` flavor (lower triangle only) for
    /// exactly-symmetric matrices — halving on-disk entries — and still
    /// round-trips; asymmetric matrices keep the `general` flavor.
    #[test]
    fn mtx_writer_emits_symmetric_flavor() {
        let a = FV1.generate();
        assert!(a.is_symmetric(0.0));
        let text = write_matrix_market(&a);
        assert!(
            text.starts_with("%%MatrixMarket matrix coordinate real symmetric"),
            "symmetric matrices use the symmetric flavor"
        );
        // On-disk entries = diagonal + half the off-diagonals < nnz.
        let declared: usize = text
            .lines()
            .find(|l| !l.starts_with('%'))
            .unwrap()
            .split_whitespace()
            .nth(2)
            .unwrap()
            .parse()
            .unwrap();
        assert!(declared < a.nnz(), "{declared} !< {}", a.nnz());
        assert_eq!(parse_matrix_market(&text).unwrap(), a, "round-trip");
        // Asymmetric matrices stay `general` and round-trip too.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 3.0);
        coo.push(1, 1, 1.0);
        let b = coo.to_csr();
        let text = write_matrix_market(&b);
        assert!(text.starts_with("%%MatrixMarket matrix coordinate real general"));
        assert_eq!(parse_matrix_market(&text).unwrap(), b);
    }

    /// Regression (symmetric double-mirroring): a symmetric file listing an
    /// upper-triangle entry used to get it mirrored *again*, silently
    /// doubling values when the transposed coordinate was also listed. The
    /// MM spec's lower-triangle-only rule is now enforced as a typed error.
    #[test]
    fn mtx_rejects_upper_triangle_in_symmetric_files() {
        // Both (2,1) and (1,2) listed: previously parsed to a doubled value.
        let invalid = "%%MatrixMarket matrix coordinate real symmetric\n\
                       2 2 3\n1 1 2.0\n2 1 -1.0\n1 2 -1.0\n";
        match parse_matrix_market(invalid) {
            Err(MtxError::Parse { line: 5, msg }) => {
                assert!(msg.contains("lower triangle"), "{msg}")
            }
            other => panic!("expected Parse error on line 5, got {other:?}"),
        }
        // Even a lone upper-triangle entry is rejected: it is invalid MM.
        let lone = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n1 1 2.0\n1 2 -1.0\n";
        assert!(matches!(
            parse_matrix_market(lone),
            Err(MtxError::Parse { line: 4, .. })
        ));
        // General files keep accepting any coordinate order.
        let general = "%%MatrixMarket matrix coordinate real general\n\
                       2 2 2\n1 2 -1.0\n2 1 -1.0\n";
        assert_eq!(parse_matrix_market(general).unwrap().nnz(), 2);
    }

    /// Explicit zeros are dropped during CSR assembly: the loaded matrix
    /// reports its *structural* nnz, below the header count, and payload
    /// math follows the stored count, not the header.
    #[test]
    fn mtx_explicit_zeros_drop_from_stored_nnz() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 3\n1 1 4.0\n1 2 0.0\n2 2 1.0\n";
        let a = parse_matrix_market(text).unwrap();
        assert_eq!(a.nnz(), 2, "explicit zero is not stored");
        assert_eq!(a.get(0, 1), 0.0);
        // Payload accounting uses actual nnz(): 2 values + 2 col indices
        // + 3 row pointers.
        assert_eq!(a.payload_words(), 2 * 2 + 2 + 1);
    }

    #[test]
    fn mtx_parses_symmetric_and_pattern_flavors() {
        // Symmetric: lower triangle given, mirror implied.
        let sym = "%%MatrixMarket matrix coordinate real symmetric\n\
                   % a comment\n\
                   3 3 4\n1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 1.5\n";
        let a = parse_matrix_market(sym).unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.nnz(), 5, "one mirrored off-diagonal");
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 1), -1.0, "mirrored");
        assert!(a.is_symmetric(0.0));
        // Pattern: entries take value 1.0.
        let pat = "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n1 2\n2 2\n";
        let p = parse_matrix_market(pat).unwrap();
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.get(0, 1), 1.0);
        // Integer field parses as real.
        let int = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n";
        assert_eq!(parse_matrix_market(int).unwrap().get(0, 0), 7.0);
    }

    /// Malformed files land in typed errors, never panics — the serve
    /// request path feeds untrusted files through here.
    #[test]
    fn mtx_rejects_malformed_files_with_typed_errors() {
        type Matcher = fn(&MtxError) -> bool;
        let cases: Vec<(&str, Matcher)> = vec![
            ("", |e| matches!(e, MtxError::BadBanner(_))),
            ("%%MatrixMarket matrix array real general\n", |e| {
                matches!(e, MtxError::Unsupported(_))
            }),
            (
                "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
                |e| matches!(e, MtxError::Unsupported(_)),
            ),
            (
                "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 1\n1 1 1\n",
                |e| matches!(e, MtxError::Unsupported(_)),
            ),
            (
                "%%MatrixMarket matrix coordinate real general\nnot a size\n",
                |e| matches!(e, MtxError::Parse { .. }),
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5.0\n",
                |e| matches!(e, MtxError::OutOfBounds { line: 3, .. }),
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5.0\n",
                |e| matches!(e, MtxError::Parse { .. }),
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n",
                |e| matches!(e, MtxError::Parse { .. }),
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 x\n",
                |e| matches!(e, MtxError::Parse { .. }),
            ),
        ];
        for (text, matches) in cases {
            let err = parse_matrix_market(text).expect_err(text);
            assert!(matches(&err), "{text:?} -> {err}");
        }
        assert!(matches!(
            load_matrix_market(std::path::Path::new("/no/such/file.mtx")),
            Err(MtxError::Io(_))
        ));
    }
}

//! Dataset registry (paper Table VI) with synthetic generation.
//!
//! The paper's datasets come from SuiteSparse (PDE matrices) and OMEGA (GNN
//! graphs). We register their published statistics and generate synthetic
//! stand-ins matching `M` and `nnz` (see DESIGN.md §2 — the traffic and
//! roofline study depends only on shapes/footprints, and our SPD generators
//! also let the numeric solvers converge).

use cello_tensor::gen::{random_graph_adjacency, random_spd};
use cello_tensor::sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// What kind of workload a dataset feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// PDE-style SPD matrix solved with CG/BiCGStab.
    Pde,
    /// Graph adjacency for a GCN layer, with input/output feature widths.
    Graph {
        /// Input feature width (`N` in Table VI).
        features: u64,
        /// Output feature width (`O`).
        outputs: u64,
    },
}

/// One Table VI dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// SuiteSparse/OMEGA name.
    pub name: &'static str,
    /// Row count (`M`; vertices for graphs).
    pub m: usize,
    /// Published non-zero count.
    pub nnz: usize,
    /// Workload kind.
    pub kind: DatasetKind,
    /// Paper context (Table VI "Workload" column).
    pub workload: &'static str,
}

impl Dataset {
    /// Average non-zeros per row.
    pub fn occupancy(&self) -> f64 {
        self.nnz as f64 / self.m as f64
    }

    /// CSR payload in words: values + column indices + row pointers.
    pub fn csr_payload_words(&self) -> u64 {
        2 * self.nnz as u64 + self.m as u64 + 1
    }

    /// Generates the synthetic stand-in matrix (deterministic per dataset).
    pub fn generate(&self) -> CsrMatrix {
        let seed = self
            .name
            .bytes()
            .fold(0xCE110u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        match self.kind {
            DatasetKind::Pde => random_spd(self.m, self.nnz, seed),
            DatasetKind::Graph { .. } => random_graph_adjacency(self.m, self.nnz, seed),
        }
    }
}

/// `fv1`: the 2D/3D problem matrix (Table VI row 1).
pub const FV1: Dataset = Dataset {
    name: "fv1",
    m: 9604,
    nnz: 85_264,
    kind: DatasetKind::Pde,
    workload: "2D/3D problem",
};

/// `shallow_water1`: computational fluid dynamics (Table VI row 2).
pub const SHALLOW_WATER1: Dataset = Dataset {
    name: "shallow_water1",
    m: 81_920,
    nnz: 327_680,
    kind: DatasetKind::Pde,
    workload: "Fluid Dynamics",
};

/// `G2_circuit`: circuit simulation (Table VI row 3).
pub const G2_CIRCUIT: Dataset = Dataset {
    name: "G2_circuit",
    m: 150_102,
    nnz: 726_674,
    kind: DatasetKind::Pde,
    workload: "Circuit sim",
};

/// `NASA4704`: the BiCGStab structural matrix (Fig 13).
pub const NASA4704: Dataset = Dataset {
    name: "NASA4704",
    m: 4704,
    nnz: 104_756,
    kind: DatasetKind::Pde,
    workload: "Structural (BiCGStab)",
};

/// `cora`: citation-graph GCN layer (Table VI row 4).
pub const CORA: Dataset = Dataset {
    name: "cora",
    m: 2708,
    nnz: 9464,
    kind: DatasetKind::Graph {
        features: 1433,
        outputs: 7,
    },
    workload: "GCN Layer",
};

/// `protein`: protein-graph GCN layer (Table VI row 5).
pub const PROTEIN: Dataset = Dataset {
    name: "protein",
    m: 3786,
    nnz: 14_456,
    kind: DatasetKind::Graph {
        features: 29,
        outputs: 2,
    },
    workload: "GCN Layer",
};

/// Every Table VI dataset.
pub fn registry() -> Vec<Dataset> {
    vec![FV1, SHALLOW_WATER1, G2_CIRCUIT, NASA4704, CORA, PROTEIN]
}

/// The CG performance datasets (Fig 12).
pub fn cg_datasets() -> Vec<Dataset> {
    vec![FV1, SHALLOW_WATER1, G2_CIRCUIT]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_vi() {
        let r = registry();
        assert_eq!(r.len(), 6);
        assert_eq!(FV1.m, 9604);
        assert_eq!(FV1.nnz, 85_264);
        assert_eq!(SHALLOW_WATER1.m, 81_920);
        assert_eq!(G2_CIRCUIT.nnz, 726_674);
        assert_eq!(
            CORA.kind,
            DatasetKind::Graph {
                features: 1433,
                outputs: 7
            }
        );
    }

    #[test]
    fn occupancy_in_paper_range() {
        // "occupancy of 1-100 non-zeros per row" (§III-A).
        for d in registry() {
            let occ = d.occupancy();
            assert!((1.0..=100.0).contains(&occ), "{}: {occ}", d.name);
        }
    }

    #[test]
    fn generated_stats_match_registry() {
        for d in [FV1, PROTEIN] {
            let a = d.generate();
            assert_eq!(a.rows(), d.m);
            let err = (a.nnz() as f64 - d.nnz as f64).abs() / d.nnz as f64;
            assert!(err < 0.05, "{}: nnz {} vs {}", d.name, a.nnz(), d.nnz);
            assert!(a.is_symmetric(1e-12), "{} must be symmetric", d.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(FV1.generate(), FV1.generate());
    }

    #[test]
    fn payload_includes_metadata() {
        assert_eq!(FV1.csr_payload_words(), 2 * 85_264 + 9604 + 1);
    }
}

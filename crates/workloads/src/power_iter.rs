//! Power iteration (dominant eigenvector) — an extension workload.
//!
//! Not in the paper's Table VI, but squarely in its target class: a chain of
//! skewed tensor operations over a sparse matrix where the *only* exploitable
//! reuse is `A` across iterations — the purest test of CHORD's cross-
//! iteration operand residency (the paper's Fig 10 shows `A` resident with
//! `Freq 10`). Per iteration:
//!
//! ```text
//! p1  y = A·x          SpMM                  (U)
//! p2  ν = yᵀ·y         contraction           (C)
//! p3  x' = y · (1/√ν)  scale                 (U)
//! ```
//!
//! `y` is consumed by p2 (pipelineable into the contraction) and by p3
//! (delayed writeback — p2 sits on the path); `x'` feeds the next iteration's
//! SpMM with an unshared dominant rank (sequential): structurally a miniature
//! CG.

use cello_graph::dag::{NodeId, TensorDag};
use cello_graph::edge::TensorMeta;
use cello_graph::node::OpKind;
use cello_tensor::dense::DenseMatrix;
use cello_tensor::einsum::EinsumSpec;
use cello_tensor::kernels::spmm;
use cello_tensor::shape::{RankExtent, RankId};
use cello_tensor::sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Shape parameters for a power-iteration run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerIterParams {
    /// Matrix order `M`.
    pub m: u64,
    /// Average non-zeros per row.
    pub occupancy: f64,
    /// CSR payload words of `A`.
    pub a_payload_words: u64,
    /// Iterations to unroll.
    pub iterations: u32,
}

impl PowerIterParams {
    /// From a dataset registry entry.
    pub fn from_dataset(d: &crate::datasets::Dataset, iterations: u32) -> Self {
        Self {
            m: d.m as u64,
            occupancy: d.occupancy(),
            a_payload_words: d.csr_payload_words(),
            iterations,
        }
    }
}

/// Builds the unrolled power-iteration DAG.
pub fn build_power_iter_dag(prm: &PowerIterParams) -> TensorDag {
    let occ = prm.occupancy.ceil().max(1.0) as u64;
    let m = RankExtent::dense("m", prm.m);
    let k_sp = RankExtent::compressed("k", prm.m, occ.min(prm.m));
    let k = RankExtent::dense("k", prm.m);
    let n = RankExtent::dense("n", 1);
    let p = RankExtent::dense("p", 1);
    let j = RankExtent::dense("j", 1);
    let spmm_spec = EinsumSpec::from_parts(
        vec![
            vec![RankId::new("m"), RankId::new("k")],
            vec![RankId::new("k"), RankId::new("n")],
        ],
        vec![RankId::new("m"), RankId::new("n")],
        &[m, k_sp, n],
    );
    let contraction = EinsumSpec::from_parts(
        vec![
            vec![RankId::new("k"), RankId::new("p")],
            vec![RankId::new("k"), RankId::new("n")],
        ],
        vec![RankId::new("p"), RankId::new("n")],
        &[k, p, n],
    );
    let scale = EinsumSpec::from_parts(
        vec![
            vec![RankId::new("m"), RankId::new("j")],
            vec![RankId::new("j"), RankId::new("n")],
        ],
        vec![RankId::new("m"), RankId::new("n")],
        &[m, j, n],
    );

    let mut dag = TensorDag::new();
    let mut prev_scale: Option<NodeId> = None;
    let mut spmms = Vec::new();
    for i in 1..=prm.iterations {
        let p1 = dag.add_op(
            format!("p1@{i}:y=A·x"),
            spmm_spec.clone(),
            OpKind::TensorMac,
            TensorMeta::dense(format!("y@{i}"), &["m", "n"], prm.m),
        );
        let p2 = dag.add_op(
            format!("p2@{i}:ν=yᵀy"),
            contraction.clone(),
            OpKind::TensorMac,
            TensorMeta::dense(format!("nu@{i}"), &["p", "n"], 1),
        );
        let p3 = dag.add_op(
            format!("p3@{i}:x=y/√ν"),
            scale.clone(),
            OpKind::TensorMac,
            TensorMeta::dense(format!("x@{i}"), &["m", "n"], prm.m),
        );
        dag.add_edge(p1, p2, &["k", "n"]); // y into the contraction
        dag.add_edge(p2, p3, &["j", "n"]); // ν (tiny)
        dag.add_edge(p1, p3, &["m", "j"]); // y delayed via p2 (writeback)
        if let Some(prev) = prev_scale {
            dag.add_edge(prev, p1, &["k", "n"]); // x into next SpMM (unshared)
        }
        prev_scale = Some(p3);
        spmms.push(p1);
    }
    let a_consumers: Vec<(NodeId, &[&str])> =
        spmms.iter().map(|&n| (n, ["m", "k"].as_slice())).collect();
    dag.add_external(
        TensorMeta::sparse("A", &["m", "k"], prm.a_payload_words),
        &a_consumers,
    );
    dag.add_external(
        TensorMeta::dense("x@0", &["k", "n"], prm.m),
        &[(NodeId(0), &["k", "n"])],
    );
    dag
}

/// Result of the numeric power iteration.
#[derive(Clone, Debug)]
pub struct PowerIterResult {
    /// Final (unit-norm) eigenvector estimate.
    pub x: DenseMatrix,
    /// Rayleigh-quotient estimate of the dominant eigenvalue.
    pub eigenvalue: f64,
    /// Iterations run.
    pub iterations_run: u32,
}

/// Numeric power iteration on real kernels (single vector).
pub fn power_iterate(a: &CsrMatrix, iterations: u32) -> PowerIterResult {
    assert_eq!(a.rows(), a.cols());
    let m = a.rows();
    let mut x = DenseMatrix::zeros(m, 1);
    for i in 0..m {
        x.set(i, 0, 1.0 / (m as f64).sqrt());
    }
    let mut eigenvalue = 0.0;
    let mut it = 0;
    for _ in 0..iterations {
        it += 1;
        let y = spmm(a, &x);
        let nu: f64 = y.data().iter().map(|v| v * v).sum();
        if nu <= 0.0 {
            break;
        }
        let norm = nu.sqrt();
        // Rayleigh quotient with unit-norm x: λ ≈ xᵀAx = xᵀy.
        eigenvalue = x.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        x = y;
        for v in x.data_mut() {
            *v /= norm;
        }
    }
    PowerIterResult {
        x,
        eigenvalue,
        iterations_run: it,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_tensor::gen::random_spd;

    fn prm() -> PowerIterParams {
        PowerIterParams {
            m: 30_000,
            occupancy: 4.0,
            a_payload_words: 2 * 120_000 + 30_001,
            iterations: 5,
        }
    }

    #[test]
    fn dag_shape() {
        let dag = build_power_iter_dag(&prm());
        assert_eq!(dag.node_count(), 15);
        assert_eq!(dag.edge_count(), 3 * 5 + 4);
        // A feeds every SpMM: freq = iterations.
        assert_eq!(dag.externals()[0].consumers.len(), 5);
    }

    #[test]
    fn y_is_delayed_writeback() {
        use cello_core::score::classify::{classify, Dependency};
        let dag = build_power_iter_dag(&prm());
        let cls = classify(&dag);
        // Edge 2 of iteration 1 is y -> p3 (transitive via the contraction).
        assert_eq!(cls.deps[2], Dependency::DelayedWriteback);
        assert_eq!(cls.deps[0], Dependency::Pipelineable); // y -> νcontraction
    }

    #[test]
    fn numeric_power_iteration_converges() {
        let a = random_spd(200, 1200, 3);
        let res = power_iterate(&a, 150);
        // Check A·x ≈ λ·x.
        let ax = spmm(&a, &res.x);
        let mut worst: f64 = 0.0;
        for i in 0..200 {
            worst = worst.max((ax.get(i, 0) - res.eigenvalue * res.x.get(i, 0)).abs());
        }
        let rel = worst / res.eigenvalue.abs().max(1e-30);
        assert!(rel < 1e-4, "relative eigen-residual {rel}");
        assert!(res.eigenvalue > 0.0, "SPD matrices have positive spectrum");
    }

    #[test]
    fn unit_norm_maintained() {
        let a = random_spd(100, 600, 9);
        let res = power_iterate(&a, 30);
        let norm: f64 = res.x.data().iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cello_exploits_a_reuse() {
        use cello_core::accel::CelloConfig;
        use cello_sim::baselines::{run_config, ConfigKind};
        let dag = build_power_iter_dag(&prm());
        let accel = CelloConfig::paper();
        let oracle = run_config(&dag, ConfigKind::Flexagon, &accel, "power");
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "power");
        // A dominates the traffic; CHORD keeps it resident across iterations.
        assert!(
            cello.dram_bytes * 2 < oracle.dram_bytes,
            "CELLO {} vs oracle {}",
            cello.dram_bytes,
            oracle.dram_bytes
        );
    }
}

//! # cello-workloads — the paper's evaluation workloads (§VII, Table VI)
//!
//! Each workload exists in two coupled forms:
//!
//! 1. a **numeric implementation** over `cello-tensor` kernels (block CG and
//!    BiCGStab actually solve SPD systems; GCN layers actually propagate
//!    features), so the reproduction's solvers are testable for convergence,
//!    not just modeled; and
//! 2. a **tensor dependency DAG builder** producing the `cello-graph` IR that
//!    SCORE schedules and the simulator runs — with versioned tensor names
//!    (`R@3`), per-edge consumer rank lists and exact word footprints,
//!    unrolled across loop iterations so cross-iteration reuse (CG's `A`,
//!    `X`, `P`, `R`) is visible to CHORD.
//!
//! Modules: [`datasets`] (Table VI registry + synthetic SuiteSparse/OMEGA
//! stand-ins), [`cg`] (Algorithm 1), [`bicgstab`], [`gcn`], [`resnet`]
//! (He et al. conv3_x residual block, GEMM-lowered), and [`hpcg`] (Table I).

pub mod bicgstab;
pub mod cg;
pub mod datasets;
pub mod gcn;
pub mod hpcg;
pub mod power_iter;
pub mod resnet;

pub use cg::{build_cg_dag, solve_block_cg, CgParams, CgResult};
pub use datasets::{Dataset, DatasetKind};

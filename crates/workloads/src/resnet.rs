//! ResNet conv3_x residual block, GEMM-lowered (Table VI; §VII-C1, Fig 16a).
//!
//! The paper's DNN case study is the conv3_x residual block of ResNet-50 on
//! ImageNet at 16-bit words. Convolutions lower to GEMMs via im2col:
//! `M = H·W·batch` output pixels, `K = C_in·kh·kw`, `N = C_out`. The identity
//! block is the Fig 7 example: a producer, three convolutions, and the
//! elementwise add fed by the **skip connection** — a transitive edge over an
//! all-pipelineable path, i.e. the `Delayed_hold` dependency that SET handles
//! and FLAT does not.

use cello_graph::dag::TensorDag;
use cello_graph::edge::TensorMeta;
use cello_graph::node::OpKind;
use cello_tensor::einsum::EinsumSpec;
use cello_tensor::shape::{RankExtent, RankId};
use serde::{Deserialize, Serialize};

/// One convolution lowered to a GEMM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvGemm {
    /// Output pixels × batch (`M`).
    pub m: u64,
    /// `C_in · kh · kw` (`K`).
    pub k: u64,
    /// Output channels (`N`).
    pub n: u64,
}

impl ConvGemm {
    /// MACs of the lowered GEMM.
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }

    /// Output tensor words.
    pub fn out_words(&self) -> u64 {
        self.m * self.n
    }

    /// Weight tensor words.
    pub fn weight_words(&self) -> u64 {
        self.k * self.n
    }
}

/// ResNet-50 conv3_x block parameters (28×28 feature maps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNetBlockParams {
    /// Feature-map side (28 for conv3_x).
    pub hw: u64,
    /// Bottleneck width (128 for conv3_x).
    pub bottleneck: u64,
    /// Block output channels (512 for conv3_x).
    pub channels: u64,
    /// Batch size.
    pub batch: u64,
}

impl ResNetBlockParams {
    /// The paper's configuration: conv3_x (He et al. 2016), batch 1.
    pub fn conv3x() -> Self {
        Self {
            hw: 28,
            bottleneck: 128,
            channels: 512,
            batch: 1,
        }
    }

    /// Output pixels (`M` of every GEMM in the block).
    pub fn m(&self) -> u64 {
        self.hw * self.hw * self.batch
    }

    /// The producer conv that generates the block input (previous block's
    /// last 1×1 conv).
    pub fn producer(&self) -> ConvGemm {
        ConvGemm {
            m: self.m(),
            k: self.bottleneck,
            n: self.channels,
        }
    }

    /// conv1: 1×1, channels → bottleneck.
    pub fn conv1(&self) -> ConvGemm {
        ConvGemm {
            m: self.m(),
            k: self.channels,
            n: self.bottleneck,
        }
    }

    /// conv2: 3×3, bottleneck → bottleneck (K = 9·bottleneck).
    pub fn conv2(&self) -> ConvGemm {
        ConvGemm {
            m: self.m(),
            k: 9 * self.bottleneck,
            n: self.bottleneck,
        }
    }

    /// conv3: 1×1, bottleneck → channels.
    pub fn conv3(&self) -> ConvGemm {
        ConvGemm {
            m: self.m(),
            k: self.bottleneck,
            n: self.channels,
        }
    }

    /// Total MACs of the residual block (producer excluded).
    pub fn block_macs(&self) -> u64 {
        self.conv1().macs() + self.conv2().macs() + self.conv3().macs() + self.m() * self.channels
    }
}

fn gemm_spec(c: ConvGemm) -> EinsumSpec {
    EinsumSpec::from_parts(
        vec![
            vec![RankId::new("m"), RankId::new("k")],
            vec![RankId::new("k"), RankId::new("n")],
        ],
        vec![RankId::new("m"), RankId::new("n")],
        &[
            RankExtent::dense("m", c.m),
            RankExtent::dense("k", c.k),
            RankExtent::dense("n", c.n),
        ],
    )
}

/// Builds the residual-block DAG: producer → conv1 → conv2 → conv3 → add,
/// with the skip edge producer → add (the Fig 7 `Delayed_hold`).
pub fn build_resnet_block_dag(prm: &ResNetBlockParams) -> TensorDag {
    let mut dag = TensorDag::new();
    let t = |name: &str, words: u64| TensorMeta::dense(name, &["m", "n"], words);

    let producer = dag.add_op(
        "prev:1×1",
        gemm_spec(prm.producer()),
        OpKind::TensorMac,
        t("T0", prm.producer().out_words()),
    );
    let c1 = dag.add_op(
        "conv1:1×1",
        gemm_spec(prm.conv1()),
        OpKind::TensorMac,
        t("T1", prm.conv1().out_words()),
    );
    let c2 = dag.add_op(
        "conv2:3×3",
        gemm_spec(prm.conv2()),
        OpKind::TensorMac,
        t("T2", prm.conv2().out_words()),
    );
    let c3 = dag.add_op(
        "conv3:1×1",
        gemm_spec(prm.conv3()),
        OpKind::TensorMac,
        t("T3", prm.conv3().out_words()),
    );
    // The add is an elementwise M×channels op; model as a thin MAC.
    let add = dag.add_op(
        "add",
        gemm_spec(ConvGemm {
            m: prm.m(),
            k: 1,
            n: prm.channels,
        }),
        OpKind::TensorMac,
        t("T4", prm.m() * prm.channels),
    );

    dag.add_edge(producer, c1, &["m", "k"]);
    dag.add_edge(c1, c2, &["m", "k"]);
    dag.add_edge(c2, c3, &["m", "k"]);
    dag.add_edge(c3, add, &["m", "n"]);
    dag.add_edge(producer, add, &["m", "n"]); // skip connection

    // Weights stream from DRAM (single use each).
    for (node, conv, name) in [
        (producer, prm.producer(), "Wp"),
        (c1, prm.conv1(), "W1"),
        (c2, prm.conv2(), "W2"),
        (c3, prm.conv3(), "W3"),
    ] {
        dag.add_external(
            TensorMeta::dense(name, &["k", "n"], conv.weight_words()),
            &[(node, &["k", "n"])],
        );
    }
    // The producer's own input activation.
    dag.add_external(
        TensorMeta::dense("In", &["m", "k"], prm.m() * prm.bottleneck),
        &[(producer, &["m", "k"])],
    );
    dag
}

/// Builds a whole ResNet *stage* of `blocks` chained residual blocks
/// (conv3_x has four): block `b`'s add-output feeds block `b+1`'s first conv
/// *and* its add (the identity skip), so every block boundary carries both a
/// pipelineable edge and a delayed-hold edge — the stress test for SET-style
/// hold capacity.
pub fn build_resnet_stage_dag(prm: &ResNetBlockParams, blocks: u32) -> TensorDag {
    assert!(blocks >= 1);
    let mut dag = TensorDag::new();
    let t = |name: String, words: u64| TensorMeta::dense(name, &["m", "n"], words);

    let producer = dag.add_op(
        "prev:1×1",
        gemm_spec(prm.producer()),
        OpKind::TensorMac,
        t("T0".to_string(), prm.producer().out_words()),
    );
    dag.add_external(
        TensorMeta::dense("In", &["m", "k"], prm.m() * prm.bottleneck),
        &[(producer, &["m", "k"])],
    );
    dag.add_external(
        TensorMeta::dense("Wp", &["k", "n"], prm.producer().weight_words()),
        &[(producer, &["k", "n"])],
    );

    let mut skip_src = producer;
    for b in 1..=blocks {
        let c1 = dag.add_op(
            format!("b{b}.conv1:1×1"),
            gemm_spec(prm.conv1()),
            OpKind::TensorMac,
            t(format!("B{b}T1"), prm.conv1().out_words()),
        );
        let c2 = dag.add_op(
            format!("b{b}.conv2:3×3"),
            gemm_spec(prm.conv2()),
            OpKind::TensorMac,
            t(format!("B{b}T2"), prm.conv2().out_words()),
        );
        let c3 = dag.add_op(
            format!("b{b}.conv3:1×1"),
            gemm_spec(prm.conv3()),
            OpKind::TensorMac,
            t(format!("B{b}T3"), prm.conv3().out_words()),
        );
        let add = dag.add_op(
            format!("b{b}.add"),
            gemm_spec(ConvGemm {
                m: prm.m(),
                k: 1,
                n: prm.channels,
            }),
            OpKind::TensorMac,
            t(format!("B{b}T4"), prm.m() * prm.channels),
        );
        dag.add_edge(skip_src, c1, &["m", "k"]);
        dag.add_edge(c1, c2, &["m", "k"]);
        dag.add_edge(c2, c3, &["m", "k"]);
        dag.add_edge(c3, add, &["m", "n"]);
        dag.add_edge(skip_src, add, &["m", "n"]); // identity skip
        for (node, conv, name) in [
            (c1, prm.conv1(), format!("B{b}W1")),
            (c2, prm.conv2(), format!("B{b}W2")),
            (c3, prm.conv3(), format!("B{b}W3")),
        ] {
            dag.add_external(
                TensorMeta::dense(name, &["k", "n"], conv.weight_words()),
                &[(node, &["k", "n"])],
            );
        }
        skip_src = add;
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_core::score::classify::{classify, Dependency};

    #[test]
    fn conv3x_shapes_match_resnet50() {
        let p = ResNetBlockParams::conv3x();
        assert_eq!(p.m(), 784);
        assert_eq!(p.conv1().k, 512);
        assert_eq!(p.conv2().k, 1152);
        assert_eq!(p.conv3().n, 512);
        // conv2 dominates compute: 784 × 1152 × 128.
        assert_eq!(p.conv2().macs(), 784 * 1152 * 128);
    }

    #[test]
    fn skip_classified_delayed_hold() {
        let dag = build_resnet_block_dag(&ResNetBlockParams::conv3x());
        let cls = classify(&dag);
        // Edges: p→c1, c1→c2, c2→c3, c3→add, p→add(skip).
        assert_eq!(cls.deps[4], Dependency::DelayedHold, "skip must be hold");
        assert_eq!(cls.deps[0], Dependency::Pipelineable);
        assert_eq!(cls.deps[3], Dependency::Pipelineable);
    }

    #[test]
    fn batch_scales_m() {
        let p = ResNetBlockParams {
            batch: 8,
            ..ResNetBlockParams::conv3x()
        };
        assert_eq!(p.m(), 784 * 8);
        assert_eq!(p.conv1().out_words(), 784 * 8 * 128);
    }

    #[test]
    fn dag_structure() {
        let dag = build_resnet_block_dag(&ResNetBlockParams::conv3x());
        assert_eq!(dag.node_count(), 5);
        assert_eq!(dag.edge_count(), 5);
        assert_eq!(dag.externals().len(), 5); // 4 weights + input
    }

    #[test]
    fn stage_chains_blocks() {
        let prm = ResNetBlockParams::conv3x();
        let dag = build_resnet_stage_dag(&prm, 4);
        // producer + 4 blocks × 4 ops.
        assert_eq!(dag.node_count(), 1 + 16);
        // 5 edges per block.
        assert_eq!(dag.edge_count(), 20);
        // In + Wp + 3 weights per block.
        assert_eq!(dag.externals().len(), 2 + 12);
        // Every block's skip is a delayed hold.
        let cls = classify(&dag);
        let holds = cls
            .deps
            .iter()
            .filter(|&&d| d == Dependency::DelayedHold)
            .count();
        assert_eq!(holds, 4, "one hold per residual block");
    }

    #[test]
    fn stage_fuses_fully_under_cello() {
        use cello_core::score::binding::{build_schedule, ScheduleOptions};
        let dag = build_resnet_stage_dag(&ResNetBlockParams::conv3x(), 2);
        let s = build_schedule(&dag, ScheduleOptions::cello());
        // The whole stage is one pipeline cluster: every edge is
        // pipelineable or hold and loop orders are compatible.
        assert_eq!(s.phases.len(), 1, "{:?}", s.phases);
        s.validate(&dag).unwrap();
    }

    #[test]
    fn block_arithmetic_intensity_is_high() {
        // ResNet blocks are compute-dense: AI far above CG's ~2 ops/byte
        // (the paper notes ResNet is compute-bound at 1 TB/s).
        let p = ResNetBlockParams::conv3x();
        let macs = p.block_macs() as f64;
        let words = (p.m() * p.channels * 3
            + p.conv1().weight_words()
            + p.conv2().weight_words()
            + p.conv3().weight_words()) as f64;
        let ai = macs / (words * 2.0); // 16-bit words
        assert!(ai > 16.384, "AI {ai} should exceed the 1 TB/s ridge point");
    }
}

//! GCN layer workload (Table VI: cora, protein; Fig 13).
//!
//! One layer computes `Z = Â·X·W`. We lower it aggregate-first —
//! `Y = Â·X` (SpMM) then `Z = Y·W` (skewed GEMM) — which makes the
//! intermediate `Y` the *only* cross-operation tensor, with a single
//! pipelineable consumer. That is exactly the paper's observation for GNNs:
//! "the only tensor to be reused across operations in a GNN layer is
//! pipelineable without additional dependency", so FLAT-style pipelining
//! already captures all inter-op reuse and CELLO matches FLAT (Fig 13).

use cello_graph::dag::TensorDag;
use cello_graph::edge::TensorMeta;
use cello_graph::node::OpKind;
use cello_tensor::dense::DenseMatrix;
use cello_tensor::einsum::EinsumSpec;
use cello_tensor::kernels::{gemm, spmm};
use cello_tensor::shape::{RankExtent, RankId};
use cello_tensor::sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// GCN layer shape parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GcnParams {
    /// Vertex count `M`.
    pub vertices: u64,
    /// Adjacency non-zeros.
    pub nnz: u64,
    /// Input feature width `N`.
    pub features: u64,
    /// Output feature width `O`.
    pub outputs: u64,
    /// Number of stacked layers (feature width collapses to `outputs` after
    /// the first).
    pub layers: u32,
}

impl GcnParams {
    /// From a graph dataset.
    pub fn from_dataset(d: &crate::datasets::Dataset, layers: u32) -> Self {
        let crate::datasets::DatasetKind::Graph { features, outputs } = d.kind else {
            panic!("{} is not a graph dataset", d.name);
        };
        Self {
            vertices: d.m as u64,
            nnz: d.nnz as u64,
            features,
            outputs,
            layers,
        }
    }

    /// Adjacency CSR payload words.
    pub fn a_payload_words(&self) -> u64 {
        2 * self.nnz + self.vertices + 1
    }
}

/// Builds the GCN DAG (per layer: SpMM aggregate, then transform GEMM).
pub fn build_gcn_dag(prm: &GcnParams) -> TensorDag {
    let mut dag = TensorDag::new();
    let occ = ((prm.nnz as f64 / prm.vertices as f64).ceil() as u64).max(1);
    let mut in_features = prm.features;
    let mut prev_out = None;

    for l in 1..=prm.layers {
        let m = RankExtent::dense("m", prm.vertices);
        let k_sp = RankExtent::compressed("k", prm.vertices, occ.min(prm.vertices));
        let n = RankExtent::dense("n", in_features);
        let f = RankExtent::dense("f", in_features);
        let o = RankExtent::dense("o", prm.outputs);
        let aggregate = EinsumSpec::from_parts(
            vec![
                vec![RankId::new("m"), RankId::new("k")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("m"), RankId::new("n")],
            &[m, k_sp, n],
        );
        let transform = EinsumSpec::from_parts(
            vec![
                vec![RankId::new("m"), RankId::new("f")],
                vec![RankId::new("f"), RankId::new("o")],
            ],
            vec![RankId::new("m"), RankId::new("o")],
            &[m, f, o],
        );
        let g1 = dag.add_op(
            format!("agg@{l}:Y=Â·X"),
            aggregate,
            OpKind::TensorMac,
            TensorMeta::dense(format!("Y@{l}"), &["m", "n"], prm.vertices * in_features),
        );
        let g2 = dag.add_op(
            format!("xform@{l}:Z=Y·W"),
            transform,
            OpKind::TensorMac,
            TensorMeta::dense(format!("Z@{l}"), &["m", "o"], prm.vertices * prm.outputs),
        );
        // Y consumed as (m, f): the transform's dominant rank is m — shared.
        dag.add_edge(g1, g2, &["m", "f"]);
        if let Some(prev) = prev_out {
            // Previous layer's Z feeds this layer's aggregation as (k, n).
            dag.add_edge(prev, g1, &["k", "n"]);
        } else {
            dag.add_external(
                TensorMeta::dense("X", &["k", "n"], prm.vertices * prm.features),
                &[(g1, &["k", "n"])],
            );
        }
        dag.add_external(
            TensorMeta::dense(format!("W@{l}"), &["f", "o"], in_features * prm.outputs),
            &[(g2, &["f", "o"])],
        );
        prev_out = Some(g2);
        in_features = prm.outputs;
    }
    // Adjacency feeds every aggregation.
    let agg_nodes: Vec<_> = dag
        .nodes()
        .filter(|(_, n)| n.name.starts_with("agg@"))
        .map(|(id, _)| (id, ["m", "k"].as_slice()))
        .collect();
    dag.add_external(
        TensorMeta::sparse("A", &["m", "k"], prm.a_payload_words()),
        &agg_nodes,
    );
    dag
}

/// Numeric single-layer GCN forward pass: `Z = relu(Â·X·W)`.
pub fn gcn_forward(a: &CsrMatrix, x: &DenseMatrix, w: &DenseMatrix) -> DenseMatrix {
    let y = spmm(a, x);
    let mut z = gemm(&y, w);
    for v in z.data_mut() {
        *v = v.max(0.0);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{CORA, PROTEIN};
    use cello_tensor::gen::random_graph_adjacency;

    #[test]
    fn dag_shape_single_layer() {
        let prm = GcnParams::from_dataset(&CORA, 1);
        let dag = build_gcn_dag(&prm);
        assert_eq!(dag.node_count(), 2);
        assert_eq!(dag.edge_count(), 1);
        assert_eq!(dag.externals().len(), 3); // X, W, A
    }

    #[test]
    fn intermediate_is_pipelineable() {
        use cello_core::score::classify::{classify, Dependency};
        let dag = build_gcn_dag(&GcnParams::from_dataset(&CORA, 1));
        let cls = classify(&dag);
        assert_eq!(cls.deps[0], Dependency::Pipelineable);
    }

    #[test]
    fn multi_layer_chains() {
        let dag = build_gcn_dag(&GcnParams::from_dataset(&PROTEIN, 2));
        assert_eq!(dag.node_count(), 4);
        assert_eq!(dag.edge_count(), 3);
    }

    #[test]
    fn numeric_forward_shapes_and_relu() {
        let a = random_graph_adjacency(50, 250, 1);
        let mut x = DenseMatrix::zeros(50, 8);
        let mut w = DenseMatrix::zeros(8, 3);
        for i in 0..50 {
            for j in 0..8 {
                x.set(i, j, ((i * j) % 5) as f64 - 2.0);
            }
        }
        for i in 0..8 {
            for j in 0..3 {
                w.set(i, j, ((i + j) % 3) as f64 - 1.0);
            }
        }
        let z = gcn_forward(&a, &x, &w);
        assert_eq!(z.rows(), 50);
        assert_eq!(z.cols(), 3);
        assert!(z.data().iter().all(|&v| v >= 0.0), "ReLU clamps negatives");
    }

    #[test]
    fn macs_match_table_vi_shapes() {
        let dag = build_gcn_dag(&GcnParams::from_dataset(&CORA, 1));
        let (_, agg) = dag.nodes().next().unwrap();
        // SpMM ≈ nnz × features (occupancy is ceil'd: 4 nnz/row for cora).
        let occ = (9464f64 / 2708.0).ceil() as u64;
        assert_eq!(agg.macs, 2708 * occ * 1433);
    }
}

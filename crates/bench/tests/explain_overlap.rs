//! Acceptance: `cello_explain` on the cg@1n overlap pair.
//!
//! PR 8's transfer-scheduling dimension moved the tuned cg/G2_circuit@1n
//! schedule from 490 538 cycles (overlap off) to 288 696 (double-buffered
//! prefetch) at identical DRAM traffic — latency hiding, not traffic
//! reduction. The explain decomposition must recover that story from the
//! two reports alone: the delta lands predominantly on the
//! exposed-transfer axis, and the per-(phase, axis) rows sum to the total
//! delta exactly.

use cello_bench::explain::{self, AxisDelta};
use cello_core::accel::CelloConfig;
use cello_core::TransferTuning;
use cello_search::{SpaceConfig, Strategy, Tuner};
use cello_sim::evaluate::evaluate_report;
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::G2_CIRCUIT;

#[test]
fn overlap_cycle_delta_lands_on_the_exposed_transfer_axis() {
    // The exact CI funnel: same space, same strategy as `cello_dse --quick`.
    let dag = build_cg_dag(&CgParams::from_dataset(&G2_CIRCUIT, 16, 5));
    let accel = CelloConfig::paper();
    let tuner = Tuner::new(&dag, &accel, SpaceConfig::widened_with_nodes(&[1]));
    let out = tuner.tune(&Strategy::prefiltered(
        0.1,
        Strategy::Tier0 {
            budget: 49_152,
            keep: 96,
        },
    ));

    // Overlap on: the tuned candidate as found. Overlap off: the same
    // candidate with its transfer tuning stripped — the pre-PR8 model.
    let tuned = &out.best_cycles.candidate;
    let on = evaluate_report(&dag, &tuned.build(&dag), &accel);
    let mut stripped = tuned.clone();
    stripped.constraints.transfer = Some(TransferTuning::off());
    let off = evaluate_report(&dag, &stripped.build(&dag), &accel);

    // The known pair from the committed trajectory history.
    assert_eq!(on.cycles, 288_696, "tuned overlap-on cycles drifted");
    assert_eq!(off.cycles, 490_538, "overlap-off cycles drifted");

    let e = explain::diff_reports(&off, &on);
    assert_eq!(e.cycle_delta(), 288_696 - 490_538);

    // Exactness: the ranked rows are a decomposition, not an estimate.
    let row_sum: i64 = e.cycle_rows.iter().map(AxisDelta::delta).sum();
    assert_eq!(row_sum, e.cycle_delta());

    // Attribution: predominantly exposed transfer. Stripping the tuning
    // also returns the staging carve to CHORD, so the other axes may move
    // a little — but more than half the delta must be exposed transfer,
    // and it must be the dominant axis.
    let (axis, delta) = e.dominant_cycle_axis();
    assert_eq!(
        axis,
        "exposed-transfer",
        "totals: {:?}",
        e.cycle_axis_totals()
    );
    assert!(
        delta.unsigned_abs() * 2 > e.cycle_delta().unsigned_abs(),
        "exposed-transfer moved {delta} of {} total",
        e.cycle_delta()
    );

    // The rendered table names the axis in its top row.
    let table = e.render(5);
    assert!(table.contains("exposed-transfer"), "{table}");
}

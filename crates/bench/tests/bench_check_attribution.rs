//! Acceptance: `bench_check` prints an attribution table on regression.
//!
//! Injects a cycles regression into a current-trajectory file, runs the
//! real binary against a matching baseline, and asserts the failure comes
//! with the ranked field-delta table — a tripped gate must name what
//! moved, not just the ratio.

use cello_bench::json::Json;
use std::process::Command;

fn record(name: &str, cycles: u64, traffic: u64, corr: f64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("nodes".into(), Json::int(1)),
        ("base_cycles".into(), Json::int(500_000)),
        ("tuned_cycles".into(), Json::int(cycles)),
        ("tuned_traffic_bytes".into(), Json::int(traffic)),
        ("rank_correlation".into(), Json::Num(corr)),
        ("candidates_seen".into(), Json::int(49_153)),
        ("candidates_per_sec".into(), Json::Num(100_000.0)),
    ])
}

fn doc(records: Vec<Json>) -> Json {
    Json::Obj(vec![("workloads".into(), Json::Arr(records))])
}

#[test]
fn injected_regression_produces_attribution_table() {
    let dir = std::env::temp_dir().join("cello_bench_check_attr_test");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline_path = dir.join("baseline.json");
    let current_path = dir.join("current.json");
    std::fs::write(
        &baseline_path,
        doc(vec![record("cg/test", 288_696, 491_632_668, 1.0)]).render(),
    )
    .unwrap();
    // Inject: cycles blow past the 1.10x gate; traffic moves a little too.
    std::fs::write(
        &current_path,
        doc(vec![record("cg/test", 400_000, 500_000_000, 1.0)]).render(),
    )
    .unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_bench_check"))
        .arg(&current_path)
        .arg(&baseline_path)
        .output()
        .expect("bench_check runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    assert!(!output.status.success(), "injected regression must fail");
    assert!(
        stderr.contains("tuned_cycles regressed"),
        "gate names the symptom: {stderr}"
    );
    // The attribution table names the cause, ranked: cycles moved ~39%,
    // traffic ~1.7%, so tuned_cycles leads.
    assert!(stdout.contains("[explain] cg/test@1n"), "{stdout}");
    let cycles_pos = stdout.find("tuned_cycles").expect("cycles row present");
    let traffic_pos = stdout
        .find("tuned_traffic_bytes")
        .expect("traffic row present");
    assert!(
        cycles_pos < traffic_pos,
        "largest relative change ranks first:\n{stdout}"
    );

    // Control: an unchanged current file passes without the table.
    std::fs::write(
        &current_path,
        doc(vec![record("cg/test", 288_696, 491_632_668, 1.0)]).render(),
    )
    .unwrap();
    let ok = Command::new(env!("CARGO_BIN_EXE_bench_check"))
        .arg(&current_path)
        .arg(&baseline_path)
        .output()
        .expect("bench_check runs");
    assert!(ok.status.success(), "clean run passes");
    assert!(
        !String::from_utf8_lossy(&ok.stdout).contains("[explain]"),
        "green runs stay terse"
    );
}

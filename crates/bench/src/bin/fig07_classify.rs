//! Fig 7 (E4): Algorithm 2 output on the first CG iteration and on a ResNet
//! residual block. Prints the per-edge classification (the paper's colored
//! edges) and writes Graphviz files to `results/`.

use cello_bench::emit;
use cello_core::score::classify::{classify, Dependency};
use cello_graph::dag::{NodeId, TensorDag};
use cello_graph::dot::to_dot;
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::SHALLOW_WATER1;
use cello_workloads::resnet::{build_resnet_block_dag, ResNetBlockParams};

fn color(dep: Dependency) -> &'static str {
    match dep {
        Dependency::Sequential => "gray",
        Dependency::Pipelineable => "blue",
        Dependency::DelayedHold => "cyan",
        Dependency::DelayedWriteback => "firebrick",
    }
}

fn classify_and_emit(name: &str, title: &str, dag: &TensorDag) {
    let cls = classify(dag);
    let mut rows = Vec::new();
    for (eid, edge) in dag.edges() {
        rows.push(vec![
            dag.node(NodeId(edge.src)).name.clone(),
            dag.node(NodeId(edge.dst)).name.clone(),
            dag.node(NodeId(edge.src)).output.name.clone(),
            dag.node(NodeId(edge.src)).dominance.to_string(),
            if cls.transitive[eid.0] { "yes" } else { "no" }.into(),
            cls.dep(eid).to_string(),
        ]);
    }
    emit(
        name,
        title,
        &[
            "src",
            "dst",
            "tensor",
            "src dom",
            "transitive",
            "dependency",
        ],
        &rows,
    );
    let cls2 = cls.clone();
    let dot = to_dot(dag, |e| {
        (color(cls2.dep(e)).to_string(), cls2.dep(e).to_string())
    });
    let path = format!("results/{name}.dot");
    if std::fs::write(&path, dot).is_ok() {
        println!("[saved {path}]");
    }
    let h = cls.histogram();
    println!(
        "histogram: sequential={} pipelineable={} delayed_hold={} delayed_writeback={}\n",
        h[0], h[1], h[2], h[3]
    );
}

fn main() {
    // One CG iteration (Fig 7 left shows iteration 1; we unroll 2 so the
    // cross-iteration delayed deps to iteration 2 are visible).
    let dag = build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 2));
    classify_and_emit(
        "fig07_cg",
        "Fig 7 (left): Algorithm 2 on CG (2 unrolled iterations)",
        &dag,
    );
    let resnet = build_resnet_block_dag(&ResNetBlockParams::conv3x());
    classify_and_emit(
        "fig07_resnet",
        "Fig 7 (right): Algorithm 2 on the ResNet residual block",
        &resnet,
    );
}

//! `cello_dse` — auto-tune every workload over the SCORE × CHORD space.
//!
//! For each paper workload this builds the DAG, derives the co-design search
//! space (`cello_search::SearchSpace`), runs the beam strategy (width 8) and
//! the seeded random baseline, and compares the tuned schedule against the
//! `ScheduleOptions::cello()` paper heuristic scored through the same cheap
//! evaluator. On the CG DAG it additionally runs exhaustive enumeration to
//! report how much of the exhaustive-best the beam recovers and at what
//! fraction of the evaluation count.
//!
//! `--nodes 1,4,16` widens the space with the §V-B multi-node partition
//! dimension (node count × dominant-rank-slice/stage-split axis) and sweeps
//! beam search over it on the multi-node workloads (CG, HPCG, GCN),
//! reporting the best total-traffic (DRAM + NoC hop-bytes) schedule and how
//! it compares with the best single-node one.
//!
//! Output: a TSV under `results/dse.tsv` plus the usual stdout table.
//!
//! Usage: `cargo run --release --bin cello_dse [-- --nodes 1,4,16] [--quick]`

use cello_bench::{emit, f3};
use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use cello_search::{SpaceConfig, Strategy, Tuner};
use cello_workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::{CORA, G2_CIRCUIT, SHALLOW_WATER1};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};
use cello_workloads::hpcg::{build_hpcg_dag, HpcgParams};
use cello_workloads::power_iter::{build_power_iter_dag, PowerIterParams};
use cello_workloads::resnet::{build_resnet_block_dag, ResNetBlockParams};

struct Workload {
    name: &'static str,
    dag: TensorDag,
    accel: CelloConfig,
    /// Part of the `--nodes` multi-node sweep (§V-B workloads).
    multinode: bool,
}

struct Args {
    /// Node counts for the partition dimension (`[1]` = single-node space).
    nodes: Vec<u64>,
    /// Small-budget smoke run (CI): CG only, beam width 4, no exhaustive.
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: vec![1],
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--nodes needs a comma-separated list, e.g. --nodes 1,4,16");
                    std::process::exit(2);
                });
                args.nodes = list
                    .split(',')
                    .map(|s| {
                        s.trim().parse::<u64>().unwrap_or_else(|_| {
                            eprintln!("bad node count {s:?} in --nodes");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if !args.nodes.contains(&1) {
                    // The single-node dataflow is always worth comparing.
                    args.nodes.insert(0, 1);
                }
            }
            "--quick" => args.quick = true,
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: cello_dse [--nodes 1,4,16] [--quick]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn workloads(quick: bool) -> Vec<Workload> {
    let mut all = vec![Workload {
        name: "cg/G2_circuit",
        dag: build_cg_dag(&CgParams::from_dataset(&G2_CIRCUIT, 16, 5)),
        accel: CelloConfig::paper(),
        multinode: true,
    }];
    if quick {
        return all;
    }
    all.extend([
        Workload {
            name: "cg/shallow_w1",
            dag: build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 5)),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        Workload {
            name: "bicgstab/G2",
            dag: build_bicgstab_dag(&BicgParams::from_dataset(&G2_CIRCUIT, 16, 3)),
            accel: CelloConfig::paper(),
            multinode: false,
        },
        Workload {
            name: "hpcg/nx48",
            dag: build_hpcg_dag(&HpcgParams {
                nx: 48,
                n: 16,
                iterations: 4,
            }),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        Workload {
            name: "gcn/cora",
            dag: build_gcn_dag(&GcnParams::from_dataset(&CORA, 2)),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        Workload {
            name: "resnet/conv3x",
            dag: build_resnet_block_dag(&ResNetBlockParams::conv3x()),
            accel: CelloConfig::paper().with_word_bytes(2),
            multinode: false,
        },
        Workload {
            name: "power/G2",
            dag: build_power_iter_dag(&PowerIterParams::from_dataset(&G2_CIRCUIT, 5)),
            accel: CelloConfig::paper(),
            multinode: false,
        },
    ]);
    all
}

fn main() {
    let args = parse_args();
    let multi = args.nodes.iter().any(|&n| n > 1);
    let beam_width = if args.quick { 4 } else { 8 };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut wins = 0usize;
    // The cg/G2 beam outcome over the widened space doubles as the
    // multi-node side of the sweep comparison below — no need to re-tune.
    let mut cg_multi: Option<cello_search::SearchOutcome> = None;
    for w in workloads(args.quick) {
        let cfg = if multi && w.multinode {
            SpaceConfig::with_nodes(&args.nodes)
        } else {
            SpaceConfig::default()
        };
        let strategies: Vec<Strategy> = if args.quick {
            vec![Strategy::Beam { width: beam_width }]
        } else {
            vec![
                Strategy::Beam { width: beam_width },
                Strategy::Random {
                    samples: 64,
                    seed: 0xCE110,
                },
            ]
        };
        for strategy in strategies {
            // Fresh tuner (and memo cache) per strategy so each row's
            // evals/cache_hits measure that strategy standalone.
            let tuner = Tuner::new(&w.dag, &w.accel, cfg.clone());
            let out = tuner.tune(strategy);
            let improved = out.best_cycles.cost.cycles < out.baseline.cost.cycles
                || out.best_dram.cost.dram_bytes < out.baseline.cost.dram_bytes;
            if improved && matches!(strategy, Strategy::Beam { .. }) {
                wins += 1;
            }
            if multi && w.name == "cg/G2_circuit" && matches!(strategy, Strategy::Beam { .. }) {
                cg_multi = Some(out.clone());
            }
            rows.push(vec![
                w.name.to_string(),
                out.strategy.clone(),
                out.baseline.cost.cycles.to_string(),
                out.best_cycles.cost.cycles.to_string(),
                f3(out.speedup()),
                out.baseline.cost.dram_bytes.to_string(),
                out.best_dram.cost.dram_bytes.to_string(),
                f3(out.dram_ratio()),
                out.best_traffic.cost.total_traffic_bytes().to_string(),
                out.best_traffic.cost.noc_hop_bytes.to_string(),
                out.evaluations.to_string(),
                out.cache_hits.to_string(),
                out.pareto.len().to_string(),
            ]);
        }
    }
    emit(
        "dse",
        "cello_dse: tuned vs. paper-heuristic schedules",
        &[
            "workload",
            "strategy",
            "base_cycles",
            "tuned_cycles",
            "speedup",
            "base_dram_B",
            "tuned_dram_B",
            "dram_ratio",
            "tuned_traffic_B",
            "tuned_noc_hopB",
            "evals",
            "cache_hits",
            "pareto",
        ],
        &rows,
    );
    println!("workloads improved by beam tuning: {wins}");

    // Multi-node vs single-node total traffic on CG — the §V-B payoff. The
    // multi-node side is the main loop's widened-space beam outcome; only
    // the single-node reference needs a fresh tune.
    if multi {
        let dag = build_cg_dag(&CgParams::from_dataset(&G2_CIRCUIT, 16, 5));
        let accel = CelloConfig::paper();
        let single = Tuner::new(&dag, &accel, SpaceConfig::default())
            .tune(Strategy::Beam { width: beam_width });
        let swept = cg_multi.expect("cg/G2_circuit always runs under --nodes");
        let s = single.best_traffic.cost.total_traffic_bytes();
        let m = swept.best_traffic.cost.total_traffic_bytes();
        let partition = swept
            .best_traffic
            .candidate
            .constraints
            .partition
            .map(|p| format!("{p:?}"))
            .unwrap_or_else(|| "single-node".into());
        println!(
            "cg multi-node sweep {:?}: best traffic {m} B vs single-node {s} B ({}x, winner {partition})",
            args.nodes,
            f3(s as f64 / m.max(1) as f64),
        );
        if args.quick {
            assert!(
                m <= s,
                "multi-node space must never lose to single-node (it contains it)"
            );
        }
    }

    if args.quick {
        println!("quick smoke complete");
        return;
    }

    // Beam-vs-exhaustive efficiency on the CG DAG (kept to one dataset:
    // exhaustive on the full default space is thousands of evaluations).
    let dag = build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 5));
    let accel = CelloConfig::paper();
    let tuner = Tuner::new(&dag, &accel, SpaceConfig::default());
    let beam = tuner.tune(Strategy::Beam { width: 8 });
    let fresh = Tuner::new(&dag, &accel, SpaceConfig::default());
    let exhaustive = fresh.tune(Strategy::Exhaustive);
    let cycle_ratio =
        beam.best_cycles.cost.cycles as f64 / exhaustive.best_cycles.cost.cycles.max(1) as f64;
    let eval_ratio = exhaustive.evaluations as f64 / beam.evaluations.max(1) as f64;
    println!(
        "cg beam-vs-exhaustive: cycles ratio {} (<= 1.05 expected), {}x fewer evaluations ({} vs {})",
        f3(cycle_ratio),
        f3(eval_ratio),
        beam.evaluations,
        exhaustive.evaluations,
    );
}

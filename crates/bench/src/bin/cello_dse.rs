//! `cello_dse` — auto-tune every workload over the SCORE × CHORD space.
//!
//! For each paper workload this builds the DAG, derives the co-design search
//! space (`cello_search::SearchSpace`), runs the beam strategy (width 8) and
//! the seeded random baseline, and compares the tuned schedule against the
//! `ScheduleOptions::cello()` paper heuristic scored through the same cheap
//! evaluator. On the CG DAG it additionally runs exhaustive enumeration to
//! report how much of the exhaustive-best the beam recovers and at what
//! fraction of the evaluation count.
//!
//! Output: a TSV under `results/dse.tsv` plus the usual stdout table.
//!
//! Usage: `cargo run --release --bin cello_dse`

use cello_bench::{emit, f3};
use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use cello_search::{SpaceConfig, Strategy, Tuner};
use cello_workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::{CORA, G2_CIRCUIT, SHALLOW_WATER1};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};
use cello_workloads::hpcg::{build_hpcg_dag, HpcgParams};
use cello_workloads::power_iter::{build_power_iter_dag, PowerIterParams};
use cello_workloads::resnet::{build_resnet_block_dag, ResNetBlockParams};

struct Workload {
    name: &'static str,
    dag: TensorDag,
    accel: CelloConfig,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "cg/G2_circuit",
            dag: build_cg_dag(&CgParams::from_dataset(&G2_CIRCUIT, 16, 5)),
            accel: CelloConfig::paper(),
        },
        Workload {
            name: "cg/shallow_w1",
            dag: build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 5)),
            accel: CelloConfig::paper(),
        },
        Workload {
            name: "bicgstab/G2",
            dag: build_bicgstab_dag(&BicgParams::from_dataset(&G2_CIRCUIT, 16, 3)),
            accel: CelloConfig::paper(),
        },
        Workload {
            name: "hpcg/nx48",
            dag: build_hpcg_dag(&HpcgParams {
                nx: 48,
                n: 16,
                iterations: 4,
            }),
            accel: CelloConfig::paper(),
        },
        Workload {
            name: "gcn/cora",
            dag: build_gcn_dag(&GcnParams::from_dataset(&CORA, 2)),
            accel: CelloConfig::paper(),
        },
        Workload {
            name: "resnet/conv3x",
            dag: build_resnet_block_dag(&ResNetBlockParams::conv3x()),
            accel: CelloConfig::paper().with_word_bytes(2),
        },
        Workload {
            name: "power/G2",
            dag: build_power_iter_dag(&PowerIterParams::from_dataset(&G2_CIRCUIT, 5)),
            accel: CelloConfig::paper(),
        },
    ]
}

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut wins = 0usize;
    for w in workloads() {
        for strategy in [
            Strategy::Beam { width: 8 },
            Strategy::Random {
                samples: 64,
                seed: 0xCE110,
            },
        ] {
            // Fresh tuner (and memo cache) per strategy so each row's
            // evals/cache_hits measure that strategy standalone.
            let tuner = Tuner::new(&w.dag, &w.accel, SpaceConfig::default());
            let out = tuner.tune(strategy);
            let improved = out.best_cycles.cost.cycles < out.baseline.cost.cycles
                || out.best_dram.cost.dram_bytes < out.baseline.cost.dram_bytes;
            if improved && matches!(strategy, Strategy::Beam { .. }) {
                wins += 1;
            }
            rows.push(vec![
                w.name.to_string(),
                out.strategy.clone(),
                out.baseline.cost.cycles.to_string(),
                out.best_cycles.cost.cycles.to_string(),
                f3(out.speedup()),
                out.baseline.cost.dram_bytes.to_string(),
                out.best_dram.cost.dram_bytes.to_string(),
                f3(out.dram_ratio()),
                out.evaluations.to_string(),
                out.cache_hits.to_string(),
                out.pareto.len().to_string(),
            ]);
        }
    }
    emit(
        "dse",
        "cello_dse: tuned vs. paper-heuristic schedules",
        &[
            "workload",
            "strategy",
            "base_cycles",
            "tuned_cycles",
            "speedup",
            "base_dram_B",
            "tuned_dram_B",
            "dram_ratio",
            "evals",
            "cache_hits",
            "pareto",
        ],
        &rows,
    );
    println!("workloads improved by beam tuning: {wins}");

    // Beam-vs-exhaustive efficiency on the CG DAG (kept to one dataset:
    // exhaustive on the full default space is thousands of evaluations).
    let dag = build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 5));
    let accel = CelloConfig::paper();
    let tuner = Tuner::new(&dag, &accel, SpaceConfig::default());
    let beam = tuner.tune(Strategy::Beam { width: 8 });
    let fresh = Tuner::new(&dag, &accel, SpaceConfig::default());
    let exhaustive = fresh.tune(Strategy::Exhaustive);
    let cycle_ratio =
        beam.best_cycles.cost.cycles as f64 / exhaustive.best_cycles.cost.cycles.max(1) as f64;
    let eval_ratio = exhaustive.evaluations as f64 / beam.evaluations.max(1) as f64;
    println!(
        "cg beam-vs-exhaustive: cycles ratio {} (<= 1.05 expected), {}x fewer evaluations ({} vs {})",
        f3(cycle_ratio),
        f3(eval_ratio),
        beam.evaluations,
        exhaustive.evaluations,
    );
}

//! `cello_dse` — auto-tune every workload over the SCORE × CHORD space.
//!
//! For each paper workload this builds the DAG, derives the co-design search
//! space (`cello_search::SearchSpace`), runs the beam strategy (width 8) and
//! the seeded random baseline, and compares the tuned schedule against the
//! `ScheduleOptions::cello()` paper heuristic scored through the same cheap
//! evaluator. On the CG DAG it additionally runs exhaustive enumeration to
//! report how much of the exhaustive-best the beam recovers and at what
//! fraction of the evaluation count.
//!
//! `--nodes 1,4,16` widens the space with the §V-B multi-node partition
//! dimension (node count × dominant-rank-slice/stage-split axis) and sweeps
//! beam search over it on the multi-node workloads (CG, HPCG, GCN),
//! reporting the best total-traffic (DRAM + NoC hop-bytes) schedule and how
//! it compares with the best single-node one.
//!
//! `--prefilter` swaps the beam for the two-tier
//! `Strategy::Prefiltered(0.1, Beam)` over the **widened** space
//! (`SpaceConfig::widened`: six cut points + graded per-tensor CHORD
//! priority biasing): the analytic surrogate ranks the traversal and only
//! the top tenth reaches `sim::evaluate`.
//!
//! `--tier0` runs the full three-tier funnel instead:
//! `Prefiltered(0.1, Tier0)` over the widened space. Tier 0 sweeps up to
//! 49 152 assignments through the closed-form asymptotic cost sketch
//! (`cello_search::tier0` — no schedule build, no phase walk), keeps only
//! the sketch-Pareto survivors (≤ 96), the surrogate ranks those, and the
//! simulator scores the top tenth — ~100× more candidates considered per
//! second than the two-tier beam.
//!
//! `--per-phase-sram` opens the per-phase SRAM repartition dimension
//! (`SpaceConfig::with_repartition`): fused/solo split profiles override
//! the single global pipeline/RF/CHORD split phase by phase, with CHORD
//! resized (and the resize traffic charged) at phase boundaries.
//!
//! `--quick` is the CI bench-trajectory mode: CG/HPCG/GCN at single-node,
//! at the `--nodes` mesh, and over the per-phase-SRAM space (`name+pp`
//! records), always through the three-tier funnel, emitting
//! `BENCH_dse.json` at the repo root (cycles, DRAM/NoC bytes, energy,
//! candidates seen/sec, surrogate rank-correlation) for the `bench_check`
//! regression gate, plus the usual stdout table. The trajectory also
//! carries a **sparse family** (`cg-sparse/*`): CG over real-pattern
//! `.mtx` fixtures under `data/`, built with `CgParams::from_csr` so the
//! DAG carries measured occupancy stats and the widened space opens the
//! CHORD-overbooking dimension. For each sparse workload the tuned
//! overbooked schedule is compared against the best schedule of the same
//! space with the overbook menu removed (the worst-case-dense model); at
//! least one skewed fixture must win strictly on DRAM traffic or cycles,
//! or the trajectory fails.
//!
//! `--audit` runs every primary tune through
//! `cello_search::Tuner::tune_audited` instead of `tune` (identical
//! outcome, same seeds): the per-tier funnel ledger — where every
//! candidate died (tier-0 prune / schedule dedup / surrogate cut /
//! promoted), the tier-0 sketch-vs-sim Spearman cross-check, and the
//! sampled survivor-loss probe — lands in `BENCH_audit.json`. The run
//! fails if the accounting identity (`candidates_seen` = died + promoted)
//! breaks, or if an exhaustively-covered space lost its sim optimum;
//! sampled survivor loss is quantified in the ledger (keep-capped sampled
//! sweeps are expected to be mildly lossy).
//!
//! Output: a TSV under `results/dse.tsv` plus the stdout tables.
//!
//! Usage: `cargo run --release --bin cello_dse [-- --nodes 1,4,16,64]
//! [--prefilter] [--tier0] [--per-phase-sram] [--quick] [--audit]`

use cello_bench::json::Json;
use cello_bench::{emit, f3, surrogate_rank_correlation};
use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use cello_search::{AuditConfig, FunnelAudit, SearchOutcome, SpaceConfig, Strategy, Tuner};
use cello_workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::{load_matrix_market, CORA, G2_CIRCUIT, SHALLOW_WATER1};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};
use cello_workloads::hpcg::{build_hpcg_dag, HpcgParams};
use cello_workloads::power_iter::{build_power_iter_dag, PowerIterParams};
use cello_workloads::resnet::{build_resnet_block_dag, ResNetBlockParams};

/// Prefilter keep fraction used by `--prefilter` and the quick trajectory.
const KEEP_FRAC: f64 = 0.1;
/// Tier-0 sketch budget for `--tier0` and the quick trajectory: how many
/// assignments the symbolic sweep considers per tune.
const TIER0_BUDGET: u64 = 49_152;
/// Tier-0 keep cap: sketch-Pareto survivors promoted to the surrogate.
const TIER0_KEEP: usize = 96;
/// Tolerance on the quick-mode containment checks (per-phase vs global
/// split, mesh vs single node). The bigger space *contains* the smaller,
/// but a sampled tier-0 sweep is not monotone across space inclusion —
/// the larger space draws a different assignment stream — so containment
/// holds to within the funnel's 2% quality bar rather than exactly.
const CONTAIN_TOL: f64 = 1.02;
/// Seed for the rank-correlation sample (same stream as `Strategy::Random`).
const CORR_SEED: u64 = 0xCE110;
/// Candidates in the rank-correlation sample.
const CORR_SAMPLES: usize = 24;

struct Workload {
    name: &'static str,
    dag: TensorDag,
    accel: CelloConfig,
    /// Part of the `--nodes` multi-node sweep (§V-B workloads).
    multinode: bool,
}

struct Args {
    /// Node counts for the partition dimension (`[1]` = single-node space).
    nodes: Vec<u64>,
    /// Small-budget trajectory run (CI): CG/HPCG/GCN through the
    /// three-tier funnel, emits `BENCH_dse.json`.
    quick: bool,
    /// Use the two-tier prefilter over the widened space.
    prefilter: bool,
    /// Use the three-tier funnel (tier-0 sketch → surrogate → sim) over
    /// the widened space.
    tier0: bool,
    /// Open the per-phase SRAM repartition dimension.
    per_phase_sram: bool,
    /// Collect the per-tier funnel ledger (`tune_audited`) and write
    /// `BENCH_audit.json`; fail on accounting or survivor-loss violations.
    audit: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: vec![1],
        quick: false,
        prefilter: false,
        tier0: false,
        per_phase_sram: false,
        audit: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--nodes needs a comma-separated list, e.g. --nodes 1,4,16");
                    std::process::exit(2);
                });
                args.nodes = list
                    .split(',')
                    .map(|s| {
                        s.trim().parse::<u64>().unwrap_or_else(|_| {
                            eprintln!("bad node count {s:?} in --nodes");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if !args.nodes.contains(&1) {
                    // The single-node dataflow is always worth comparing.
                    args.nodes.insert(0, 1);
                }
            }
            "--quick" => args.quick = true,
            "--prefilter" => args.prefilter = true,
            "--tier0" => args.tier0 = true,
            "--per-phase-sram" => args.per_phase_sram = true,
            "--audit" => args.audit = true,
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: cello_dse [--nodes 1,4,16,64] [--prefilter] [--tier0] [--per-phase-sram] [--quick] [--audit]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// CG over a real `.mtx` fixture: `from_csr` measures per-row-block
/// occupancy, so the DAG carries the stats that gate the overbooking
/// dimension on.
fn sparse_cg(path: &str) -> TensorDag {
    let a = load_matrix_market(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cello_dse --quick: cannot load {path}: {e}");
        std::process::exit(1);
    });
    build_cg_dag(&CgParams::from_csr(&a, 16, 5))
}

fn quick_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "cg/G2_circuit",
            dag: build_cg_dag(&CgParams::from_dataset(&G2_CIRCUIT, 16, 5)),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        Workload {
            name: "hpcg/nx48",
            dag: build_hpcg_dag(&HpcgParams {
                nx: 48,
                n: 16,
                iterations: 2,
            }),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        Workload {
            name: "gcn/cora",
            dag: build_gcn_dag(&GcnParams::from_dataset(&CORA, 2)),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        // The sparse family: real-pattern fixtures with measured occupancy.
        // Arrowhead and the preferential-attachment Laplacian are heavily
        // skewed (overbooking should win); the tridiagonal is uniform
        // (occupancy carried, nothing to overbook — the identity path).
        Workload {
            name: "cg-sparse/arrowhead",
            dag: sparse_cg("data/arrowhead_768.mtx"),
            accel: CelloConfig::paper(),
            multinode: false,
        },
        Workload {
            name: "cg-sparse/powlaw",
            dag: sparse_cg("data/powlaw_640.mtx"),
            accel: CelloConfig::paper(),
            multinode: false,
        },
        Workload {
            name: "cg-sparse/tridiag",
            dag: sparse_cg("data/tridiag_1024.mtx"),
            accel: CelloConfig::paper(),
            multinode: false,
        },
    ]
}

fn workloads() -> Vec<Workload> {
    let mut all = vec![Workload {
        name: "cg/G2_circuit",
        dag: build_cg_dag(&CgParams::from_dataset(&G2_CIRCUIT, 16, 5)),
        accel: CelloConfig::paper(),
        multinode: true,
    }];
    all.extend([
        Workload {
            name: "cg/shallow_w1",
            dag: build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 5)),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        Workload {
            name: "bicgstab/G2",
            dag: build_bicgstab_dag(&BicgParams::from_dataset(&G2_CIRCUIT, 16, 3)),
            accel: CelloConfig::paper(),
            multinode: false,
        },
        Workload {
            name: "hpcg/nx48",
            dag: build_hpcg_dag(&HpcgParams {
                nx: 48,
                n: 16,
                iterations: 4,
            }),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        Workload {
            name: "gcn/cora",
            dag: build_gcn_dag(&GcnParams::from_dataset(&CORA, 2)),
            accel: CelloConfig::paper(),
            multinode: true,
        },
        Workload {
            name: "resnet/conv3x",
            dag: build_resnet_block_dag(&ResNetBlockParams::conv3x()),
            accel: CelloConfig::paper().with_word_bytes(2),
            multinode: false,
        },
        Workload {
            name: "power/G2",
            dag: build_power_iter_dag(&PowerIterParams::from_dataset(&G2_CIRCUIT, 5)),
            accel: CelloConfig::paper(),
            multinode: false,
        },
    ]);
    all
}

/// Prints the process-global search instrumentation accumulated over every
/// tune this run (tunes, exact-vs-surrogate evaluation split, memo cache
/// hits, prefilter keep/drop tallies) — the registry the serve daemon
/// exposes over its `metrics` op, surfaced here for CLI runs.
fn print_obs_summary() {
    let snap = cello_obs::metrics::global().snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!(
        "[obs] {} tunes: {} exact evals, {} surrogate, {} cache hits, {} candidates; \
         prefilter kept {} / dropped {}",
        get("search_tunes"),
        get("search_exact_evals"),
        get("search_surrogate_evals"),
        get("search_cache_hits"),
        get("search_candidates"),
        get("search_prefilter_kept"),
        get("search_prefilter_dropped"),
    );
    // The three-tier funnel, narrowest last: how many candidates each tier
    // received and passed on. Tier-0 counters are zero when no `Tier0`
    // strategy ran.
    let t0_kept = get("search_tier0_kept");
    let t0_pruned = get("search_tier0_pruned");
    if t0_kept + t0_pruned > 0 {
        println!(
            "[obs] funnel: tier0 swept {} -> kept {} ({} pruned symbolically); \
             surrogate scored {} -> promoted {}; sim evaluated {}",
            t0_kept + t0_pruned,
            t0_kept,
            t0_pruned,
            get("search_surrogate_evals"),
            get("search_prefilter_kept"),
            get("search_exact_evals"),
        );
    }
    let audited = get("search_audit_runs");
    if audited > 0 {
        println!(
            "[obs] audit: {} ledgered tunes, cumulative survivor loss {}",
            audited,
            get("search_audit_survivor_loss"),
        );
    }
}

/// One `BENCH_audit.json` record: the funnel ledger for one tune.
fn audit_record(name: &str, nodes: u64, a: &FunnelAudit) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.to_string())),
        ("nodes".into(), Json::int(nodes)),
        ("strategy".into(), Json::Str(a.strategy.clone())),
        ("candidates_seen".into(), Json::int(a.candidates_seen)),
        ("tier0_swept".into(), Json::int(a.tier0_swept)),
        ("tier0_kept".into(), Json::int(a.tier0_kept)),
        ("tier0_pruned".into(), Json::int(a.tier0_pruned)),
        ("dedup_merged".into(), Json::int(a.dedup_merged)),
        ("surrogate_ranked".into(), Json::int(a.surrogate_ranked)),
        ("surrogate_dropped".into(), Json::int(a.surrogate_dropped)),
        ("promoted".into(), Json::int(a.promoted)),
        ("accounts_exactly".into(), Json::Bool(a.accounts_exactly())),
        (
            "sketch_sim_spearman".into(),
            a.sketch_sim_spearman.map_or(Json::Null, Json::Num),
        ),
        ("rank_checked".into(), Json::int(a.rank_checked)),
        ("pruned_sampled".into(), Json::int(a.pruned_sampled)),
        ("survivor_loss".into(), Json::int(a.survivor_loss)),
        (
            "sim_optimum_survived".into(),
            a.sim_optimum_survived.map_or(Json::Null, Json::Bool),
        ),
    ])
}

/// Prints the ledger and pushes any consistency violation: the accounting
/// identity must close, and on an exhaustively-covered space the sim
/// optimum must have survived every tier (the
/// `tier0_never_discards_the_sim_optimum` soundness property). Sampled
/// survivor loss is *reported*, not failed: a keep-capped sampled sweep is
/// expected to be lossy, and quantifying that loss is the audit's job.
fn check_audit(label: &str, a: &FunnelAudit, violations: &mut Vec<String>) {
    println!(
        "[audit] {label}: seen {} = tier0_pruned {} + dedup {} + surrogate_dropped {} \
         + promoted {}; sketch-sim rho {} over {}; survivor loss {}/{} sampled",
        a.candidates_seen,
        a.tier0_pruned,
        a.dedup_merged,
        a.surrogate_dropped,
        a.promoted,
        a.sketch_sim_spearman
            .map_or_else(|| "n/a".into(), |r| format!("{r:.3}")),
        a.rank_checked,
        a.survivor_loss,
        a.pruned_sampled,
    );
    if !a.accounts_exactly() {
        violations.push(format!(
            "{label}: audit accounting identity broken — seen {} != {} \
             (tier0_pruned {} + dedup {} + surrogate_dropped {} + promoted {})",
            a.candidates_seen,
            a.tier_sum(),
            a.tier0_pruned,
            a.dedup_merged,
            a.surrogate_dropped,
            a.promoted,
        ));
    }
    if a.sim_optimum_survived == Some(false) {
        violations.push(format!(
            "{label}: the space was exhaustively covered yet the sim optimum \
             did not survive the funnel — tier-0 soundness broken"
        ));
    }
    if a.survivor_loss > 0 {
        println!(
            "[audit] {label}: warning — {} of {} sampled pruned candidates beat \
             the winner (keep-cap lossiness on a sampled sweep; quantified, not fatal)",
            a.survivor_loss, a.pruned_sampled,
        );
    }
}

/// Writes `BENCH_audit.json` (the CI-uploaded funnel-forensics artifact).
fn write_audit_artifact(generated_by: &str, audits: Vec<Json>) {
    let doc = Json::Obj(vec![
        ("schema".into(), Json::int(1)),
        ("generated_by".into(), Json::Str(generated_by.to_string())),
        ("tunes".into(), Json::Arr(audits)),
    ]);
    match std::fs::write("BENCH_audit.json", doc.render()) {
        Ok(()) => println!("[saved BENCH_audit.json]"),
        Err(e) => {
            eprintln!("could not write BENCH_audit.json: {e}");
            std::process::exit(1);
        }
    }
}

fn outcome_row(name: &str, out: &SearchOutcome) -> Vec<String> {
    vec![
        name.to_string(),
        out.strategy.clone(),
        out.baseline.cost.cycles.to_string(),
        out.best_cycles.cost.cycles.to_string(),
        f3(out.speedup()),
        out.baseline.cost.dram_bytes.to_string(),
        out.best_dram.cost.dram_bytes.to_string(),
        f3(out.dram_ratio()),
        out.best_traffic.cost.total_traffic_bytes().to_string(),
        out.best_traffic.cost.noc_hop_bytes.to_string(),
        out.evaluations.to_string(),
        out.surrogate_scored.to_string(),
        out.cache_hits.to_string(),
        out.pareto.len().to_string(),
    ]
}

const DSE_HEADER: [&str; 14] = [
    "workload",
    "strategy",
    "base_cycles",
    "tuned_cycles",
    "speedup",
    "base_dram_B",
    "tuned_dram_B",
    "dram_ratio",
    "tuned_traffic_B",
    "tuned_noc_hopB",
    "evals",
    "surrogate",
    "cache_hits",
    "pareto",
];

/// The CI bench-trajectory mode: prefiltered tuning of CG/HPCG/GCN at
/// single-node and at the `--nodes` mesh, `BENCH_dse.json` emission.
fn run_quick(args: &Args) {
    // The full three-tier funnel: tier-0 sketches TIER0_BUDGET assignments
    // symbolically, the surrogate ranks the sketch-Pareto survivors, the
    // simulator scores the top KEEP_FRAC of those.
    let inner = Strategy::Tier0 {
        budget: TIER0_BUDGET,
        keep: TIER0_KEEP,
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut records: Vec<Json> = Vec::new();
    // Single-node always; the `--nodes` mesh as a second variant only when
    // it actually widens the menu (plain `--quick` would otherwise tune the
    // identical [1] space twice and emit duplicate records); and the
    // per-phase-SRAM space at a single node as a third (`name+pp` records),
    // so the perf gate covers the repartition dimension.
    let mut variants: Vec<(Vec<u64>, bool)> = vec![(vec![1], false)];
    if args.nodes.iter().any(|&n| n > 1) {
        variants.push((args.nodes.clone(), false));
    }
    variants.push((vec![1], true));
    // Invariant violations are collected, not asserted mid-loop: the
    // trajectory file must land even on a bad run so CI still uploads an
    // artifact and `bench_check` can report what went wrong.
    let mut violations: Vec<String> = Vec::new();
    // The overbooking payoff check: every sparse workload's tuned
    // (overbook-enabled) outcome is compared against the best of the same
    // space with the overbook menu removed; at least one fixture must win
    // strictly.
    let mut sparse_compared = 0usize;
    let mut sparse_wins = 0usize;
    // `--audit`: the per-tune funnel ledgers, written to BENCH_audit.json.
    let mut audits: Vec<Json> = Vec::new();
    for w in quick_workloads() {
        let mut best_plain_single: Option<u64> = None;
        let mut best_mesh: Option<u64> = None;
        let mut single_outcome: Option<SearchOutcome> = None;
        for (node_menu, per_phase) in &variants {
            let nodes_label = *node_menu.iter().max().unwrap_or(&1);
            if nodes_label > 1 && !w.multinode {
                continue;
            }
            let mut cfg = SpaceConfig::widened_with_nodes(node_menu);
            if *per_phase {
                cfg = cfg.with_repartition(w.accel.sram_words());
            }
            let record_name = if *per_phase {
                format!("{}+pp", w.name)
            } else {
                w.name.to_string()
            };
            let started = std::time::Instant::now();
            let tuner = Tuner::new(&w.dag, &w.accel, cfg.clone());
            let strategy = Strategy::prefiltered(KEEP_FRAC, inner.clone());
            // The audited path replays the identical tune (same seeds, same
            // ordering) while ledgering where every candidate died.
            let (out, ledger) = if args.audit {
                let (out, a) = tuner.tune_audited(&strategy, &AuditConfig::default());
                (out, Some(a))
            } else {
                (tuner.tune(&strategy), None)
            };
            let elapsed = started.elapsed().as_secs_f64().max(1e-9);
            let corr = surrogate_rank_correlation(&w.dag, &w.accel, &cfg, CORR_SAMPLES, CORR_SEED);
            let cand_per_sec = out.candidates_seen as f64 / elapsed;
            let best = out.best_traffic.cost.total_traffic_bytes();
            match (*per_phase, nodes_label) {
                (false, 1) => {
                    best_plain_single = Some(best);
                    single_outcome = Some(out.clone());
                }
                (false, _) => best_mesh = Some(best),
                // The repartitioned space contains every global-split
                // schedule, but a *sampled* tier-0 sweep is not monotone
                // across space inclusion (the larger space draws a
                // different assignment stream), so the containment check
                // carries the funnel's 2% quality tolerance.
                (true, _) => {
                    if let Some(plain) = best_plain_single {
                        if best as f64 > CONTAIN_TOL * plain as f64 {
                            violations.push(format!(
                                "{record_name}: per-phase best traffic {best} worse than \
                                 global-split {plain} beyond {CONTAIN_TOL}x"
                            ));
                        }
                    }
                }
            }
            let label = format!("{record_name}@{nodes_label}n");
            rows.push(outcome_row(&label, &out));
            records.push(Json::Obj(vec![
                ("name".into(), Json::Str(record_name.clone())),
                ("nodes".into(), Json::int(nodes_label)),
                ("strategy".into(), Json::Str(out.strategy.clone())),
                ("base_cycles".into(), Json::int(out.baseline.cost.cycles)),
                (
                    "tuned_cycles".into(),
                    Json::int(out.best_cycles.cost.cycles),
                ),
                (
                    "tuned_dram_bytes".into(),
                    Json::int(out.best_traffic.cost.dram_bytes),
                ),
                (
                    "tuned_noc_hop_bytes".into(),
                    Json::int(out.best_traffic.cost.noc_hop_bytes),
                ),
                (
                    "tuned_traffic_bytes".into(),
                    Json::int(out.best_traffic.cost.total_traffic_bytes()),
                ),
                (
                    "tuned_energy_pj".into(),
                    Json::Num(out.best_cycles.cost.energy_pj),
                ),
                ("evaluations".into(), Json::int(out.evaluations)),
                ("surrogate_scored".into(), Json::int(out.surrogate_scored)),
                ("candidates_seen".into(), Json::int(out.candidates_seen)),
                ("candidates_per_sec".into(), Json::Num(cand_per_sec)),
                ("rank_correlation".into(), Json::Num(corr)),
            ]));
            // The analytic tier must carry the load, and its ranking must
            // stay trustworthy — the same invariants the CI gate re-checks
            // against the committed baseline.
            if out.evaluations >= out.surrogate_scored {
                violations.push(format!(
                    "{label}: prefilter did not reduce sim evaluations \
                     ({} exact vs {} surrogate)",
                    out.evaluations, out.surrogate_scored
                ));
            }
            if corr < 0.9 {
                violations.push(format!(
                    "{label}: surrogate rank correlation {corr:.3} below 0.9"
                ));
            }
            if let Some(a) = ledger {
                check_audit(&label, &a, &mut violations);
                audits.push(audit_record(&record_name, nodes_label, &a));
            }
        }
        // Sparsity payoff: re-tune the same single-node widened space with
        // the overbooking dimension closed (the worst-case-dense model) and
        // compare. The overbook-enabled space contains every dense
        // schedule, so on a skewed fixture the tuned overbooked schedule
        // should strictly beat the dense best on DRAM traffic or cycles.
        if w.name.starts_with("cg-sparse/") {
            if let Some(ob) = &single_outcome {
                let mut dense_cfg = SpaceConfig::widened_with_nodes(&[1]);
                dense_cfg.overbook_menu = Vec::new();
                let dense = Tuner::new(&w.dag, &w.accel, dense_cfg)
                    .tune(&Strategy::prefiltered(KEEP_FRAC, inner.clone()));
                let dram_win = ob.best_dram.cost.dram_bytes < dense.best_dram.cost.dram_bytes;
                let cycle_win = ob.best_cycles.cost.cycles < dense.best_cycles.cost.cycles;
                sparse_compared += 1;
                if dram_win || cycle_win {
                    sparse_wins += 1;
                }
                println!(
                    "{}: overbooked best {} B DRAM / {} cyc vs worst-case-dense {} B / {} cyc ({})",
                    w.name,
                    ob.best_dram.cost.dram_bytes,
                    ob.best_cycles.cost.cycles,
                    dense.best_dram.cost.dram_bytes,
                    dense.best_cycles.cost.cycles,
                    if dram_win || cycle_win {
                        "overbooking wins"
                    } else {
                        "no win"
                    },
                );
            }
        }
        // The widened multi-node space contains every single-node schedule;
        // same 2% tolerance as above for the sampled symbolic sweep.
        if let (Some(single), Some(mesh)) = (best_plain_single, best_mesh) {
            if mesh as f64 > CONTAIN_TOL * single as f64 {
                violations.push(format!(
                    "{}: multi-node best traffic {mesh} worse than single-node {single} \
                     beyond {CONTAIN_TOL}x",
                    w.name,
                ));
            }
        }
    }
    if sparse_compared > 0 && sparse_wins == 0 {
        violations.push(format!(
            "no sparse fixture beat the worst-case-dense model \
             ({sparse_compared} compared) — overbooking carries no payoff"
        ));
    }
    emit(
        "dse_quick",
        "cello_dse --quick: three-tier trajectory (CI bench)",
        &DSE_HEADER,
        &rows,
    );
    let doc = Json::Obj(vec![
        ("schema".into(), Json::int(1)),
        (
            "generated_by".into(),
            Json::Str(format!(
                "cello_dse --quick --nodes {}",
                args.nodes
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )),
        ),
        ("keep_frac".into(), Json::Num(KEEP_FRAC)),
        ("workloads".into(), Json::Arr(records)),
    ]);
    match std::fs::write("BENCH_dse.json", doc.render()) {
        Ok(()) => println!("[saved BENCH_dse.json]"),
        Err(e) => {
            eprintln!("could not write BENCH_dse.json: {e}");
            std::process::exit(1);
        }
    }
    if args.audit {
        write_audit_artifact("cello_dse --quick --audit", audits);
    }
    print_obs_summary();
    if !violations.is_empty() {
        eprintln!("quick trajectory FAILED (artifact written above):");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("quick trajectory complete");
}

fn main() {
    let args = parse_args();
    if args.quick {
        run_quick(&args);
        return;
    }

    let multi = args.nodes.iter().any(|&n| n > 1);
    let beam_width = 8;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut wins = 0usize;
    // The cg/G2 outcome over the widened space doubles as the multi-node
    // side of the sweep comparison below — no need to re-tune.
    let mut cg_multi: Option<SearchOutcome> = None;
    let space_for = |menu: &[u64]| {
        if args.prefilter || args.tier0 {
            SpaceConfig::widened_with_nodes(menu)
        } else {
            SpaceConfig::with_nodes(menu)
        }
    };
    let primary = if args.tier0 {
        Strategy::prefiltered(
            KEEP_FRAC,
            Strategy::Tier0 {
                budget: TIER0_BUDGET,
                keep: TIER0_KEEP,
            },
        )
    } else if args.prefilter {
        Strategy::prefiltered(KEEP_FRAC, Strategy::Beam { width: beam_width })
    } else {
        Strategy::Beam { width: beam_width }
    };
    // `--audit`: ledger every primary tune; violations fail the run after
    // the artifact lands.
    let mut audits: Vec<Json> = Vec::new();
    let mut audit_failures: Vec<String> = Vec::new();
    for w in workloads() {
        let mut cfg = if multi && w.multinode {
            space_for(&args.nodes)
        } else {
            space_for(&[1])
        };
        if args.per_phase_sram {
            cfg = cfg.with_repartition(w.accel.sram_words());
        }
        let strategies: Vec<Strategy> = vec![
            primary.clone(),
            Strategy::Random {
                samples: 64,
                seed: CORR_SEED,
            },
        ];
        for (si, strategy) in strategies.into_iter().enumerate() {
            // Fresh tuner (and memo cache) per strategy so each row's
            // evals/cache_hits measure that strategy standalone.
            let tuner = Tuner::new(&w.dag, &w.accel, cfg.clone());
            let out = if args.audit && si == 0 {
                let (out, a) = tuner.tune_audited(&strategy, &AuditConfig::default());
                check_audit(w.name, &a, &mut audit_failures);
                audits.push(audit_record(
                    w.name,
                    *args.nodes.iter().max().unwrap_or(&1),
                    &a,
                ));
                out
            } else {
                tuner.tune(&strategy)
            };
            let improved = out.best_cycles.cost.cycles < out.baseline.cost.cycles
                || out.best_dram.cost.dram_bytes < out.baseline.cost.dram_bytes;
            if improved && si == 0 {
                wins += 1;
            }
            if multi && w.name == "cg/G2_circuit" && si == 0 {
                cg_multi = Some(out.clone());
            }
            rows.push(outcome_row(w.name, &out));
        }
    }
    emit(
        "dse",
        "cello_dse: tuned vs. paper-heuristic schedules",
        &DSE_HEADER,
        &rows,
    );
    println!("workloads improved by {} tuning: {wins}", primary.label());

    // Multi-node vs single-node total traffic on CG — the §V-B payoff. The
    // multi-node side is the main loop's widened-space outcome; only the
    // single-node reference needs a fresh tune.
    if multi {
        let dag = build_cg_dag(&CgParams::from_dataset(&G2_CIRCUIT, 16, 5));
        let accel = CelloConfig::paper();
        let mut single_cfg = space_for(&[1]);
        if args.per_phase_sram {
            single_cfg = single_cfg.with_repartition(accel.sram_words());
        }
        let single = Tuner::new(&dag, &accel, single_cfg).tune(&primary);
        let swept = cg_multi.expect("cg/G2_circuit always runs under --nodes");
        let s = single.best_traffic.cost.total_traffic_bytes();
        let m = swept.best_traffic.cost.total_traffic_bytes();
        let partition = swept
            .best_traffic
            .candidate
            .constraints
            .partition
            .map(|p| format!("{p:?}"))
            .unwrap_or_else(|| "single-node".into());
        println!(
            "cg multi-node sweep {:?}: best traffic {m} B vs single-node {s} B ({}x, winner {partition})",
            args.nodes,
            f3(s as f64 / m.max(1) as f64),
        );
    }

    // Beam-vs-exhaustive efficiency on the CG DAG (kept to one dataset and
    // the default-size space: exhaustive on the widened space is exactly
    // what the prefilter exists to avoid).
    let dag = build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 5));
    let accel = CelloConfig::paper();
    let tuner = Tuner::new(&dag, &accel, SpaceConfig::default());
    let beam = tuner.tune(&Strategy::Beam { width: 8 });
    let fresh = Tuner::new(&dag, &accel, SpaceConfig::default());
    let exhaustive = fresh.tune(&Strategy::Exhaustive);
    let cycle_ratio =
        beam.best_cycles.cost.cycles as f64 / exhaustive.best_cycles.cost.cycles.max(1) as f64;
    let eval_ratio = exhaustive.evaluations as f64 / beam.evaluations.max(1) as f64;
    println!(
        "cg beam-vs-exhaustive: cycles ratio {} (<= 1.05 expected), {}x fewer evaluations ({} vs {})",
        f3(cycle_ratio),
        f3(eval_ratio),
        beam.evaluations,
        exhaustive.evaluations,
    );
    print_obs_summary();
    if args.audit {
        write_audit_artifact(&format!("cello_dse --audit ({})", primary.label()), audits);
        if !audit_failures.is_empty() {
            eprintln!("funnel audit FAILED (artifact written above):");
            for v in &audit_failures {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}

//! Fig 16(a) (E13): ResNet conv3_x residual block — performance and relative
//! off-chip energy, with the SET baseline added, at 1 TB/s and 250 GB/s
//! (16-bit words, Table VII). Expected shape: compute-bound at 1 TB/s (most
//! configs tie on performance); SET == CELLO (delayed hold suffices —
//! ResNet has no delayed writeback); FLAT worse (cannot fuse the skip).

use cello_bench::{emit, f3, run_grid, GridCell};
use cello_core::accel::CelloConfig;
use cello_sim::baselines::ConfigKind;
use cello_workloads::resnet::{build_resnet_block_dag, ResNetBlockParams};

fn main() {
    let configs = vec![
        ConfigKind::Flexagon,
        ConfigKind::FlexLru,
        ConfigKind::FlexBrrip,
        ConfigKind::Flat,
        ConfigKind::SetLike,
        ConfigKind::Cello,
    ];
    let prm = ResNetBlockParams::conv3x();
    let cells = vec![
        GridCell {
            label: "ResNet conv3_x 1TB/s".into(),
            dag: build_resnet_block_dag(&prm),
            accel: CelloConfig::paper().with_word_bytes(2),
        },
        GridCell {
            label: "ResNet conv3_x 250GB/s".into(),
            dag: build_resnet_block_dag(&prm),
            accel: CelloConfig::paper_250gbs().with_word_bytes(2),
        },
    ];
    let reports = run_grid(&cells, &configs);
    let mut rows = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        let slice = &reports[ci * configs.len()..(ci + 1) * configs.len()];
        let base = slice
            .iter()
            .find(|r| r.config == "Flexagon")
            .unwrap()
            .clone();
        for r in slice {
            rows.push(vec![
                cell.label.clone(),
                r.config.clone(),
                f3(r.gfpmuls_per_sec()),
                f3(r.relative_energy(&base)),
                f3(r.memory_bound_fraction()),
            ]);
        }
    }
    emit(
        "fig16a_resnet",
        "Fig 16(a): ResNet block performance and relative off-chip energy",
        &[
            "workload",
            "config",
            "GFPMuls/s",
            "rel. off-chip energy",
            "mem-bound frac",
        ],
        &rows,
    );
    // The SET == CELLO observation.
    for (ci, cell) in cells.iter().enumerate() {
        let slice = &reports[ci * configs.len()..(ci + 1) * configs.len()];
        let get = |n: &str| slice.iter().find(|r| r.config == n).unwrap();
        println!(
            "{}: SET/CELLO DRAM ratio = {} (paper: SET performs the same as CELLO on ResNet)",
            cell.label,
            f3(get("SET").dram_bytes as f64 / get("CELLO").dram_bytes as f64)
        );
    }
}

//! Table I (E2): HPCG vs HPL on the top supercomputers — the motivation data
//! showing CG reaches only 1–3% of peak.

use cello_bench::{emit, f3};
use cello_workloads::hpcg::table1;

fn main() {
    let rows: Vec<Vec<String>> = table1()
        .iter()
        .map(|e| {
            vec![
                e.system.to_string(),
                f3(e.hpl_pflops),
                e.hpcg_pflops.map(f3).unwrap_or_else(|| "n/a".into()),
                e.hpcg_pct_of_hpl()
                    .map(|p| format!("{:.2}%", p))
                    .unwrap_or_else(|| "n/a".into()),
                e.hpcg_pct_of_peak
                    .map(|p| format!("{p}%"))
                    .unwrap_or_else(|| "n/a".into()),
            ]
        })
        .collect();
    emit(
        "tab01_hpcg",
        "Table I: CG (HPCG) vs LINPACK (HPL) on top supercomputers",
        &[
            "system",
            "HPL PFLOP/s",
            "HPCG PFLOP/s",
            "HPCG as % of HPL",
            "HPCG % of peak",
        ],
        &rows,
    );
}

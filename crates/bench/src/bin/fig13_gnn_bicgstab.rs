//! Fig 13 (E10): performance on GNN layers (cora, protein) and BiCGStab
//! (NASA4704, fv1, shallow_water1, N=1). Expected shape: on GNNs
//! CELLO == FLAT > Flexagon (the intermediate is purely pipelineable); on
//! BiCGStab CELLO wins like CG (delayed writebacks dominate).

use cello_bench::{emit, f3, run_grid, GridCell};
use cello_core::accel::CelloConfig;
use cello_sim::baselines::ConfigKind;
use cello_workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello_workloads::datasets::{CORA, FV1, NASA4704, PROTEIN, SHALLOW_WATER1};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};

fn main() {
    let accel = CelloConfig::paper();
    let configs = ConfigKind::main_set();
    let mut cells = Vec::new();
    for d in [CORA, PROTEIN] {
        cells.push(GridCell {
            label: format!("GNN {}", d.name),
            dag: build_gcn_dag(&GcnParams::from_dataset(&d, 1)),
            accel,
        });
    }
    for d in [NASA4704, FV1, SHALLOW_WATER1] {
        cells.push(GridCell {
            label: format!("BiCGStab {} N=1", d.name),
            dag: build_bicgstab_dag(&BicgParams::from_dataset(&d, 1, 10)),
            accel,
        });
    }
    let reports = run_grid(&cells, &configs);
    let mut rows = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        for (ki, kind) in configs.iter().enumerate() {
            let r = &reports[ci * configs.len() + ki];
            rows.push(vec![
                cell.label.clone(),
                kind.label().to_string(),
                f3(r.gfpmuls_per_sec()),
                r.dram_bytes.to_string(),
                f3(r.achieved_intensity()),
            ]);
        }
    }
    emit(
        "fig13_gnn_bicgstab",
        "Fig 13: GNN and BiCGStab performance (GigaFPMuls/s, higher is better)",
        &[
            "workload",
            "config",
            "GFPMuls/s",
            "DRAM bytes",
            "achieved ops/B",
        ],
        &rows,
    );

    // The qualitative checks the paper calls out.
    for (ci, cell) in cells.iter().enumerate() {
        let slice = &reports[ci * configs.len()..(ci + 1) * configs.len()];
        let get = |name: &str| slice.iter().find(|r| r.config == name).unwrap();
        if cell.label.starts_with("GNN") {
            let (flat, cello) = (get("FLAT"), get("CELLO"));
            println!(
                "{}: CELLO/FLAT DRAM ratio = {} (paper: equal)",
                cell.label,
                f3(cello.dram_bytes as f64 / flat.dram_bytes as f64)
            );
        } else {
            let (flex, cello) = (get("Flexagon"), get("CELLO"));
            println!(
                "{}: CELLO speedup over Flexagon = {}x",
                cell.label,
                f3(cello.speedup_over(flex))
            );
        }
    }
}

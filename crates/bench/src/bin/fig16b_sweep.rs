//! Fig 16(b) (E14): sensitivity of CELLO to CHORD capacity — SRAM swept over
//! {1, 4, 16} MB on shallow_water1, N ∈ {1, 16}. Expected shape: for N=16
//! (5.2 MB tensors) performance grows with capacity; for N=1 (328 KB tensors)
//! 4 MB is already sufficient and the curve is flat from there.

use cello_bench::{cg_cell, emit, f3, run_grid};
use cello_core::accel::CelloConfig;
use cello_sim::baselines::ConfigKind;
use cello_workloads::datasets::SHALLOW_WATER1;

fn main() {
    let configs = vec![ConfigKind::Cello];
    let mut cells = Vec::new();
    for n in [1u64, 16] {
        for mb in [1u64, 4, 16] {
            let accel = CelloConfig::paper().with_sram_bytes(mb << 20);
            cells.push(cg_cell(
                &SHALLOW_WATER1,
                n,
                10,
                accel,
                &format!(" SRAM={mb}MB"),
            ));
        }
    }
    let reports = run_grid(&cells, &configs);
    let mut rows = Vec::new();
    for (cell, r) in cells.iter().zip(&reports) {
        rows.push(vec![
            cell.label.clone(),
            f3(r.gfpmuls_per_sec()),
            r.dram_bytes.to_string(),
            f3(r.stats.hit_rate()),
        ]);
    }
    emit(
        "fig16b_sweep",
        "Fig 16(b): CELLO vs CHORD capacity (shallow_water1, 10 CG iterations)",
        &["workload", "GFPMuls/s", "DRAM bytes", "CHORD hit rate"],
        &rows,
    );
    // Shape check: N=16 should improve monotonically with capacity.
    let n16: Vec<f64> = cells
        .iter()
        .zip(&reports)
        .filter(|(c, _)| c.label.contains("N=16"))
        .map(|(_, r)| r.gfpmuls_per_sec())
        .collect();
    println!(
        "N=16 throughput across 1/4/16 MB: {} -> {} -> {} (paper: increasing)",
        f3(n16[0]),
        f3(n16[1]),
        f3(n16[2])
    );
}

//! Fig 15 (E12): area (mm²) and per-access energy (pJ) of 4 MB buffer
//! structures. Paper values: buffet 6.72 mm², cache 9.87 mm² (data 6.59 +
//! tag 1.85), CHORD 6.74 mm²; cache energy ≈ 2× explicit because tag energy
//! is comparable to data energy.

use cello_bench::{emit, f3};
use cello_mem::model::{AreaEnergyModel, BufferKind};

fn main() {
    let m = AreaEnergyModel::default();
    let four_mb = 4u64 << 20;
    let kinds = [
        (BufferKind::Buffet, "Buffet"),
        (BufferKind::Cache, "Cache (8-way)"),
        (BufferKind::Chord, "CHORD"),
        (BufferKind::Scratchpad, "Scratchpad"),
    ];
    let mut arows = Vec::new();
    let mut erows = Vec::new();
    for (kind, name) in kinds {
        let a = m.area_breakdown(kind, four_mb);
        arows.push(vec![
            name.to_string(),
            f3(a.data),
            f3(a.tag),
            f3(a.controller),
            f3(a.total()),
        ]);
        let e = m.energy_breakdown(kind, four_mb);
        erows.push(vec![
            name.to_string(),
            f3(e.data),
            f3(e.tag),
            f3(e.controller),
            f3(e.total()),
        ]);
    }
    emit(
        "fig15_area",
        "Fig 15(a): 4 MB buffer area (mm²) — paper: buffet 6.72, cache 9.87, CHORD 6.74",
        &["structure", "data", "tag/metadata", "controller", "total"],
        &arows,
    );
    emit(
        "fig15_energy",
        "Fig 15(b): per-access energy (pJ, one 16 B access)",
        &["structure", "data", "tag/metadata", "controller", "total"],
        &erows,
    );
    println!(
        "RIFF table: {} bits total ({}x smaller than the cache tag array's {} bits)",
        m.chord_metadata_bits(),
        m.cache_tag_bits_4mb() / m.chord_metadata_bits(),
        m.cache_tag_bits_4mb(),
    );
}

//! `cost_model_fit` — calibrate/validate the tier-1 analytic surrogate
//! against the exact simulator.
//!
//! For CG (two datasets), HPCG, and GCN, across node counts {1, 4, 16},
//! this samples seeded-random candidates from the **widened** co-design
//! space including the per-phase SRAM-repartition dimension
//! (`SpaceConfig::widened_with_nodes(..).with_repartition(..)` — the
//! Spearman ≥ 0.8 gate covers per-phase-split candidates, resize traffic
//! and all), scores each with both `cello_search::surrogate_cost` and
//! `cello_sim::evaluate`, and reports:
//!
//! - Spearman rank correlation per objective (cycles, DRAM bytes, total
//!   traffic, energy) — the number that decides whether the prefilter's
//!   tier-1 ranking can be trusted;
//! - the median multiplicative error of the traffic estimate (calibration:
//!   the surrogate aims for rank fidelity, but a drifting scale factor is
//!   an early warning that the closed-form CHORD split diverged from the
//!   RIFF machinery);
//! - the speedup of the surrogate over the simulator on the same batch.
//!
//! Output: `results/cost_model_fit.tsv` plus the stdout table. The CI gate
//! consumes the equivalent correlation from `cello_dse --quick`
//! (`BENCH_dse.json`); this binary is the wider offline fit.
//!
//! Usage: `cargo run --release --bin cost_model_fit [-- --samples 48]`

use cello_bench::{emit, f3};
use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use cello_search::{spearman, surrogate_cost, SearchSpace, SpaceConfig};
use cello_sim::evaluate::{evaluate_schedule, CostEstimate};
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::{CORA, G2_CIRCUIT, SHALLOW_WATER1};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};
use cello_workloads::hpcg::{build_hpcg_dag, HpcgParams};
use rayon::prelude::*;

const SEED: u64 = 0xF17;

fn parse_samples() -> usize {
    let mut samples = 48usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--samples" => {
                samples = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--samples needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: cost_model_fit [--samples 48]");
                std::process::exit(2);
            }
        }
    }
    samples.max(4)
}

/// Seeded-random schedules from the widened space (the `Strategy::Random`
/// stream via `SearchSpace::sample_assignments`).
fn sample_costs(
    dag: &TensorDag,
    accel: &CelloConfig,
    cfg: &SpaceConfig,
    samples: usize,
) -> (Vec<CostEstimate>, Vec<CostEstimate>, f64, f64) {
    let space = SearchSpace::from_dag(dag, cfg);
    let schedules: Vec<_> = space
        .sample_assignments(samples, SEED)
        .iter()
        .map(|picks| space.assemble(picks).build(dag))
        .collect();
    let t0 = std::time::Instant::now();
    let est: Vec<CostEstimate> = schedules
        .par_iter()
        .map(|s| surrogate_cost(dag, s, accel))
        .collect();
    let t_est = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let sim: Vec<CostEstimate> = schedules
        .par_iter()
        .map(|s| evaluate_schedule(dag, s, accel))
        .collect();
    let t_sim = t1.elapsed().as_secs_f64();
    (est, sim, t_est, t_sim)
}

fn main() {
    let samples = parse_samples();
    let accel = CelloConfig::paper();
    let grids: Vec<(&str, TensorDag)> = vec![
        (
            "cg/G2_circuit",
            build_cg_dag(&CgParams::from_dataset(&G2_CIRCUIT, 16, 5)),
        ),
        (
            "cg/shallow_w1",
            build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 5)),
        ),
        (
            "hpcg/nx48",
            build_hpcg_dag(&HpcgParams {
                nx: 48,
                n: 16,
                iterations: 4,
            }),
        ),
        (
            "gcn/cora",
            build_gcn_dag(&GcnParams::from_dataset(&CORA, 2)),
        ),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut worst_traffic_rho = f64::INFINITY;
    for (name, dag) in &grids {
        for nodes in [vec![1u64], vec![1, 4], vec![1, 4, 16]] {
            let mesh = *nodes.iter().max().unwrap();
            let cfg = SpaceConfig::widened_with_nodes(&nodes).with_repartition(accel.sram_words());
            let (est, sim, t_est, t_sim) = sample_costs(dag, &accel, &cfg, samples);
            let pull = |f: fn(&CostEstimate) -> u64, v: &[CostEstimate]| -> Vec<u64> {
                v.iter().map(f).collect()
            };
            let rho_cycles = spearman(&pull(|c| c.cycles, &est), &pull(|c| c.cycles, &sim));
            let rho_dram = spearman(&pull(|c| c.dram_bytes, &est), &pull(|c| c.dram_bytes, &sim));
            let rho_traffic = spearman(
                &pull(|c| c.total_traffic_bytes(), &est),
                &pull(|c| c.total_traffic_bytes(), &sim),
            );
            let rho_energy = spearman(
                &est.iter().map(|c| c.energy_pj as u64).collect::<Vec<_>>(),
                &sim.iter().map(|c| c.energy_pj as u64).collect::<Vec<_>>(),
            );
            // Median multiplicative traffic error (scale calibration).
            let mut ratios: Vec<f64> = est
                .iter()
                .zip(&sim)
                .map(|(e, s)| {
                    e.total_traffic_bytes() as f64 / s.total_traffic_bytes().max(1) as f64
                })
                .collect();
            ratios.sort_by(|a, b| a.total_cmp(b));
            let median_ratio = ratios[ratios.len() / 2];
            worst_traffic_rho = worst_traffic_rho.min(rho_traffic);
            rows.push(vec![
                name.to_string(),
                mesh.to_string(),
                samples.to_string(),
                f3(rho_traffic),
                f3(rho_cycles),
                f3(rho_dram),
                f3(rho_energy),
                f3(median_ratio),
                f3(t_sim / t_est.max(1e-12)),
            ]);
        }
    }
    emit(
        "cost_model_fit",
        "cost_model_fit: surrogate vs simulator (Spearman rank correlation)",
        &[
            "workload",
            "mesh",
            "samples",
            "rho_traffic",
            "rho_cycles",
            "rho_dram",
            "rho_energy",
            "med_ratio",
            "speedup",
        ],
        &rows,
    );
    println!("worst traffic rank correlation: {}", f3(worst_traffic_rho));
    // The prefilter contract: below this the two-tier pipeline would prune
    // schedules the exact tier would have kept.
    assert!(
        worst_traffic_rho >= 0.8,
        "surrogate rank correlation degraded below 0.8"
    );
}

//! `cello_run` — command-line driver: simulate any workload × configuration
//! × accelerator combination and print a full report.
//!
//! ```sh
//! cargo run --release -p cello-bench --bin cello_run -- \
//!     --workload cg --dataset shallow_water1 --n 16 --iterations 10 \
//!     --config cello --bandwidth 1tb --sram-mb 4
//! ```
//!
//! `--trace-out trace.json` additionally writes a Chrome trace-event file
//! (one model-time span tree per simulated config, phases as children) —
//! open it in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`
//! for the phase-level flame view.
//!
//! `--report-out reports.json` writes the full [`RunReport`]s (per-phase
//! cycle/DRAM/CHORD vectors included) as a document `cello_explain` can
//! diff — capture one before and one after a change, then attribute the
//! delta per phase and per cost axis.
//!
//! [`RunReport`]: cello_sim::report::RunReport

use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use cello_graph::metrics::metrics;
use cello_sim::baselines::{run_config, ConfigKind};
use cello_workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::{registry, Dataset};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};
use cello_workloads::power_iter::{build_power_iter_dag, PowerIterParams};
use cello_workloads::resnet::{build_resnet_stage_dag, ResNetBlockParams};
use std::collections::BTreeMap;
use std::process::exit;

const USAGE: &str = "\
cello_run — CELLO accelerator simulator driver

USAGE:
    cello_run [--workload cg|bicgstab|gcn|resnet|power]
              [--dataset fv1|shallow_water1|G2_circuit|NASA4704|cora|protein]
              [--config cello|flexagon|flex-lru|flex-brrip|flat|set|prelude|all]
              [--n <block width, default 16>]
              [--iterations <default 10>]
              [--blocks <resnet blocks, default 1>]
              [--bandwidth 1tb|250gb]
              [--sram-mb <default 4>]
              [--trace-out <chrome-trace JSON file>]
              [--report-out <full-report JSON file for cello_explain>]
              [--help]
";

fn parse_args() -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--help" || a == "-h" {
            println!("{USAGE}");
            exit(0);
        }
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}\n{USAGE}");
            exit(2);
        };
        let Some(value) = args.next() else {
            eprintln!("missing value for --{key}\n{USAGE}");
            exit(2);
        };
        out.insert(key.to_string(), value);
    }
    out
}

fn find_dataset(name: &str) -> Dataset {
    registry()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown dataset {name:?}; known: fv1, shallow_water1, G2_circuit, NASA4704, cora, protein");
            exit(2);
        })
}

fn parse_config(name: &str) -> Vec<ConfigKind> {
    match name.to_ascii_lowercase().as_str() {
        "cello" => vec![ConfigKind::Cello],
        "flexagon" => vec![ConfigKind::Flexagon],
        "flex-lru" => vec![ConfigKind::FlexLru],
        "flex-brrip" => vec![ConfigKind::FlexBrrip],
        "flat" => vec![ConfigKind::Flat],
        "set" => vec![ConfigKind::SetLike],
        "prelude" => vec![ConfigKind::PreludeOnly],
        "all" => ConfigKind::all(),
        other => {
            eprintln!("unknown config {other:?}\n{USAGE}");
            exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let get = |k: &str, default: &str| args.get(k).cloned().unwrap_or_else(|| default.to_string());

    let workload = get("workload", "cg");
    let dataset_name = get("dataset", "shallow_water1");
    let n: u64 = get("n", "16").parse().expect("--n must be an integer");
    let iterations: u32 = get("iterations", "10").parse().expect("--iterations");
    let blocks: u32 = get("blocks", "1").parse().expect("--blocks");
    let sram_mb: u64 = get("sram-mb", "4").parse().expect("--sram-mb");
    let trace_out = args.get("trace-out").cloned();
    let report_out = args.get("report-out").cloned();
    let configs = parse_config(&get("config", "all"));

    let mut accel = match get("bandwidth", "1tb").to_ascii_lowercase().as_str() {
        "1tb" => CelloConfig::paper(),
        "250gb" => CelloConfig::paper_250gbs(),
        other => {
            eprintln!("unknown bandwidth {other:?} (use 1tb or 250gb)");
            exit(2);
        }
    }
    .with_sram_bytes(sram_mb << 20);

    let dag: TensorDag = match workload.as_str() {
        "cg" => build_cg_dag(&CgParams::from_dataset(
            &find_dataset(&dataset_name),
            n,
            iterations,
        )),
        "bicgstab" => build_bicgstab_dag(&BicgParams::from_dataset(
            &find_dataset(&dataset_name),
            n,
            iterations,
        )),
        "gcn" => build_gcn_dag(&GcnParams::from_dataset(&find_dataset(&dataset_name), 1)),
        "resnet" => {
            accel = accel.with_word_bytes(2); // Table VII
            build_resnet_stage_dag(&ResNetBlockParams::conv3x(), blocks)
        }
        "power" => build_power_iter_dag(&PowerIterParams::from_dataset(
            &find_dataset(&dataset_name),
            iterations,
        )),
        other => {
            eprintln!("unknown workload {other:?}\n{USAGE}");
            exit(2);
        }
    };

    let m = metrics(&dag);
    println!(
        "workload: {workload} ({dataset_name}) — {} ops, {} edges ({} transitive), depth {}, \
         {:.1} MMACs, {:.1} MB intermediates",
        m.nodes,
        m.edges,
        m.transitive_edges,
        m.depth,
        m.total_macs as f64 / 1e6,
        m.intermediate_words as f64 * accel.word_bytes as f64 / 1e6,
    );
    println!(
        "accelerator: {} PEs @ {:.1} GHz, {} MB SRAM, {:.0} GB/s, {}-byte words\n",
        accel.pe_count,
        accel.freq_hz / 1e9,
        accel.sram_bytes >> 20,
        accel.dram.bandwidth_bytes_per_sec / 1e9,
        accel.word_bytes,
    );
    println!(
        "{:<14}{:>12}{:>14}{:>14}{:>12}{:>12}",
        "config", "GFPMuls/s", "DRAM MB", "energy µJ", "ops/B", "time µs"
    );
    let mut spans = Vec::new();
    let mut reports = Vec::new();
    for kind in configs {
        let r = run_config(&dag, kind, &accel, &workload);
        println!(
            "{:<14}{:>12.1}{:>14.2}{:>14.2}{:>12.2}{:>12.2}",
            kind.label(),
            r.gfpmuls_per_sec(),
            r.dram_bytes as f64 / 1e6,
            r.offchip_energy_pj / 1e6,
            r.achieved_intensity(),
            r.seconds * 1e6,
        );
        if trace_out.is_some() {
            spans.push(cello_sim::obs::report_span(&r, &accel));
        }
        if report_out.is_some() {
            reports.push(r);
        }
    }
    if let Some(path) = trace_out {
        let trace = cello_obs::chrome::chrome_trace(&spans);
        match std::fs::write(&path, trace) {
            Ok(()) => println!(
                "\n[trace] wrote {} span tree(s) to {path} — open in https://ui.perfetto.dev",
                spans.len()
            ),
            Err(e) => {
                eprintln!("cello_run: cannot write {path}: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = report_out {
        let doc = cello_bench::explain::reports_doc(
            &format!("cello_run --workload {workload} --dataset {dataset_name}"),
            &reports,
        );
        match std::fs::write(&path, doc.render()) {
            Ok(()) => println!(
                "\n[report] wrote {} full report(s) to {path} — diff with cello_explain",
                reports.len()
            ),
            Err(e) => {
                eprintln!("cello_run: cannot write {path}: {e}");
                exit(1);
            }
        }
    }
}

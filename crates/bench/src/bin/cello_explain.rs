//! `cello_explain` — attribute a cycle/DRAM delta between two runs.
//!
//! Takes two JSON artifacts (before, after) and prints the ranked
//! attribution table from [`cello_bench::explain`]. Accepted shapes, both
//! sides detected independently but required to match in kind:
//!
//! - a **report document** from `cello_run --report-out` (`{schema,
//!   reports: [...]}`), or a bare serialized report — diffed per phase and
//!   per cost axis (compute, exposed transfer, NoC/serialization,
//!   DRAM read/write/spill-tail), the exact decomposition;
//! - a **record document** (`BENCH_dse.json` / `results/
//!   bench_baseline.json`, `{workloads: [...]}`) — diffed field by field,
//!   ranked by relative change (records carry totals, not phases).
//!
//! ```sh
//! cello_run --config cello --report-out before.json
//! # ...change something...
//! cello_run --config cello --report-out after.json
//! cello_explain before.json after.json
//!
//! cello_explain --record cg/G2_circuit --nodes 1 \
//!     results/bench_baseline.json BENCH_dse.json
//! ```
//!
//! With a report document holding several configs, `--pick <config>`
//! selects one (exact match on the config label); a single-report document
//! needs no selector.

use cello_bench::explain;
use cello_bench::json::Json;
use cello_sim::report::RunReport;
use std::process::exit;

const USAGE: &str = "\
cello_explain — regression attribution between two runs

USAGE:
    cello_explain [--pick <config>] <before.json> <after.json>
    cello_explain --record <name> [--nodes <n>] <before.json> <after.json>

    <before/after.json>  report documents (cello_run --report-out), bare
                         reports, or record documents (BENCH_dse.json shape)
    --pick <config>      config label to select from a multi-report document
    --record <name>      record name to diff from {workloads: [...]} documents
    --nodes <n>          record node count (default 1)
    --top <k>            rows per attribution section (default 12)
";

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cello_explain: cannot read {path}: {e}");
        exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cello_explain: {path} is not valid JSON: {e}");
        exit(1);
    })
}

/// Pulls one report out of a document: bare report, or `reports` array
/// filtered by `--pick`.
fn select_report(path: &str, doc: &Json, pick: Option<&str>) -> RunReport {
    if doc.get("phase_total_cycles").is_some() {
        return explain::report_from_json(doc).unwrap_or_else(|e| {
            eprintln!("cello_explain: {path}: {e}");
            exit(1);
        });
    }
    let Some(reports) = doc.get("reports").and_then(Json::as_array) else {
        eprintln!("cello_explain: {path} has neither \"phase_total_cycles\" nor \"reports\"");
        exit(1);
    };
    let matching: Vec<&Json> = reports
        .iter()
        .filter(|r| match pick {
            Some(label) => r.get("config").and_then(Json::as_str) == Some(label),
            None => true,
        })
        .collect();
    let chosen = match matching.as_slice() {
        [one] => one,
        [] => {
            eprintln!(
                "cello_explain: {path}: no report matches --pick {:?} (configs: {})",
                pick.unwrap_or("<none>"),
                reports
                    .iter()
                    .filter_map(|r| r.get("config").and_then(Json::as_str))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            exit(1);
        }
        many => {
            eprintln!(
                "cello_explain: {path} holds {} reports — select one with --pick (configs: {})",
                many.len(),
                many.iter()
                    .filter_map(|r| r.get("config").and_then(Json::as_str))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            exit(1);
        }
    };
    explain::report_from_json(chosen).unwrap_or_else(|e| {
        eprintln!("cello_explain: {path}: {e}");
        exit(1);
    })
}

/// Pulls one flat record's numeric fields out of a `{workloads: [...]}`
/// document.
fn select_record(path: &str, doc: &Json, name: &str, nodes: u64) -> Vec<(String, f64)> {
    let Some(workloads) = doc.get("workloads").and_then(Json::as_array) else {
        eprintln!("cello_explain: {path} has no \"workloads\" array (record mode)");
        exit(1);
    };
    let found = workloads.iter().find(|w| {
        w.get("name").and_then(Json::as_str) == Some(name)
            && w.get("nodes").and_then(Json::as_f64) == Some(nodes as f64)
    });
    let Some(Json::Obj(members)) = found else {
        eprintln!(
            "cello_explain: {path}: no record {name:?}@{nodes}n (records: {})",
            workloads
                .iter()
                .filter_map(|w| w.get("name").and_then(Json::as_str))
                .collect::<Vec<_>>()
                .join(", ")
        );
        exit(1);
    };
    members
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
        .collect()
}

fn main() {
    let mut pick: Option<String> = None;
    let mut record: Option<String> = None;
    let mut nodes: u64 = 1;
    let mut top: usize = 12;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}\n{USAGE}");
                exit(2);
            })
        };
        match a.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            "--pick" => pick = Some(value("--pick")),
            "--record" => record = Some(value("--record")),
            "--nodes" => {
                nodes = value("--nodes").parse().unwrap_or_else(|_| {
                    eprintln!("--nodes must be an integer\n{USAGE}");
                    exit(2);
                })
            }
            "--top" => {
                top = value("--top").parse().unwrap_or_else(|_| {
                    eprintln!("--top must be an integer\n{USAGE}");
                    exit(2);
                })
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                exit(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    let [before_path, after_path] = paths.as_slice() else {
        eprintln!("expected exactly two paths (before, after)\n{USAGE}");
        exit(2);
    };
    let before_doc = read_json(before_path);
    let after_doc = read_json(after_path);

    if let Some(name) = record {
        let before = select_record(before_path, &before_doc, &name, nodes);
        let after = select_record(after_path, &after_doc, &name, nodes);
        let rows = explain::rank_field_deltas(&before, &after);
        print!(
            "{}",
            explain::render_field_table(&format!("{name}@{nodes}n"), &rows)
        );
        return;
    }
    let before = select_report(before_path, &before_doc, pick.as_deref());
    let after = select_report(after_path, &after_doc, pick.as_deref());
    let e = explain::diff_reports(&before, &after);
    print!("{}", e.render(top));
    let (axis, delta) = e.dominant_cycle_axis();
    if delta != 0 {
        println!("dominant cycle axis: {axis} ({delta:+} cycles)");
    }
}

//! Fig 14 (E11): off-chip energy relative to BestIntra+Exp, geomeaned within
//! each workload family (lower is better). Paper: CELLO is lowest everywhere,
//! 64–83% reduction, 4× geomean.

use cello_bench::{cg_cell, emit, f3, run_grid, GridCell};
use cello_core::accel::CelloConfig;
use cello_sim::baselines::ConfigKind;
use cello_sim::report::geomean;
use cello_workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello_workloads::datasets::{cg_datasets, CORA, FV1, NASA4704, PROTEIN, SHALLOW_WATER1};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};
use std::collections::BTreeMap;

fn main() {
    let accel = CelloConfig::paper();
    let configs = ConfigKind::main_set();

    // Workload family -> cells.
    let mut families: Vec<(&str, Vec<GridCell>)> = Vec::new();
    let mut cg_cells = Vec::new();
    for d in cg_datasets() {
        for n in [1u64, 16] {
            cg_cells.push(cg_cell(&d, n, 10, accel, ""));
        }
    }
    families.push(("CG (PDE solvers)", cg_cells));
    families.push((
        "BiCGStab (PDE solvers)",
        [NASA4704, FV1, SHALLOW_WATER1]
            .iter()
            .map(|d| GridCell {
                label: format!("bicg {}", d.name),
                dag: build_bicgstab_dag(&BicgParams::from_dataset(d, 1, 10)),
                accel,
            })
            .collect(),
    ));
    families.push((
        "GNN",
        [CORA, PROTEIN]
            .iter()
            .map(|d| GridCell {
                label: format!("gnn {}", d.name),
                dag: build_gcn_dag(&GcnParams::from_dataset(d, 1)),
                accel,
            })
            .collect(),
    ));

    let mut rows = Vec::new();
    for (family, cells) in &families {
        let reports = run_grid(cells, &configs);
        // relative energy per config, geomeaned across the family's cells.
        let mut rel: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for ci in 0..cells.len() {
            let slice = &reports[ci * configs.len()..(ci + 1) * configs.len()];
            let base = slice.iter().find(|r| r.config == "Flexagon").unwrap();
            for r in slice {
                rel.entry(Box::leak(r.config.clone().into_boxed_str()))
                    .or_default()
                    .push(r.relative_energy(base));
            }
        }
        for kind in &configs {
            let vals = &rel[kind.label()];
            rows.push(vec![
                family.to_string(),
                kind.label().to_string(),
                f3(geomean(vals)),
            ]);
        }
    }
    emit(
        "fig14_energy",
        "Fig 14: off-chip energy relative to BestIntra+Exp (geomean per family, lower is better)",
        &["workload family", "config", "relative off-chip energy"],
        &rows,
    );

    let cello_rows: Vec<f64> = rows
        .iter()
        .filter(|r| r[1] == "CELLO")
        .map(|r| r[2].parse::<f64>().unwrap())
        .collect();
    let g = geomean(&cello_rows);
    println!(
        "CELLO geomean relative energy = {} (reduction {}%; paper reports 64–83% per family, ~4x geomean)",
        f3(g),
        f3((1.0 - g) * 100.0)
    );
}

//! `bench_check` — the CI perf-regression gate over the bench trajectory.
//!
//! Compares the `BENCH_dse.json` a fresh `cello_dse --quick` run just wrote
//! against the committed `results/bench_baseline.json` and fails (exit 1)
//! when, for any `(workload, nodes)` record present in both:
//!
//! - tuned cycles regressed by more than 10%,
//! - tuned total traffic (DRAM + NoC hop-bytes) regressed by more than 10%,
//! - or the surrogate's rank correlation fell below 0.9.
//!
//! Improvements and new workloads pass (with a note) — the gate guards
//! against silent regressions, not against progress. Machine-dependent
//! fields (`candidates_per_sec`) are reported but never gated.
//!
//! To refresh the baseline after an intentional model change:
//! `cargo run --release --bin cello_dse -- --nodes 4 --quick &&
//! cp BENCH_dse.json results/bench_baseline.json` (and commit the diff with
//! the reason).
//!
//! Usage: `bench_check [current.json] [baseline.json]` (defaults:
//! `BENCH_dse.json`, `results/bench_baseline.json`).

use cello_bench::json::Json;

/// Allowed relative regression on cycles and traffic.
const TOLERANCE: f64 = 0.10;
/// Floor on the surrogate's rank correlation.
const MIN_CORRELATION: f64 = 0.9;

struct Record {
    name: String,
    nodes: u64,
    cycles: f64,
    traffic: f64,
    correlation: f64,
    candidates_per_sec: f64,
}

fn load(path: &str) -> Vec<Record> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let workloads = doc
        .get("workloads")
        .and_then(|w| w.as_array())
        .unwrap_or_else(|| {
            eprintln!("bench_check: {path} has no \"workloads\" array");
            std::process::exit(1);
        });
    workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            // Name the record in every complaint: "cg/G2_circuit@4n"
            // beats "record 3" when a field is missing or mistyped.
            let name = w
                .get("name")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            let who = match w.get("nodes").and_then(|v| v.as_f64()) {
                Some(n) => format!("{name}@{n}n"),
                None => format!("{name} (record {i})"),
            };
            let field = |key: &str| -> f64 {
                w.get(key).and_then(|v| v.as_f64()).unwrap_or_else(|| {
                    eprintln!("bench_check: {path}: {who} missing numeric {key:?}");
                    std::process::exit(1);
                })
            };
            Record {
                name,
                nodes: field("nodes") as u64,
                cycles: field("tuned_cycles"),
                traffic: field("tuned_traffic_bytes"),
                correlation: field("rank_correlation"),
                candidates_per_sec: field("candidates_per_sec"),
            }
        })
        .collect()
}

/// `name@Nn` labels of a record set, sorted — the two sides of the coverage
/// diff.
fn record_keys(records: &[Record]) -> Vec<String> {
    let mut keys: Vec<String> = records
        .iter()
        .map(|r| format!("{}@{}n", r.name, r.nodes))
        .collect();
    keys.sort();
    keys
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current_path = args.first().map(String::as_str).unwrap_or("BENCH_dse.json");
    let baseline_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("results/bench_baseline.json");
    let current = load(current_path);
    let baseline = load(baseline_path);

    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;
    println!("== bench_check: {current_path} vs {baseline_path} ==");
    for cur in &current {
        let label = format!("{}@{}n", cur.name, cur.nodes);
        if cur.correlation < MIN_CORRELATION {
            failures.push(format!(
                "{label}: rank correlation {:.3} < {MIN_CORRELATION}",
                cur.correlation
            ));
        }
        let Some(base) = baseline
            .iter()
            .find(|b| b.name == cur.name && b.nodes == cur.nodes)
        else {
            println!("  {label}: no baseline (new workload) — skipped");
            continue;
        };
        compared += 1;
        let cycle_ratio = cur.cycles / base.cycles.max(1.0);
        let traffic_ratio = cur.traffic / base.traffic.max(1.0);
        println!(
            "  {label}: cycles {:.0} ({cycle_ratio:.3}x), traffic {:.0} B ({traffic_ratio:.3}x), corr {:.3}, {:.0} cand/s",
            cur.cycles, cur.traffic, cur.correlation, cur.candidates_per_sec,
        );
        if cycle_ratio > 1.0 + TOLERANCE {
            failures.push(format!(
                "{label}: cycles regressed {cycle_ratio:.3}x (> {:.2}x)",
                1.0 + TOLERANCE
            ));
        }
        if traffic_ratio > 1.0 + TOLERANCE {
            failures.push(format!(
                "{label}: traffic regressed {traffic_ratio:.3}x (> {:.2}x)",
                1.0 + TOLERANCE
            ));
        }
    }
    // Coverage is part of the contract: a baseline record with no current
    // counterpart means a workload silently fell out of the trajectory —
    // exactly the kind of regression this gate exists to catch. Removing a
    // workload intentionally requires refreshing the baseline. The failure
    // is a named-record diff, so the missing workload is identifiable
    // without opening either JSON file.
    let missing: Vec<String> = baseline
        .iter()
        .filter(|b| {
            !current
                .iter()
                .any(|c| c.name == b.name && c.nodes == b.nodes)
        })
        .map(|b| format!("{}@{}n", b.name, b.nodes))
        .collect();
    if !missing.is_empty() {
        failures.push(format!(
            "baseline records missing from current run: [{}]\n    current has:  [{}]\n    baseline has: [{}]",
            missing.join(", "),
            record_keys(&current).join(", "),
            record_keys(&baseline).join(", "),
        ));
    }
    if compared == 0 {
        failures.push("no (workload, nodes) records matched the baseline".into());
    }
    if failures.is_empty() {
        println!("bench_check OK: {compared} records within tolerance");
    } else {
        eprintln!("bench_check FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

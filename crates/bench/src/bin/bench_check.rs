//! `bench_check` — the CI perf-regression gate over the bench trajectories.
//!
//! Compares freshly-written trajectory files (`BENCH_dse.json` from
//! `cello_dse --quick`, `BENCH_serve.json` from `loadgen --quick`) against
//! the committed `results/bench_baseline.json` and fails (exit 1) when any
//! record regresses. Records are field-generic — each `(workload, nodes)`
//! record is gated only on the fields it actually carries:
//!
//! | field | gate |
//! |---|---|
//! | `rank_correlation` | absolute floor 0.9 |
//! | `failed` | absolute: must be 0 |
//! | `tuned_cycles` | ≤ 1.10× its baseline value |
//! | `tuned_traffic_bytes` | ≤ 1.10× its baseline value |
//! | `hit_rate` | ≥ baseline − 0.10 (absolute drop) |
//! | `candidates_seen` | ≥ 0.50× its baseline value |
//! | `candidates_per_sec` | ≥ 0.25× its baseline value |
//!
//! The two candidate-throughput floors guard the tier-0 funnel's reason to
//! exist: `candidates_seen` is machine-independent (a deterministic sweep
//! can only shrink if someone narrows the funnel), so its floor is tight;
//! `candidates_per_sec` is machine-dependent, so its floor is loose — it
//! only trips on an asymptotic regression (e.g. a per-candidate allocation
//! sneaking back into the sketch loop), not on a slow CI runner.
//!
//! Everything else (latency percentiles, throughput, `hit_speedup`) is
//! machine-dependent: reported, never gated — the *machine-independent*
//! serving bar (zero failures, ≥ 50% hit rate, ≥ 100× hit speedup) is
//! enforced by `loadgen --quick` itself.
//!
//! Coverage is part of the contract, scoped per workload family: a baseline
//! record whose name family (the prefix before `/`) appears in the current
//! run but which itself has no current counterpart means a workload
//! silently fell out of that trajectory — a failure. Families absent from
//! the current run entirely are ignored, so the DSE gate and the serve gate
//! can run in separate CI jobs against the one committed baseline.
//!
//! When a record trips a gate, the failure names the symptom; the
//! attribution table printed alongside it (via [`cello_bench::explain`])
//! names the cause — every numeric field the record shares with its
//! baseline, ranked by relative change, so a cycles regression shows up
//! next to the traffic/eval/correlation fields that moved with it. For the
//! per-phase, per-axis view, capture full reports with `cello_run
//! --report-out` and diff them with `cello_explain`.
//!
//! To refresh the baseline after an intentional change: re-run the quick
//! trajectories and merge their `workloads` arrays into
//! `results/bench_baseline.json` (commit the diff with the reason).
//!
//! Usage: `bench_check [current.json ...] [baseline.json]` — the last path
//! is the baseline; earlier ones are current trajectories (defaults:
//! `BENCH_dse.json` plus `BENCH_serve.json` when present, vs
//! `results/bench_baseline.json`).

use cello_bench::json::Json;

/// Allowed relative regression on cycles and traffic.
const TOLERANCE: f64 = 0.10;
/// Floor on the surrogate's rank correlation.
const MIN_CORRELATION: f64 = 0.9;
/// Allowed absolute drop in cache hit rate.
const HIT_RATE_DROP: f64 = 0.10;
/// Floor on candidates considered, relative to baseline (deterministic).
const SEEN_FLOOR: f64 = 0.50;
/// Floor on candidate throughput, relative to baseline (machine-dependent,
/// so deliberately loose: catches asymptotic regressions only).
const THROUGHPUT_FLOOR: f64 = 0.25;

struct Record {
    name: String,
    nodes: u64,
    fields: Vec<(String, f64)>,
}

impl Record {
    fn label(&self) -> String {
        format!("{}@{}n", self.name, self.nodes)
    }

    fn field(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Workload family: the name prefix before the first `/`.
    fn family(&self) -> &str {
        self.name.split('/').next().unwrap_or(&self.name)
    }
}

fn load(path: &str) -> Vec<Record> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let workloads = doc
        .get("workloads")
        .and_then(|w| w.as_array())
        .unwrap_or_else(|| {
            eprintln!("bench_check: {path} has no \"workloads\" array");
            std::process::exit(1);
        });
    workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let name = w
                .get("name")
                .and_then(|v| v.as_str())
                .unwrap_or_else(|| {
                    eprintln!("bench_check: {path}: record {i} has no name");
                    std::process::exit(1);
                })
                .to_string();
            let nodes = w.get("nodes").and_then(|v| v.as_f64()).unwrap_or_else(|| {
                eprintln!("bench_check: {path}: {name} (record {i}) missing numeric \"nodes\"");
                std::process::exit(1);
            }) as u64;
            let fields = match w {
                Json::Obj(members) => members
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                    .collect(),
                _ => Vec::new(),
            };
            Record {
                name,
                nodes,
                fields,
            }
        })
        .collect()
}

/// `name@Nn` labels of a record set, sorted — the two sides of the coverage
/// diff.
fn record_keys(records: &[Record]) -> Vec<String> {
    let mut keys: Vec<String> = records.iter().map(Record::label).collect();
    keys.sort();
    keys
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_paths, baseline_path): (Vec<String>, String) = match args.len() {
        0 => {
            let mut currents = vec!["BENCH_dse.json".to_string()];
            if std::path::Path::new("BENCH_serve.json").exists() {
                currents.push("BENCH_serve.json".into());
            }
            (currents, "results/bench_baseline.json".into())
        }
        1 => (args.clone(), "results/bench_baseline.json".into()),
        _ => {
            let (currents, baseline) = args.split_at(args.len() - 1);
            (currents.to_vec(), baseline[0].clone())
        }
    };
    let current: Vec<Record> = current_paths.iter().flat_map(|p| load(p)).collect();
    let baseline = load(&baseline_path);

    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;
    println!(
        "== bench_check: {} vs {baseline_path} ==",
        current_paths.join(" + ")
    );
    for cur in &current {
        let label = cur.label();
        // Absolute gates: hold whether or not a baseline record exists.
        if let Some(corr) = cur.field("rank_correlation") {
            if corr < MIN_CORRELATION {
                failures.push(format!(
                    "{label}: rank correlation {corr:.3} < {MIN_CORRELATION}"
                ));
            }
        }
        if let Some(failed) = cur.field("failed") {
            if failed > 0.0 {
                failures.push(format!("{label}: {failed:.0} failed requests (must be 0)"));
            }
        }
        let Some(base) = baseline
            .iter()
            .find(|b| b.name == cur.name && b.nodes == cur.nodes)
        else {
            println!("  {label}: no baseline (new workload) — skipped");
            continue;
        };
        compared += 1;
        let failures_before_record = failures.len();
        // Every gated field the baseline record carries must still be
        // present on the current side: a renamed or dropped field would
        // otherwise skip its gate silently, and "CI green because the
        // regression stopped being measured" is exactly what this tool
        // exists to prevent. (The old schema-rigid loader hard-failed on
        // missing fields; the field-generic one keeps that property
        // per-field.)
        for key in [
            "tuned_cycles",
            "tuned_traffic_bytes",
            "rank_correlation",
            "hit_rate",
            "failed",
            "candidates_seen",
            "candidates_per_sec",
        ] {
            if base.field(key).is_some() && cur.field(key).is_none() {
                failures.push(format!(
                    "{label}: gated field {key:?} present in baseline but missing from current run"
                ));
            }
        }
        // Relative gates, per field present on both sides.
        let mut shown: Vec<String> = Vec::new();
        for (key, &(cap, is_ratio)) in [
            ("tuned_cycles", &(1.0 + TOLERANCE, true)),
            ("tuned_traffic_bytes", &(1.0 + TOLERANCE, true)),
            ("hit_rate", &(HIT_RATE_DROP, false)),
        ] {
            let (Some(c), Some(b)) = (cur.field(key), base.field(key)) else {
                continue;
            };
            if is_ratio {
                let ratio = c / b.max(1.0);
                shown.push(format!("{key} {c:.0} ({ratio:.3}x)"));
                if ratio > cap {
                    failures.push(format!(
                        "{label}: {key} regressed {ratio:.3}x (> {cap:.2}x)"
                    ));
                }
            } else {
                shown.push(format!("{key} {c:.3} (base {b:.3})"));
                if c < b - cap {
                    failures.push(format!(
                        "{label}: {key} dropped to {c:.3} (baseline {b:.3}, tolerance -{cap:.2})"
                    ));
                }
            }
        }
        // Ratio floors: these must not *fall* below a fraction of baseline.
        for (key, floor) in [
            ("candidates_seen", SEEN_FLOOR),
            ("candidates_per_sec", THROUGHPUT_FLOOR),
        ] {
            let (Some(c), Some(b)) = (cur.field(key), base.field(key)) else {
                continue;
            };
            let ratio = c / b.max(1.0);
            shown.push(format!("{key} {c:.0} ({ratio:.3}x)"));
            if ratio < floor {
                failures.push(format!(
                    "{label}: {key} fell to {ratio:.3}x of baseline (< {floor:.2}x floor)"
                ));
            }
        }
        // Reported-only context, when present.
        for key in [
            "rank_correlation",
            "p50_micros",
            "p95_micros",
            "p99_us",
            "coalesced_requests",
            "throughput_rps",
            "hit_speedup",
        ] {
            if let Some(v) = cur.field(key) {
                shown.push(format!("{key} {v:.3}"));
            }
        }
        println!("  {label}: {}", shown.join(", "));
        // A tripped gate names the symptom; the attribution table names
        // what moved. Printed only on failure so green runs stay terse.
        if failures.len() > failures_before_record {
            let rows = cello_bench::explain::rank_field_deltas(&base.fields, &cur.fields);
            print!(
                "{}",
                cello_bench::explain::render_field_table(&label, &rows)
            );
        }
    }
    // Coverage within the families this run produced: a baseline record
    // with no current counterpart means a workload silently fell out of the
    // trajectory — exactly the kind of regression this gate exists to
    // catch. Removing a workload intentionally requires refreshing the
    // baseline. Families entirely absent from the current run (e.g. the
    // serve records during a dse-only gate) are out of scope.
    let current_families: std::collections::HashSet<&str> =
        current.iter().map(Record::family).collect();
    let missing: Vec<String> = baseline
        .iter()
        .filter(|b| current_families.contains(b.family()))
        .filter(|b| {
            !current
                .iter()
                .any(|c| c.name == b.name && c.nodes == b.nodes)
        })
        .map(|b| b.label())
        .collect();
    if !missing.is_empty() {
        failures.push(format!(
            "baseline records missing from current run: [{}]\n    current has:  [{}]\n    baseline has: [{}]",
            missing.join(", "),
            record_keys(&current).join(", "),
            record_keys(&baseline).join(", "),
        ));
    }
    if compared == 0 {
        failures.push("no (workload, nodes) records matched the baseline".into());
    }
    if failures.is_empty() {
        println!("bench_check OK: {compared} records within tolerance");
    } else {
        eprintln!("bench_check FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

//! E16: the headline — geomean CELLO speedup and energy efficiency across
//! every HPC workload of the evaluation (paper: 4× and 4×).

use cello_bench::{cg_cell, emit, f3, run_grid, GridCell};
use cello_core::accel::CelloConfig;
use cello_sim::baselines::ConfigKind;
use cello_sim::report::geomean;
use cello_workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello_workloads::datasets::{cg_datasets, CORA, FV1, NASA4704, PROTEIN, SHALLOW_WATER1};
use cello_workloads::gcn::{build_gcn_dag, GcnParams};

fn main() {
    let accel = CelloConfig::paper();
    let configs = ConfigKind::main_set();
    let mut cells: Vec<GridCell> = Vec::new();
    for d in cg_datasets() {
        for n in [1u64, 16] {
            cells.push(cg_cell(&d, n, 10, accel, " CG"));
        }
    }
    for d in [NASA4704, FV1, SHALLOW_WATER1] {
        cells.push(GridCell {
            label: format!("{} BiCGStab", d.name),
            dag: build_bicgstab_dag(&BicgParams::from_dataset(&d, 1, 10)),
            accel,
        });
    }
    for d in [CORA, PROTEIN] {
        cells.push(GridCell {
            label: format!("{} GNN", d.name),
            dag: build_gcn_dag(&GcnParams::from_dataset(&d, 1)),
            accel,
        });
    }

    let reports = run_grid(&cells, &configs);
    let mut speedups_vs_flexagon = Vec::new();
    let mut speedups_vs_best = Vec::new();
    let mut energy_vs_flexagon = Vec::new();
    let mut rows = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        let slice = &reports[ci * configs.len()..(ci + 1) * configs.len()];
        let cello = slice.iter().find(|r| r.config == "CELLO").unwrap();
        let flexagon = slice.iter().find(|r| r.config == "Flexagon").unwrap();
        let best = slice
            .iter()
            .filter(|r| r.config != "CELLO")
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap())
            .unwrap();
        let s_flex = cello.speedup_over(flexagon);
        let s_best = cello.speedup_over(best);
        let e_flex = cello.relative_energy(flexagon);
        speedups_vs_flexagon.push(s_flex);
        speedups_vs_best.push(s_best);
        energy_vs_flexagon.push(e_flex);
        rows.push(vec![
            cell.label.clone(),
            f3(s_flex),
            format!("{} ({})", f3(s_best), best.config),
            f3(1.0 / e_flex),
        ]);
    }
    emit(
        "summary",
        "Headline: CELLO speedup and energy-efficiency per workload",
        &[
            "workload",
            "speedup vs Flexagon ×",
            "speedup vs best baseline ×",
            "energy efficiency vs Flexagon ×",
        ],
        &rows,
    );
    println!(
        "GEOMEAN: speedup vs Flexagon = {}x | vs best baseline = {}x | energy efficiency = {}x",
        f3(geomean(&speedups_vs_flexagon)),
        f3(geomean(&speedups_vs_best)),
        f3(geomean(
            &energy_vs_flexagon
                .iter()
                .map(|e| 1.0 / e)
                .collect::<Vec<_>>()
        )),
    );
    println!("(paper: 4x geomean speedup, 4x energy efficiency across HPC workloads)");
}

//! §VI-B (E8): the buffer-allocation search-space accounting — why explicit
//! scratchpad allocation for DAG-level reuse is intractable (the paper's
//! ~10⁸⁰) while op-by-op allocation is ~10¹⁵ and CHORD's policy space is
//! ~10².

use cello_bench::{emit, f3};
use cello_core::search_space::{op_by_op_search_space, scratchpad_search_space};
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::SHALLOW_WATER1;

fn main() {
    // 4 MB buffer of 32-bit words; five contending CG tensors (A, P, S, R, X)
    // at shallow_water1 N=16 sizes; re-allocation per operation over one
    // 7-operation iteration.
    let size_words = (4u64 << 20) / 4;
    let prm = CgParams::from_dataset(&SHALLOW_WATER1, 16, 10);
    let tensor_words = [
        prm.a_payload_words,
        prm.big_words(),
        prm.big_words(),
        prm.big_words(),
        prm.big_words(),
    ];
    let dag = build_cg_dag(&prm);
    let r = scratchpad_search_space(
        size_words,
        &tensor_words,
        7,
        dag.node_count(),
        dag.edge_count(),
    );
    let rows = vec![
        vec![
            "(1) slice allocation C(size+T-1,T-1)".into(),
            format!("10^{}", f3(r.log10_slice_allocation)),
        ],
        vec![
            "(2) arrangement T! (contiguous)".into(),
            format!("10^{}", f3(r.log10_arrangement)),
        ],
        vec![
            "(3) slice choice ∏(Ti−Ti_slice) (contiguous)".into(),
            format!("10^{}", f3(r.log10_slice_choice)),
        ],
        vec![
            "static product (1)·(2)·(3)".into(),
            format!("10^{}", f3(r.log10_static_total)),
        ],
        vec![
            "(4) time-varying, ^7 steps  [paper: ~10^80]".into(),
            format!("10^{}", f3(r.log10_time_varying)),
        ],
        vec![
            "op-by-op (7 ops × C(size+2,2))  [paper: 7×10^15]".into(),
            format!("10^{}", f3(op_by_op_search_space(size_words, 3, 7))),
        ],
        vec![
            format!(
                "CHORD policy inputs: nodes({}) + edges({})  [paper: ~10^2]",
                dag.node_count(),
                dag.edge_count()
            ),
            format!(
                "10^{} ({} points)",
                f3((r.chord_design_points as f64).log10()),
                r.chord_design_points
            ),
        ],
    ];
    emit(
        "tab_searchspace",
        "§VI-B: buffer-allocation design-space sizes (log10)",
        &["cost factor", "choices"],
        &rows,
    );
}

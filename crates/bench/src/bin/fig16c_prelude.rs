//! Fig 16(c) (E15): the PRELUDE-only ablation on CG (shallow_water1,
//! N ∈ {1,16}) against Flexagon, FLAT and CELLO. Expected shape: PRELUDE-only
//! beats Flexagon/FLAT (writeback support matters more than pipelining on
//! CG), is close to CELLO at N=1 (tensors fit: replacement policy barely
//! matters) and falls behind CELLO at N=16 (RIFF's frequency-aware
//! replacement keeps the hot tensors resident).

use cello_bench::{cg_cell, emit, f3, run_grid};
use cello_core::accel::CelloConfig;
use cello_sim::baselines::ConfigKind;
use cello_workloads::datasets::SHALLOW_WATER1;

fn main() {
    let configs = vec![
        ConfigKind::Flexagon,
        ConfigKind::Flat,
        ConfigKind::PreludeOnly,
        ConfigKind::Cello,
    ];
    let cells = vec![
        cg_cell(&SHALLOW_WATER1, 1, 10, CelloConfig::paper(), ""),
        cg_cell(&SHALLOW_WATER1, 16, 10, CelloConfig::paper(), ""),
    ];
    let reports = run_grid(&cells, &configs);
    let mut rows = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        for (ki, kind) in configs.iter().enumerate() {
            let r = &reports[ci * configs.len() + ki];
            rows.push(vec![
                cell.label.clone(),
                kind.label().to_string(),
                f3(r.gfpmuls_per_sec()),
                r.dram_bytes.to_string(),
            ]);
        }
    }
    emit(
        "fig16c_prelude",
        "Fig 16(c): PRELUDE-only vs Flexagon/FLAT/CELLO on CG (shallow_water1)",
        &["workload", "config", "GFPMuls/s", "DRAM bytes"],
        &rows,
    );
    for (ci, cell) in cells.iter().enumerate() {
        let slice = &reports[ci * configs.len()..(ci + 1) * configs.len()];
        let get = |n: &str| slice.iter().find(|r| r.config == n).unwrap();
        let (pre, cello, flex) = (get("PRELUDE-only"), get("CELLO"), get("Flexagon"));
        println!(
            "{}: PRELUDE-only speedup over Flexagon {}x; CELLO over PRELUDE-only {}x",
            cell.label,
            f3(pre.speedup_over(flex)),
            f3(cello.speedup_over(pre)),
        );
    }
}

//! Fig 8 (E5): the CG iteration schedule — pipeline clusters, realized
//! pipelining, parallel multicast, tensor bindings — plus the scalable
//! multi-node tiling comparison of §V-B.

use cello_bench::{emit, f3};
use cello_core::score::binding::{build_schedule, ScheduleOptions};
use cello_core::score::multinode::NocModel;
use cello_graph::dag::NodeId;
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::SHALLOW_WATER1;

fn main() {
    let prm = CgParams::from_dataset(&SHALLOW_WATER1, 16, 2);
    let dag = build_cg_dag(&prm);
    let schedule = build_schedule(&dag, ScheduleOptions::cello());
    schedule
        .validate(&dag)
        .expect("CELLO schedule must be valid");

    let mut rows = Vec::new();
    for (pi, phase) in schedule.phases.iter().enumerate() {
        let ops: Vec<String> = phase
            .ops
            .iter()
            .map(|&n| dag.node(n).name.clone())
            .collect();
        let realized: Vec<String> = phase
            .realized_edges
            .iter()
            .map(|&e| {
                let edge = dag.edge(e);
                format!(
                    "{}→{}",
                    dag.node(NodeId(edge.src)).output.name,
                    dag.node(NodeId(edge.dst))
                        .name
                        .split(':')
                        .next()
                        .unwrap_or("?")
                )
            })
            .collect();
        rows.push(vec![
            pi.to_string(),
            ops.join(" | "),
            if realized.is_empty() {
                "-".into()
            } else {
                realized.join(", ")
            },
        ]);
    }
    emit(
        "fig08_clusters",
        "Fig 8: CELLO pipeline clusters on CG (2 iterations, shallow_water1, N=16)",
        &["phase", "ops (space-concurrent)", "pipelined tensors"],
        &rows,
    );

    let mut brows: Vec<Vec<String>> = schedule
        .binding
        .iter()
        .map(|(t, b)| vec![t.clone(), format!("{b:?}")])
        .collect();
    brows.sort();
    emit(
        "fig08_bindings",
        "SCORE→buffer bindings (§V-C)",
        &["tensor", "binding"],
        &brows,
    );

    // §V-B scalable dataflow: NoC words, naive vs scalable (Fig 8 bottom).
    let mut nrows = Vec::new();
    for nodes in [4u64, 16, 64] {
        let noc = NocModel::new(nodes);
        let naive = noc.naive_words(prm.m, prm.n);
        let scalable = noc.scalable_words(prm.n, prm.nprime);
        nrows.push(vec![
            nodes.to_string(),
            naive.to_string(),
            scalable.to_string(),
            f3(noc.advantage(prm.m, prm.n, prm.nprime)),
        ]);
    }
    emit(
        "fig08_multinode",
        "Fig 8 (bottom) / §V-B: NoC words per pipelined exchange, naive vs scalable",
        &[
            "nodes",
            "naive (move R: M·N)",
            "scalable (Λ/Γ·hops)",
            "advantage ×",
        ],
        &nrows,
    );
}

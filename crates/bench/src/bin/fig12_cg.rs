//! Fig 12 (E9): CG performance (GigaFPMuls/s, higher is better) for the five
//! main configurations across {fv1, shallow_water1, G2_circuit} × N∈{1,16},
//! at both Table V bandwidths. The first panel's roofline context (achieved
//! arithmetic intensity and the roofline bound) is printed alongside.

use cello_bench::{cg_cell, emit, f3, run_grid};
use cello_core::accel::CelloConfig;
use cello_sim::baselines::ConfigKind;
use cello_workloads::datasets::cg_datasets;

fn main() {
    let configs = ConfigKind::main_set();
    let iterations = 10; // Table VII
    let mut cells = Vec::new();
    for bw in ["1TB/s", "250GB/s"] {
        let accel = match bw {
            "1TB/s" => CelloConfig::paper(),
            _ => CelloConfig::paper_250gbs(),
        };
        for d in cg_datasets() {
            for n in [1u64, 16] {
                cells.push(cg_cell(&d, n, iterations, accel, &format!(" {bw}")));
            }
        }
    }
    let reports = run_grid(&cells, &configs);

    let mut rows = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        let roof = cell.accel.roofline();
        for (ki, kind) in configs.iter().enumerate() {
            let r = &reports[ci * configs.len() + ki];
            let ai = r.achieved_intensity();
            rows.push(vec![
                cell.label.clone(),
                kind.label().to_string(),
                f3(r.gfpmuls_per_sec()),
                f3(ai),
                f3(roof.attainable(ai) / 1e9),
                f3(r.memory_bound_fraction()),
            ]);
        }
    }
    emit(
        "fig12_cg",
        "Fig 12: CG performance (GigaFPMuls/s, higher is better)",
        &[
            "workload",
            "config",
            "GFPMuls/s",
            "achieved ops/B",
            "roofline bound GFPMuls/s",
            "mem-bound frac",
        ],
        &rows,
    );

    // CELLO-vs-best-baseline speedups per workload (the Fig 12 takeaway).
    let mut srows = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        let slice = &reports[ci * configs.len()..(ci + 1) * configs.len()];
        let cello = slice.iter().find(|r| r.config == "CELLO").unwrap();
        let best_base = slice
            .iter()
            .filter(|r| r.config != "CELLO")
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap())
            .unwrap();
        srows.push(vec![
            cell.label.clone(),
            best_base.config.clone(),
            f3(cello.speedup_over(best_base)),
        ]);
    }
    emit(
        "fig12_speedups",
        "Fig 12 takeaway: CELLO speedup over the best non-CELLO baseline",
        &["workload", "best baseline", "CELLO speedup ×"],
        &srows,
    );
}

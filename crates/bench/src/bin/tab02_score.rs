//! Table II (E6): SCORE vs prior schedulers — the capability matrix, derived
//! from the actual feature flags of each implemented configuration (not
//! hand-typed booleans).

use cello_bench::{emit, yn};
use cello_sim::baselines::ConfigKind;

fn main() {
    let rows: Vec<Vec<String>> = ConfigKind::all()
        .iter()
        .map(|k| {
            let c = k.capabilities();
            vec![
                k.label().to_string(),
                yn(c.intra_op),
                yn(c.parallel_multicast),
                yn(c.pipelining),
                yn(c.delayed_hold),
                yn(c.delayed_writeback),
                yn(c.swizzle_minimization),
                yn(c.part_implicit_buffer),
            ]
        })
        .collect();
    emit(
        "tab02_score",
        "Table II: scheduler capabilities (derived from implemented feature flags)",
        &[
            "scheduler",
            "intra-op",
            "multicast",
            "pipelining",
            "delayed hold",
            "delayed writeback",
            "swizzle min.",
            "part-implicit buffer",
        ],
        &rows,
    );
    println!(
        "Paper mapping: Flexagon row ≈ MAESTRO/Timeloop/TPU class; FLAT row ≈ FusedCNN/FLAT/\n\
         FlashAttention/TileFlow class; SET row ≈ SET/TANGRAM class; CELLO row = SCORE (this work)."
    );
}

//! E17 (§V-B ablation): multi-node NoC traffic — the naive "move the big
//! intermediate between pipeline stages" strategy vs SCORE's scalable
//! "partition the dominant rank, broadcast Λ / reduce Γ" tiling (Fig 8
//! bottom), across node counts and CG problem sizes.
//!
//! Both strategies are expressed as **schedules** — a stage-split
//! [`Partition`] vs a dominant-rank slice — and scored through the
//! simulator's `evaluate_report` path, so the orders-of-magnitude gap falls
//! out of the same cost model the DSE engine searches, not a hand-coded
//! formula.

use cello_bench::{emit, f3};
use cello_core::accel::CelloConfig;
use cello_core::score::binding::{build_schedule_with, ScheduleConstraints, ScheduleOptions};
use cello_core::score::multinode::{dominant_partition_rank, Partition};
use cello_graph::dag::TensorDag;
use cello_sim::evaluate::evaluate_report;
use cello_workloads::cg::{build_cg_dag, CgParams};
use cello_workloads::datasets::cg_datasets;

fn noc_hop_bytes(dag: &TensorDag, accel: &CelloConfig, partition: Partition) -> u64 {
    let schedule = build_schedule_with(
        dag,
        ScheduleOptions::cello(),
        &ScheduleConstraints::partitioned(partition),
    );
    evaluate_report(dag, &schedule, accel).noc_hop_bytes
}

fn main() {
    let accel = CelloConfig::paper();
    let mut rows = Vec::new();
    for d in cg_datasets() {
        for n in [1u64, 16] {
            let dag = build_cg_dag(&CgParams::from_dataset(&d, n, 2));
            let rank = dominant_partition_rank(&dag).expect("CG has a dominant rank");
            for nodes in [4u64, 16, 64] {
                let naive = noc_hop_bytes(&dag, &accel, Partition::by_stage(nodes));
                let scalable = noc_hop_bytes(&dag, &accel, Partition::by_rank(nodes, rank));
                rows.push(vec![
                    format!("{} N={n}", d.name),
                    nodes.to_string(),
                    naive.to_string(),
                    scalable.to_string(),
                    f3(naive as f64 / scalable.max(1) as f64),
                ]);
            }
        }
    }
    emit(
        "ablation_noc",
        "§V-B ablation: NoC hop-bytes per 2-iteration CG schedule (naive vs scalable)",
        &[
            "workload",
            "nodes",
            "naive hop-B",
            "scalable hop-B",
            "advantage ×",
        ],
        &rows,
    );
}

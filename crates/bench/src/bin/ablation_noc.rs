//! E17 (§V-B ablation): multi-node NoC traffic — the naive "move the big
//! intermediate between pipeline stages" strategy vs SCORE's scalable
//! "partition the dominant rank, broadcast Λ / reduce Γ" tiling (Fig 8
//! bottom), across node counts and CG problem sizes.

use cello_bench::{emit, f3};
use cello_core::score::multinode::NocModel;
use cello_workloads::datasets::{cg_datasets, Dataset};

fn main() {
    let mut rows = Vec::new();
    for d in cg_datasets() {
        for n in [1u64, 16] {
            for nodes in [4u64, 16, 64] {
                let noc = NocModel::new(nodes);
                let Dataset { m, .. } = d;
                let naive = noc.naive_words(m as u64, n);
                let scalable = noc.scalable_words(n, n);
                rows.push(vec![
                    format!("{} N={n}", d.name),
                    nodes.to_string(),
                    naive.to_string(),
                    scalable.to_string(),
                    f3(noc.advantage(m as u64, n, n)),
                ]);
            }
        }
    }
    emit(
        "ablation_noc",
        "§V-B ablation: NoC words per pipelined exchange (naive vs scalable)",
        &[
            "workload",
            "nodes",
            "naive words",
            "scalable words",
            "advantage ×",
        ],
        &rows,
    );
}

//! Table III (E7): CHORD vs known buffer mechanisms — exposure, granularity,
//! policy properties — with the Fig 15 area/energy columns attached from the
//! CACTI-lite model so the qualitative table carries quantitative teeth.

use cello_bench::{emit, f3};
use cello_mem::model::{AreaEnergyModel, BufferKind};

fn main() {
    let m = AreaEnergyModel::default();
    let four_mb = 4u64 << 20;
    let rows = vec![
        (
            "Cache",
            "Implicit",
            "Line-level",
            "Fully agnostic",
            "yes",
            BufferKind::Cache,
        ),
        (
            "Scratchpad",
            "Explicit",
            "Line-level",
            "Fully controlled, no dependency support",
            "no",
            BufferKind::Scratchpad,
        ),
        (
            "Buffets",
            "Explicit",
            "Tile-level (credit-based)",
            "Fully controlled",
            "no",
            BufferKind::Buffet,
        ),
        (
            "CHORD (this work)",
            "Hybrid (coarse explicit, cycle-level implicit)",
            "Object-level",
            "Object-aware policies, coarse-grained control",
            "yes",
            BufferKind::Chord,
        ),
    ];
    let table: Vec<Vec<String>> = rows
        .into_iter()
        .map(|(name, exposure, gran, policy, online, kind)| {
            vec![
                name.to_string(),
                exposure.to_string(),
                gran.to_string(),
                policy.to_string(),
                online.to_string(),
                f3(m.area_mm2(kind, four_mb)),
                f3(m.energy_per_access_pj(kind, four_mb)),
            ]
        })
        .collect();
    emit(
        "tab03_chord",
        "Table III: buffer mechanisms (+ modeled 4 MB area/energy)",
        &[
            "mechanism",
            "architectural exposure",
            "placement granularity",
            "placement policy",
            "online",
            "area mm²",
            "energy/access pJ",
        ],
        &table,
    );
}

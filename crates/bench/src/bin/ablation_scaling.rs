//! §V-B scaling ablation (executable version of Fig 8 bottom): strong
//! scaling of CG across accelerator nodes under SCORE's scalable placement
//! (slice the dominant rank, ship only Λ/Γ/Φ) versus the naive placement
//! (split pipeline stages, ship the M×N intermediate).

use cello_bench::{emit, f3};
use cello_core::accel::CelloConfig;
use cello_sim::baselines::ConfigKind;
use cello_sim::scaling::{run_cg_multinode, ScalingStrategy};
use cello_workloads::cg::CgParams;
use cello_workloads::datasets::SHALLOW_WATER1;

fn main() {
    let prm = CgParams::from_dataset(&SHALLOW_WATER1, 16, 10);
    let accel = CelloConfig::paper();
    let single = run_cg_multinode(
        &prm,
        &accel,
        ConfigKind::Cello,
        1,
        ScalingStrategy::Scalable,
    );
    let mut rows = Vec::new();
    for nodes in [1u64, 2, 4, 8, 16, 32, 64] {
        for strategy in [ScalingStrategy::Scalable, ScalingStrategy::Naive] {
            let r = run_cg_multinode(&prm, &accel, ConfigKind::Cello, nodes, strategy);
            rows.push(vec![
                nodes.to_string(),
                format!("{strategy:?}"),
                f3(r.seconds * 1e3),
                f3(r.speedup_over(&single)),
                r.noc_bytes.to_string(),
                r.dram_bytes.to_string(),
            ]);
        }
    }
    emit(
        "ablation_scaling",
        "§V-B strong scaling: CELLO on shallow_water1 N=16 (10 iterations)",
        &[
            "nodes",
            "strategy",
            "time ms",
            "speedup ×",
            "NoC bytes",
            "aggregate DRAM bytes",
        ],
        &rows,
    );
    println!(
        "expected: Scalable scales superlinearly while per-node slices exceed CHORD,\n\
         then near-linearly; Naive saturates on NoC traffic (M·N words/iteration)."
    );
}

//! Fig 2 (E1): arithmetic intensity of regular vs skewed GEMMs and the
//! roofline they land on (word = 4 B, BW = 1 TB/s, 16384 MACs @ 1 GHz).
//!
//! Paper values: regular 512³ GEMM = 42.66 ops/byte (compute bound); skewed
//! 524288×16×16 GEMM = 2 ops/byte (memory bound) despite identical MACs.

use cello_bench::{emit, f3};
use cello_core::accel::CelloConfig;
use cello_tensor::intensity::ai_best_gemm;

fn main() {
    let accel = CelloConfig::paper();
    let roof = accel.roofline();
    let cases = [
        ("regular 512x512x512", 512u64, 512u64, 512u64),
        ("skewed 524288x16x16", 524_288, 16, 16),
    ];
    let mut rows = Vec::new();
    for (name, m, k, n) in cases {
        let ai = ai_best_gemm(m, k, n, accel.word_bytes);
        let attainable = roof.attainable(ai.ops_per_byte());
        rows.push(vec![
            name.to_string(),
            ai.macs.to_string(),
            f3(ai.ops_per_word()),
            f3(ai.ops_per_byte()),
            f3(attainable / 1e9),
            if roof.memory_bound(ai.ops_per_byte()) {
                "memory-bound".into()
            } else {
                "compute-bound".into()
            },
        ]);
    }
    emit(
        "fig02_roofline",
        "Fig 2: arithmetic intensity and roofline (1 TB/s, 16384 MACs @ 1 GHz)",
        &[
            "gemm",
            "MACs",
            "ops/word",
            "ops/byte",
            "attainable GFPMuls/s",
            "regime",
        ],
        &rows,
    );
    println!(
        "ridge point @1TB/s = {} ops/byte; @250GB/s = {} ops/byte (paper: 16.384 / 65.536)",
        f3(roof.ridge_point()),
        f3(CelloConfig::paper_250gbs().roofline().ridge_point()),
    );
}

//! Regression attribution: *why* did this number change?
//!
//! The bench trajectories gate on totals — `tuned_cycles`, DRAM bytes, a
//! ratio against the committed baseline. When a gate trips, the ratio names
//! the symptom but not the cause: under the overlap model a cycle
//! regression can hide in compute vs exposed transfer vs NoC serialization,
//! and a DRAM regression in reads vs writebacks vs the overbook spill tail.
//! This module turns two [`RunReport`]s (or two flat bench records) into a
//! ranked attribution table over exactly those axes.
//!
//! The cycle decomposition is **exact by construction**, not a model: for
//! each phase the engine records `(compute, exposed_mem)` and the total
//! cycles the overlap ledger charged, and
//!
//! ```text
//! total = compute + max(0, exposed_mem − compute) + (total − max(compute, exposed_mem))
//!         └ compute ┘ └ exposed-transfer excess  ┘ └ noc/serialization excess        ┘
//! ```
//!
//! is an identity (the ledger guarantees `total ≥ max(compute,
//! exposed_mem)`). Per-phase axis rows therefore sum to `RunReport::cycles`
//! exactly, and diffed rows sum to the cycle delta exactly — pinned by the
//! `explain_proptest` suite. The DRAM split is exact the same way:
//! `phase_dram_bytes[p] = dram_read + dram_write + spill_tail` where the
//! spill tail is the overbook writeback the backend never saw
//! (`phase_dram_bytes[p] − phase_stats[p].dram_bytes()`).

use crate::json::Json;
use cello_mem::stats::AccessStats;
use cello_sim::report::RunReport;

/// Schema tag for `--report-out` documents.
pub const REPORT_SCHEMA: u64 = 1;

/// Cycle-axis names, in decomposition order.
pub const CYCLE_AXES: [&str; 3] = ["compute", "exposed-transfer", "noc/serialization"];

/// DRAM-axis names, in decomposition order.
pub const DRAM_AXES: [&str; 3] = ["dram-read", "dram-write", "spill-tail"];

// ---------------------------------------------------------------------------
// RunReport ⇄ Json
// ---------------------------------------------------------------------------

fn stats_to_json(s: &AccessStats) -> Json {
    Json::Obj(vec![
        ("dram_read_bytes".into(), Json::int(s.dram_read_bytes)),
        ("dram_write_bytes".into(), Json::int(s.dram_write_bytes)),
        ("sram_read_words".into(), Json::int(s.sram_read_words)),
        ("sram_write_words".into(), Json::int(s.sram_write_words)),
        ("tag_accesses".into(), Json::int(s.tag_accesses)),
        ("hits".into(), Json::int(s.hits)),
        ("misses".into(), Json::int(s.misses)),
        ("writebacks".into(), Json::int(s.writebacks)),
    ])
}

fn field_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn field_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn field_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn u64_array(j: &Json, key: &str) -> Result<Vec<u64>, String> {
    j.get(key)
        .and_then(Json::as_array)
        .map(|a| a.iter().map(|v| v.as_f64().unwrap_or(0.0) as u64).collect())
        .ok_or_else(|| format!("missing array field {key:?}"))
}

fn stats_from_json(j: &Json) -> Result<AccessStats, String> {
    Ok(AccessStats {
        dram_read_bytes: field_u64(j, "dram_read_bytes")?,
        dram_write_bytes: field_u64(j, "dram_write_bytes")?,
        sram_read_words: field_u64(j, "sram_read_words")?,
        sram_write_words: field_u64(j, "sram_write_words")?,
        tag_accesses: field_u64(j, "tag_accesses")?,
        hits: field_u64(j, "hits")?,
        misses: field_u64(j, "misses")?,
        writebacks: field_u64(j, "writebacks")?,
    })
}

/// Serializes a full [`RunReport`] — including every per-phase vector the
/// attribution needs — to the bench JSON value.
pub fn report_to_json(r: &RunReport) -> Json {
    Json::Obj(vec![
        ("config".into(), Json::Str(r.config.clone())),
        ("workload".into(), Json::Str(r.workload.clone())),
        ("cycles".into(), Json::int(r.cycles)),
        ("seconds".into(), Json::Num(r.seconds)),
        ("macs".into(), Json::int(r.macs)),
        ("dram_bytes".into(), Json::int(r.dram_bytes)),
        ("nodes".into(), Json::int(r.nodes)),
        ("noc_hop_bytes".into(), Json::int(r.noc_hop_bytes)),
        ("offchip_energy_pj".into(), Json::Num(r.offchip_energy_pj)),
        ("onchip_energy_pj".into(), Json::Num(r.onchip_energy_pj)),
        ("noc_energy_pj".into(), Json::Num(r.noc_energy_pj)),
        ("stats".into(), stats_to_json(&r.stats)),
        (
            "phase_compute_cycles".into(),
            Json::Arr(r.phase_cycles.iter().map(|&(c, _)| Json::int(c)).collect()),
        ),
        (
            "phase_mem_cycles".into(),
            Json::Arr(r.phase_cycles.iter().map(|&(_, m)| Json::int(m)).collect()),
        ),
        (
            "phase_dram_bytes".into(),
            Json::Arr(r.phase_dram_bytes.iter().map(|&b| Json::int(b)).collect()),
        ),
        (
            "phase_stats".into(),
            Json::Arr(r.phase_stats.iter().map(stats_to_json).collect()),
        ),
        (
            "phase_noc_hop_words".into(),
            Json::Arr(
                r.phase_noc_hop_words
                    .iter()
                    .map(|&w| Json::int(w))
                    .collect(),
            ),
        ),
        (
            "phase_total_cycles".into(),
            Json::Arr(r.phase_total_cycles.iter().map(|&t| Json::int(t)).collect()),
        ),
    ])
}

/// Parses a report serialized by [`report_to_json`].
pub fn report_from_json(j: &Json) -> Result<RunReport, String> {
    let compute = u64_array(j, "phase_compute_cycles")?;
    let mem = u64_array(j, "phase_mem_cycles")?;
    if compute.len() != mem.len() {
        return Err("phase_compute_cycles / phase_mem_cycles length mismatch".into());
    }
    let phase_stats = j
        .get("phase_stats")
        .and_then(Json::as_array)
        .ok_or("missing array field \"phase_stats\"")?
        .iter()
        .map(stats_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RunReport {
        config: field_str(j, "config")?,
        workload: field_str(j, "workload")?,
        cycles: field_u64(j, "cycles")?,
        seconds: field_f64(j, "seconds")?,
        macs: field_u64(j, "macs")?,
        dram_bytes: field_u64(j, "dram_bytes")?,
        nodes: field_u64(j, "nodes")?,
        noc_hop_bytes: field_u64(j, "noc_hop_bytes")?,
        offchip_energy_pj: field_f64(j, "offchip_energy_pj")?,
        onchip_energy_pj: field_f64(j, "onchip_energy_pj")?,
        noc_energy_pj: field_f64(j, "noc_energy_pj")?,
        stats: stats_from_json(j.get("stats").ok_or("missing field \"stats\"")?)?,
        phase_cycles: compute.into_iter().zip(mem).collect(),
        phase_dram_bytes: u64_array(j, "phase_dram_bytes")?,
        phase_stats,
        phase_noc_hop_words: u64_array(j, "phase_noc_hop_words")?,
        phase_total_cycles: u64_array(j, "phase_total_cycles")?,
    })
}

/// The document `cello_run --report-out` writes: a schema tag, provenance,
/// and one full report per simulated configuration.
pub fn reports_doc(generated_by: &str, reports: &[RunReport]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::int(REPORT_SCHEMA)),
        ("generated_by".into(), Json::Str(generated_by.to_string())),
        (
            "reports".into(),
            Json::Arr(reports.iter().map(report_to_json).collect()),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Axis decomposition
// ---------------------------------------------------------------------------

/// Per-phase cycle decomposition `[compute, exposed-transfer excess,
/// noc/serialization excess]`, one row per entry of `phase_total_cycles`
/// (drain included). Each row sums to that phase's total exactly — see the
/// module docs for the identity.
pub fn cycle_axes(r: &RunReport) -> Vec<[i64; 3]> {
    r.phase_cycles
        .iter()
        .zip(&r.phase_total_cycles)
        .map(|(&(c, m), &t)| {
            [
                c as i64,
                m.saturating_sub(c) as i64,
                t as i64 - c.max(m) as i64,
            ]
        })
        .collect()
}

/// Per-phase, per-node DRAM decomposition `[read, write, spill-tail]`, one
/// row per entry of `phase_dram_bytes` (drain included). Each row sums to
/// `phase_dram_bytes[p]` exactly; multiplying by the report's node
/// aggregation factor recovers `dram_bytes`.
pub fn dram_axes(r: &RunReport) -> Vec<[i64; 3]> {
    r.phase_stats
        .iter()
        .zip(&r.phase_dram_bytes)
        .map(|(s, &d)| {
            [
                s.dram_read_bytes as i64,
                s.dram_write_bytes as i64,
                d.saturating_sub(s.dram_bytes()) as i64,
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Report diffing
// ---------------------------------------------------------------------------

/// One attribution row: how much one (phase, axis) cell moved.
#[derive(Clone, Debug)]
pub struct AxisDelta {
    /// Phase index (the drain phase is the last index when present).
    pub phase: usize,
    /// Axis name (from [`CYCLE_AXES`] / [`DRAM_AXES`]).
    pub axis: &'static str,
    /// Value in the *before* report.
    pub before: i64,
    /// Value in the *after* report.
    pub after: i64,
}

impl AxisDelta {
    /// Signed change (`after − before`).
    pub fn delta(&self) -> i64 {
        self.after - self.before
    }
}

/// The full diff of two reports: exact per-phase cycle and DRAM attribution
/// plus the CHORD behavioral counters for context.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// `config/workload` label of the before report.
    pub before_label: String,
    /// `config/workload` label of the after report.
    pub after_label: String,
    /// Total cycles on each side.
    pub cycles: (u64, u64),
    /// Aggregated DRAM bytes on each side.
    pub dram_bytes: (u64, u64),
    /// Per-(phase, axis) cycle rows; deltas sum to the cycle delta exactly.
    pub cycle_rows: Vec<AxisDelta>,
    /// Per-(phase, axis) per-node DRAM rows.
    pub dram_rows: Vec<AxisDelta>,
    /// CHORD counter context: (name, before, after) for hits / misses /
    /// writebacks.
    pub chord: Vec<(&'static str, u64, u64)>,
}

fn axis_rows(before: &[[i64; 3]], after: &[[i64; 3]], names: [&'static str; 3]) -> Vec<AxisDelta> {
    let phases = before.len().max(after.len());
    let zero = [0i64; 3];
    let mut rows = Vec::with_capacity(phases * 3);
    for p in 0..phases {
        let b = before.get(p).unwrap_or(&zero);
        let a = after.get(p).unwrap_or(&zero);
        for (i, &axis) in names.iter().enumerate() {
            rows.push(AxisDelta {
                phase: p,
                axis,
                before: b[i],
                after: a[i],
            });
        }
    }
    rows
}

/// Diffs two reports into the exact attribution. Phase counts may differ
/// (different schedules phase differently) — the shorter side pads with
/// zero rows, preserving the sum identity.
pub fn diff_reports(before: &RunReport, after: &RunReport) -> Explanation {
    Explanation {
        before_label: format!("{}/{}", before.config, before.workload),
        after_label: format!("{}/{}", after.config, after.workload),
        cycles: (before.cycles, after.cycles),
        dram_bytes: (before.dram_bytes, after.dram_bytes),
        cycle_rows: axis_rows(&cycle_axes(before), &cycle_axes(after), CYCLE_AXES),
        dram_rows: axis_rows(&dram_axes(before), &dram_axes(after), DRAM_AXES),
        chord: vec![
            ("hits", before.stats.hits, after.stats.hits),
            ("misses", before.stats.misses, after.stats.misses),
            (
                "writebacks",
                before.stats.writebacks,
                after.stats.writebacks,
            ),
        ],
    }
}

impl Explanation {
    /// Signed cycle change (`after − before`).
    pub fn cycle_delta(&self) -> i64 {
        self.cycles.1 as i64 - self.cycles.0 as i64
    }

    /// Total signed change per cycle axis, across all phases — the
    /// headline attribution. Sums to [`Self::cycle_delta`] exactly.
    pub fn cycle_axis_totals(&self) -> [(&'static str, i64); 3] {
        let mut totals = CYCLE_AXES.map(|a| (a, 0i64));
        for row in &self.cycle_rows {
            if let Some(t) = totals.iter_mut().find(|(a, _)| *a == row.axis) {
                t.1 += row.delta();
            }
        }
        totals
    }

    /// The axis with the largest absolute total change — "what moved".
    pub fn dominant_cycle_axis(&self) -> (&'static str, i64) {
        self.cycle_axis_totals()
            .into_iter()
            .max_by_key(|&(_, d)| d.unsigned_abs())
            .unwrap_or((CYCLE_AXES[0], 0))
    }

    /// Rows of `rows` with a non-zero delta, ranked by absolute change.
    fn ranked(rows: &[AxisDelta]) -> Vec<&AxisDelta> {
        let mut moved: Vec<&AxisDelta> = rows.iter().filter(|r| r.delta() != 0).collect();
        moved.sort_by_key(|r| std::cmp::Reverse(r.delta().unsigned_abs()));
        moved
    }

    /// Renders the ranked attribution table (at most `top` rows per
    /// section).
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== cello_explain: {} -> {} ==",
            self.before_label, self.after_label
        );
        let _ = writeln!(
            out,
            "cycles {} -> {} (delta {:+})",
            self.cycles.0,
            self.cycles.1,
            self.cycle_delta()
        );
        let _ = writeln!(
            out,
            "dram_bytes {} -> {} (delta {:+})",
            self.dram_bytes.0,
            self.dram_bytes.1,
            self.dram_bytes.1 as i64 - self.dram_bytes.0 as i64
        );
        let totals = self.cycle_axis_totals();
        let _ = writeln!(
            out,
            "cycle axis totals: {}",
            totals
                .iter()
                .map(|(a, d)| format!("{a} {d:+}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let denom = self.cycle_delta().unsigned_abs().max(1) as f64;
        let mut section = |title: &str, rows: &[AxisDelta], unit: &str, share: bool| {
            let ranked = Self::ranked(rows);
            if ranked.is_empty() {
                return;
            }
            let _ = writeln!(out, "{title}");
            let _ = writeln!(
                out,
                "  {:<5} {:<6} {:<19} {:>14} {:>14} {:>14}  share",
                "rank", "phase", "axis", "before", "after", "delta"
            );
            for (i, row) in ranked.iter().take(top).enumerate() {
                let pct = if share {
                    format!("{:.1}%", row.delta().unsigned_abs() as f64 / denom * 100.0)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  {:<5} {:<6} {:<19} {:>14} {:>14} {:>+14}  {}",
                    i + 1,
                    row.phase,
                    row.axis,
                    row.before,
                    row.after,
                    row.delta(),
                    pct
                );
            }
            if ranked.len() > top {
                let _ = writeln!(out, "  ... {} more {unit} rows", ranked.len() - top);
            }
        };
        section(
            "cycle attribution (per phase, per axis):",
            &self.cycle_rows,
            "cycle",
            true,
        );
        section(
            "DRAM attribution (per phase, per axis, bytes per node):",
            &self.dram_rows,
            "DRAM",
            false,
        );
        let moved: Vec<String> = self
            .chord
            .iter()
            .filter(|(_, b, a)| a != b)
            .map(|(n, b, a)| format!("{n} {b} -> {a}"))
            .collect();
        if !moved.is_empty() {
            let _ = writeln!(out, "CHORD counters: {}", moved.join(", "));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Record diffing (BENCH_dse.json-shaped flat records)
// ---------------------------------------------------------------------------

/// One changed numeric field of a flat bench record.
#[derive(Clone, Debug)]
pub struct FieldDelta {
    /// Field key (e.g. `tuned_cycles`).
    pub key: String,
    /// Baseline value.
    pub before: f64,
    /// Current value.
    pub after: f64,
}

impl FieldDelta {
    /// Relative change against the baseline magnitude.
    pub fn rel_change(&self) -> f64 {
        (self.after - self.before) / self.before.abs().max(f64::MIN_POSITIVE)
    }
}

/// Diffs two flat `(key, value)` records, returning the fields present on
/// both sides that changed, ranked by absolute relative change. This is the
/// coarse attribution for `BENCH_dse.json` records (which carry totals, not
/// phases): it names *which* measured quantity moved most.
pub fn rank_field_deltas(before: &[(String, f64)], after: &[(String, f64)]) -> Vec<FieldDelta> {
    let mut rows: Vec<FieldDelta> = after
        .iter()
        .filter_map(|(k, a)| {
            let b = before.iter().find(|(bk, _)| bk == k)?.1;
            (*a != b).then(|| FieldDelta {
                key: k.clone(),
                before: b,
                after: *a,
            })
        })
        .collect();
    rows.sort_by(|x, y| {
        y.rel_change()
            .abs()
            .total_cmp(&x.rel_change().abs())
            .then_with(|| x.key.cmp(&y.key))
    });
    rows
}

/// Renders the ranked field-delta table `bench_check` prints when a record
/// regresses.
pub fn render_field_table(label: &str, rows: &[FieldDelta]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if rows.is_empty() {
        let _ = writeln!(out, "  [explain] {label}: no numeric field changed");
        return out;
    }
    let _ = writeln!(out, "  [explain] {label}: attribution by relative change");
    let _ = writeln!(
        out,
        "    {:<5} {:<22} {:>16} {:>16} {:>9}",
        "rank", "field", "baseline", "current", "change"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {:<5} {:<22} {:>16} {:>16} {:>+8.1}%",
            i + 1,
            r.key,
            trim_num(r.before),
            trim_num(r.after),
            r.rel_change() * 100.0
        );
    }
    out
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_core::accel::CelloConfig;
    use cello_core::score::binding::{build_schedule, ScheduleOptions};
    use cello_graph::dag::TensorDag;
    use cello_graph::edge::TensorMeta;
    use cello_graph::node::OpKind;
    use cello_sim::evaluate::evaluate_report;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn chain(n_ops: usize, words: u64) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", words / 16),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..n_ops {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "k"]);
            } else {
                dag.add_external(
                    TensorMeta::dense("In", &["m", "k"], words),
                    &[(id, &["m", "k"])],
                );
            }
            prev = Some(id);
        }
        dag
    }

    fn sample_report() -> RunReport {
        let dag = chain(3, 200_000);
        let s = build_schedule(&dag, ScheduleOptions::best_intra());
        evaluate_report(&dag, &s, &CelloConfig::paper())
    }

    #[test]
    fn report_json_round_trips() {
        let r = sample_report();
        let back = report_from_json(&report_to_json(&r)).unwrap();
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.phase_cycles, r.phase_cycles);
        assert_eq!(back.phase_dram_bytes, r.phase_dram_bytes);
        assert_eq!(back.phase_stats, r.phase_stats);
        assert_eq!(back.phase_total_cycles, r.phase_total_cycles);
        assert_eq!(back.stats, r.stats);
        // And through the text layer.
        let doc = reports_doc("test", std::slice::from_ref(&r));
        let parsed = Json::parse(&doc.render()).unwrap();
        let again =
            report_from_json(&parsed.get("reports").unwrap().as_array().unwrap()[0]).unwrap();
        assert_eq!(again.cycles, r.cycles);
        assert_eq!(again.phase_total_cycles, r.phase_total_cycles);
    }

    #[test]
    fn cycle_axes_sum_to_report_total() {
        let r = sample_report();
        assert!(!r.phase_total_cycles.is_empty());
        let total: i64 = cycle_axes(&r).iter().flatten().sum();
        assert_eq!(total, r.cycles as i64);
    }

    #[test]
    fn dram_axes_sum_to_phase_bytes() {
        let r = sample_report();
        for (row, &b) in dram_axes(&r).iter().zip(&r.phase_dram_bytes) {
            assert_eq!(row.iter().sum::<i64>(), b as i64);
        }
    }

    #[test]
    fn diff_rows_sum_to_cycle_delta_even_across_phase_counts() {
        // Different schedules phase differently: best_intra (3 phases) vs
        // cello (1 fused phase). The padded diff must still telescope.
        let dag = chain(3, 200_000);
        let accel = CelloConfig::paper();
        let a = evaluate_report(
            &dag,
            &build_schedule(&dag, ScheduleOptions::best_intra()),
            &accel,
        );
        let b = evaluate_report(
            &dag,
            &build_schedule(&dag, ScheduleOptions::cello()),
            &accel,
        );
        let e = diff_reports(&a, &b);
        let sum: i64 = e.cycle_rows.iter().map(AxisDelta::delta).sum();
        assert_eq!(sum, e.cycle_delta());
        let totals_sum: i64 = e.cycle_axis_totals().iter().map(|&(_, d)| d).sum();
        assert_eq!(totals_sum, e.cycle_delta());
        // The render path never panics and names the totals.
        let text = e.render(5);
        assert!(text.contains("cycle axis totals"));
    }

    #[test]
    fn field_deltas_rank_by_relative_change() {
        let before = vec![
            ("tuned_cycles".to_string(), 100.0),
            ("tuned_dram_bytes".to_string(), 1000.0),
            ("rank_correlation".to_string(), 1.0),
        ];
        let after = vec![
            ("tuned_cycles".to_string(), 150.0),      // +50%
            ("tuned_dram_bytes".to_string(), 1100.0), // +10%
            ("rank_correlation".to_string(), 1.0),    // unchanged
            ("extra".to_string(), 5.0),               // no baseline — dropped
        ];
        let rows = rank_field_deltas(&before, &after);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, "tuned_cycles");
        assert!((rows[0].rel_change() - 0.5).abs() < 1e-12);
        assert_eq!(rows[1].key, "tuned_dram_bytes");
        let table = render_field_table("x", &rows);
        assert!(table.contains("tuned_cycles"));
        assert!(table.contains("+50.0%"));
    }
}

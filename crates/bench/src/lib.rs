//! Shared harness helpers for the figure/table binaries.
//!
//! Every `src/bin/figXX_*.rs` / `tabXX_*.rs` binary regenerates one paper
//! artifact: it prints the same rows/series the paper reports and writes a
//! TSV under `results/`. This module centralizes the common legwork: running
//! a grid of (workload × configuration) simulations in parallel, labeling,
//! and emission.

use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use cello_sim::baselines::{run_config, ConfigKind};
use cello_sim::report::{tsv, write_results, RunReport};
use rayon::prelude::*;

pub mod explain;
pub mod json;

/// One cell of a sweep: a labeled workload DAG under a labeled accelerator.
pub struct GridCell {
    /// Workload label (dataset, N, bandwidth…).
    pub label: String,
    /// The DAG to run.
    pub dag: TensorDag,
    /// The accelerator configuration.
    pub accel: CelloConfig,
}

/// Runs `configs` over every grid cell in parallel; results are ordered
/// cell-major then config-major.
pub fn run_grid(cells: &[GridCell], configs: &[ConfigKind]) -> Vec<RunReport> {
    let jobs: Vec<(usize, &GridCell, ConfigKind)> = cells
        .iter()
        .enumerate()
        .flat_map(|(i, c)| {
            configs
                .iter()
                .enumerate()
                .map(move |(j, &k)| (i * configs.len() + j, c, k))
        })
        .collect();
    let mut reports: Vec<(usize, RunReport)> = jobs
        .par_iter()
        .map(|&(idx, cell, kind)| (idx, run_config(&cell.dag, kind, &cell.accel, &cell.label)))
        .collect();
    reports.sort_by_key(|(i, _)| *i);
    reports.into_iter().map(|(_, r)| r).collect()
}

/// Prints a titled table to stdout and saves it under `results/<name>.tsv`.
pub fn emit(name: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
    match write_results(name, &tsv(header, rows)) {
        Ok(path) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn] could not save results/{name}.tsv: {e}"),
    }
    println!();
}

/// Formats a float with context-appropriate precision.
pub fn f3(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Yes/no cell for capability tables.
pub fn yn(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

/// Spearman rank correlation between the analytic surrogate and the exact
/// simulator over `samples` seeded-random candidates of `cfg`'s space on
/// `dag`, on the total-traffic objective (the §V-B figure of merit). This is
/// the number the CI gate pins: it answers "can the tier-1 ranking be
/// trusted to pick sim-evaluation survivors?".
pub fn surrogate_rank_correlation(
    dag: &TensorDag,
    accel: &CelloConfig,
    cfg: &cello_search::SpaceConfig,
    samples: usize,
    seed: u64,
) -> f64 {
    use cello_search::{spearman, surrogate_cost, SearchSpace};
    let space = SearchSpace::from_dag(dag, cfg);
    let schedules: Vec<_> = space
        .sample_assignments(samples, seed)
        .iter()
        .map(|picks| space.assemble(picks).build(dag))
        .collect();
    let pairs: Vec<(u64, u64)> = schedules
        .par_iter()
        .map(|s| {
            (
                surrogate_cost(dag, s, accel).total_traffic_bytes(),
                cello_sim::evaluate::evaluate_schedule(dag, s, accel).total_traffic_bytes(),
            )
        })
        .collect();
    let est: Vec<u64> = pairs.iter().map(|&(e, _)| e).collect();
    let sim: Vec<u64> = pairs.iter().map(|&(_, s)| s).collect();
    spearman(&est, &sim)
}

/// The standard CG workload grid used by Fig 12/14/16 harnesses.
pub fn cg_cell(
    dataset: &cello_workloads::datasets::Dataset,
    n: u64,
    iterations: u32,
    accel: CelloConfig,
    extra: &str,
) -> GridCell {
    let prm = cello_workloads::cg::CgParams::from_dataset(dataset, n, iterations);
    GridCell {
        label: format!("{} N={n}{extra}", dataset.name),
        dag: cello_workloads::cg::build_cg_dag(&prm),
        accel,
    }
}

//! Minimal JSON reader/writer for the bench-trajectory artifacts.
//!
//! The workspace's vendored serde stand-in has no serializer, and the bench
//! trajectory only needs flat records of numbers and strings — so this is a
//! small, dependency-free JSON value with a recursive-descent parser and a
//! pretty printer. `BENCH_dse.json` is written with [`Json::render`] and
//! `bench_check` reads both it and `results/bench_baseline.json` back with
//! [`Json::parse`]; round-tripping is covered by tests.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integers ≤ 2⁵³ round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: integer-valued number builder.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// stable formatting so committed baselines diff cleanly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                // Integers without a decimal point, floats with full
                // round-trip precision. JSON has no NaN/±inf literal — a
                // non-finite value (e.g. a NaN energy estimate) renders as
                // null rather than corrupting the document.
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document (the subset above; `\uXXXX` escapes are
    /// accepted for BMP code points).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the contiguous run up to the next quote or escape as
                // one validated chunk. (Validating the whole remaining
                // buffer per character made parsing quadratic — a 10 KB
                // document cost milliseconds, which the serve hit path
                // noticed.) Multi-byte UTF-8 sequences contain no `"`/`\`
                // bytes, so the bytewise scan cannot split a scalar.
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bench_shape() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::int(1)),
            (
                "workloads".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("cg/G2_circuit".into())),
                    ("nodes".into(), Json::int(4)),
                    ("tuned_cycles".into(), Json::int(123_456_789)),
                    ("rank_correlation".into(), Json::Num(0.9375)),
                    ("ok".into(), Json::Bool(true)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        let w = &back.get("workloads").unwrap().as_array().unwrap()[0];
        assert_eq!(w.get("name").unwrap().as_str(), Some("cg/G2_circuit"));
        assert_eq!(w.get("tuned_cycles").unwrap().as_f64(), Some(123_456_789.0));
    }

    #[test]
    fn parses_hand_written_json() {
        let back =
            Json::parse(r#" { "a": [1, -2.5, 3e2], "b": "x\n\"y\"", "c": null, "d": false } "#)
                .unwrap();
        assert_eq!(
            back.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(back.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(back.get("c"), Some(&Json::Null));
        assert_eq!(back.get("d"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::int(42).render(), "42\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    /// Non-finite numbers have no JSON literal: they render as null and the
    /// document stays parseable.
    #[test]
    fn non_finite_renders_as_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::Obj(vec![("e".into(), Json::Num(bad))]);
            let text = doc.render();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.get("e"), Some(&Json::Null));
        }
    }
}

//! Criterion micro-benchmarks for CHORD's hot paths: produce (PRELUDE fill +
//! RIFF replacement), consume (hit/miss split), and the victim search — the
//! operations that would be cycle-level hardware in CELLO and must stay cheap
//! in the simulator.

use cello_core::chord::{Chord, ChordConfig, ChordPolicyKind, RiffPriority};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn cfg(capacity: u64) -> ChordConfig {
    ChordConfig {
        capacity_words: capacity,
        word_bytes: 4,
        policy: ChordPolicyKind::PreludeRiff,
        max_entries: 64,
    }
}

fn bench_produce_consume(c: &mut Criterion) {
    c.bench_function("chord/produce+consume 32 tensors", |b| {
        b.iter(|| {
            let mut chord = Chord::new(cfg(1 << 20));
            for i in 0..32u32 {
                let name = format!("T{i}");
                chord.produce(&name, 60_000, RiffPriority::new(2 + i % 3, 1 + i % 5));
            }
            for i in 0..32u32 {
                let name = format!("T{i}");
                // Under contention RIFF may have fully evicted a tensor; the
                // engine then streams it from DRAM (consume_absent).
                if chord.table().get(&name).is_some() {
                    black_box(chord.consume(&name, None));
                } else {
                    black_box(chord.consume_absent(60_000));
                }
            }
            black_box(chord.stats())
        })
    });
}

fn bench_riff_contention(c: &mut Criterion) {
    c.bench_function("chord/riff eviction cascade", |b| {
        b.iter(|| {
            let mut chord = Chord::new(cfg(100_000));
            // Fill with weak tensors, then push strong ones through.
            for i in 0..20u32 {
                chord.produce(&format!("weak{i}"), 5_000, RiffPriority::new(1, 9));
            }
            for i in 0..20u32 {
                chord.produce(&format!("strong{i}"), 5_000, RiffPriority::new(5, 1));
            }
            black_box(chord.used_words())
        })
    });
}

fn bench_prelude_spill(c: &mut Criterion) {
    c.bench_function("chord/prelude spill oversize tensor", |b| {
        b.iter(|| {
            let mut chord = Chord::new(cfg(10_000));
            let spill = chord.produce("huge", 1_000_000, RiffPriority::new(3, 1));
            black_box(spill)
        })
    });
}

criterion_group!(
    benches,
    bench_produce_consume,
    bench_riff_contention,
    bench_prelude_spill
);
criterion_main!(benches);

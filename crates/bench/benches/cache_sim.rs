//! Criterion micro-benchmarks for the trace-driven cache simulator — the
//! throughput that bounds how fast the Flex+LRU / Flex+BRRIP baselines run on
//! the large Table VI datasets.

use cello_mem::cache::{BrripPolicy, CacheConfig, LruPolicy, SetAssocCache};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn config() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 1 << 20,
        line_bytes: 16,
        associativity: 8,
    }
}

fn bench_stream(c: &mut Criterion) {
    let bytes: u64 = 4 << 20; // 4 MiB scan: 4x capacity
    let mut g = c.benchmark_group("cache/stream");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("lru scan", |b| {
        let mut cache = SetAssocCache::<LruPolicy>::new(config());
        b.iter(|| black_box(cache.stream(0, bytes, false)))
    });
    g.bench_function("brrip scan", |b| {
        let mut cache = SetAssocCache::<BrripPolicy>::new(config());
        b.iter(|| black_box(cache.stream(0, bytes, false)))
    });
    g.finish();
}

fn bench_mixed(c: &mut Criterion) {
    c.bench_function("cache/lru mixed rw", |b| {
        let mut cache = SetAssocCache::<LruPolicy>::new(config());
        let mut addr: u64 = 0x1234;
        b.iter(|| {
            for i in 0..1024u64 {
                addr = addr.wrapping_mul(2654435761).wrapping_add(i) % (8 << 20);
                cache.access(addr, i % 4 == 0);
            }
            black_box(cache.stats())
        })
    });
}

criterion_group!(benches, bench_stream, bench_mixed);
criterion_main!(benches);

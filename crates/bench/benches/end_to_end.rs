//! Criterion benchmarks for full configuration simulations — one CG workload
//! through each Table IV pipeline (schedule + backend + engine). These bound
//! the wall-clock of the figure harnesses.

use cello_core::accel::CelloConfig;
use cello_sim::baselines::{run_config, ConfigKind};
use cello_workloads::cg::{build_cg_dag, CgParams};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn dag() -> cello_graph::dag::TensorDag {
    build_cg_dag(&CgParams {
        m: 9604,
        occupancy: 8.9,
        a_payload_words: 2 * 85_264 + 9605,
        n: 16,
        nprime: 16,
        iterations: 5,
        a_occupancy: None,
    })
}

fn bench_configs(c: &mut Criterion) {
    let dag = dag();
    let accel = CelloConfig::paper();
    let mut g = c.benchmark_group("end_to_end/cg_fv1_5iter");
    g.sample_size(20);
    for kind in [ConfigKind::Flexagon, ConfigKind::Flat, ConfigKind::Cello] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| black_box(run_config(&dag, k, &accel, "bench")))
        });
    }
    // Cache baselines simulate per-line: keep the sample small.
    g.sample_size(10);
    for kind in [ConfigKind::FlexLru, ConfigKind::FlexBrrip] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| black_box(run_config(&dag, k, &accel, "bench")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);

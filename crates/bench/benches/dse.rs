//! Criterion benchmarks for the DSE engine: candidate assembly + evaluation
//! throughput, and end-to-end beam tuning on a small CG DAG. These guard the
//! auto-tuner's hot path — one candidate evaluation is a full (cheap)
//! schedule build + operand-granular simulation, and a beam run does
//! hundreds of them.

use cello_core::accel::CelloConfig;
use cello_search::{Candidate, SpaceConfig, Strategy, Tuner};
use cello_sim::evaluate::evaluate_schedule;
use cello_workloads::cg::{build_cg_dag, CgParams};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn small_cg() -> cello_graph::dag::TensorDag {
    build_cg_dag(&CgParams {
        m: 20_000,
        occupancy: 4.0,
        a_payload_words: 2 * 80_000 + 20_001,
        n: 16,
        nprime: 16,
        iterations: 2,
        a_occupancy: None,
    })
}

fn bench_single_eval(c: &mut Criterion) {
    let dag = small_cg();
    let accel = CelloConfig::paper();
    c.bench_function("dse/build+evaluate one candidate", |b| {
        b.iter(|| {
            let schedule = Candidate::paper_heuristic().build(&dag);
            black_box(evaluate_schedule(&dag, &schedule, &accel))
        })
    });
}

fn bench_beam(c: &mut Criterion) {
    let dag = small_cg();
    let accel = CelloConfig::paper();
    let mut g = c.benchmark_group("dse/tune");
    g.sample_size(10);
    g.bench_function("beam4 cg 2-iter (cold cache)", |b| {
        b.iter(|| {
            let tuner = Tuner::new(&dag, &accel, SpaceConfig::default());
            black_box(tuner.tune(&Strategy::Beam { width: 4 }))
        })
    });
    g.bench_function("random64 cg 2-iter (cold cache)", |b| {
        b.iter(|| {
            let tuner = Tuner::new(&dag, &accel, SpaceConfig::default());
            black_box(tuner.tune(&Strategy::Random {
                samples: 64,
                seed: 7,
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single_eval, bench_beam);
criterion_main!(benches);

//! Criterion benchmarks for SCORE itself: Algorithm 2 classification and full
//! schedule construction on unrolled CG DAGs. The paper's tractability claim
//! (§VI-B) is that SCORE's work is `O(nodes+edges)`-ish — scheduling 10
//! unrolled iterations must be microseconds-to-milliseconds, not a search.

use cello_core::score::binding::{build_schedule, ScheduleOptions};
use cello_core::score::classify::classify;
use cello_workloads::cg::{build_cg_dag, CgParams};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn params(iterations: u32) -> CgParams {
    CgParams {
        m: 81_920,
        occupancy: 4.0,
        a_payload_words: 2 * 327_680 + 81_921,
        n: 16,
        nprime: 16,
        iterations,
        a_occupancy: None,
    }
}

fn bench_classify(c: &mut Criterion) {
    let mut g = c.benchmark_group("score/classify");
    for iters in [2u32, 5, 10] {
        let dag = build_cg_dag(&params(iters));
        g.bench_with_input(BenchmarkId::from_parameter(iters), &dag, |b, dag| {
            b.iter(|| black_box(classify(dag)))
        });
    }
    g.finish();
}

fn bench_build_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("score/build_schedule");
    for iters in [2u32, 5, 10] {
        let dag = build_cg_dag(&params(iters));
        g.bench_with_input(BenchmarkId::from_parameter(iters), &dag, |b, dag| {
            b.iter(|| black_box(build_schedule(dag, ScheduleOptions::cello())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_classify, bench_build_schedule);
criterion_main!(benches);

//! Criterion benchmarks for the numeric tensor kernels on CG-shaped
//! (skewed) operands: SpMM, skewed GEMM, and the tall contraction — the
//! exact shapes §III-A argues are memory-bound.

use cello_tensor::dense::DenseMatrix;
use cello_tensor::gen::laplacian_2d;
use cello_tensor::kernels::{gemm, gemm_at_b, spmm};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn dense(rows: usize, cols: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    let mut s = 0x9E3779B97F4A7C15u64;
    for r in 0..rows {
        for c in 0..cols {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            m.set(r, c, (s % 1000) as f64 / 1000.0);
        }
    }
    m
}

fn bench_spmm(c: &mut Criterion) {
    let a = laplacian_2d(128, 128); // 16384 rows, ~5 nnz/row
    let p = dense(16_384, 16);
    let macs = (a.nnz() * 16) as u64;
    let mut g = c.benchmark_group("kernels/spmm");
    g.throughput(Throughput::Elements(macs));
    g.bench_function("laplacian 16k x16", |b| b.iter(|| black_box(spmm(&a, &p))));
    g.finish();
}

fn bench_skewed_gemm(c: &mut Criterion) {
    let a = dense(65_536, 16);
    let b_small = dense(16, 16);
    let mut g = c.benchmark_group("kernels/skewed_gemm");
    g.throughput(Throughput::Elements(65_536 * 16 * 16));
    g.bench_function("65536x16x16", |bch| {
        bch.iter(|| black_box(gemm(&a, &b_small)))
    });
    g.finish();
}

fn bench_contraction(c: &mut Criterion) {
    let p = dense(65_536, 16);
    let s = dense(65_536, 16);
    let mut g = c.benchmark_group("kernels/contraction");
    g.throughput(Throughput::Elements(65_536 * 16 * 16));
    g.bench_function("PtS 65536", |b| b.iter(|| black_box(gemm_at_b(&p, &s))));
    g.finish();
}

criterion_group!(benches, bench_spmm, bench_skewed_gemm, bench_contraction);
criterion_main!(benches);

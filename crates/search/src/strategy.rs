//! Search strategies: exhaustive, beam, seeded random sampling, the
//! symbolic tier-0 sweep, and the tiered analytic prefilter.
//!
//! Strategies only decide **which assignments to score**; scoring itself
//! (parallel evaluation, memoization, Pareto bookkeeping) lives in
//! [`crate::Tuner`]. All of them are deterministic — beam ties break on the
//! canonical schedule key, and `Random` draws from an explicit seed through
//! a SplitMix64 kept local to this crate so results never drift under
//! dependency swaps.

use serde::{Deserialize, Serialize};

/// How to traverse the space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Enumerate every assignment. Right for small DAG spaces (the
    /// [`crate::SearchSpace`] caps keep CG-sized spaces in the thousands).
    Exhaustive,
    /// Beam search over the decision sequence: expand one decision at a
    /// time, keep the `width` best partial assignments (unassigned
    /// decisions evaluate at their paper-heuristic defaults).
    Beam {
        /// Beam width (`>= 1`).
        width: usize,
    },
    /// Uniform random sampling of `samples` assignments from `seed` —
    /// the baseline the smarter strategies must beat.
    Random {
        /// Number of assignments drawn.
        samples: usize,
        /// RNG seed; same seed + same space ⇒ same candidates.
        seed: u64,
    },
    /// Tier-0 symbolic sweep ([`crate::tier0`]): enumerate up to `budget`
    /// assignments (the whole space when it fits, a seeded uniform sample
    /// otherwise), score each with the closed-form asymptotic cost sketch —
    /// no schedule build, no phase walk — and keep only the sketch-Pareto
    /// non-dominated set, capped at `keep`. The kept candidates are then
    /// concretely scored by whichever tier runs this traversal. On its own
    /// it is a coarse search; as the inner stage of [`Self::Prefiltered`]
    /// it is the wide mouth of the three-tier funnel.
    Tier0 {
        /// Max assignments sketched (the symbolic reach).
        budget: u64,
        /// Max sketch-Pareto survivors promoted to concrete scoring.
        keep: usize,
    },
    /// Tiered search: run `inner`'s traversal entirely on the analytic
    /// surrogate ([`crate::surrogate::surrogate_cost`], tier 1), rank every
    /// distinct schedule it visited, keep the top `keep_frac` fraction, and
    /// run `cello_sim::evaluate` only on those survivors (tier 2). Both
    /// tiers share the tuner's memo cache. `keep_frac >= 1.0` keeps the
    /// whole visited set — no pruning — so the tuner degenerates it to the
    /// inner strategy exactly. With [`Self::Tier0`] as `inner` this is the
    /// full three-tier funnel: tier 0 prunes symbolically, the surrogate
    /// ranks the survivors, the simulator scores the top fraction.
    Prefiltered {
        /// Fraction of surrogate-ranked candidates promoted to exact
        /// evaluation, clamped to `(0, 1]`; at least one always survives.
        keep_frac: f64,
        /// The traversal strategy tier 1 drives (a nested `Prefiltered`
        /// collapses to its own inner — prefiltering is idempotent).
        inner: Box<Strategy>,
    },
}

impl Strategy {
    /// Display label for reports.
    pub fn label(&self) -> String {
        match self {
            Strategy::Exhaustive => "exhaustive".into(),
            Strategy::Beam { width } => format!("beam{width}"),
            Strategy::Random { samples, seed } => format!("random{samples}@{seed}"),
            Strategy::Tier0 { budget, keep } => format!("tier0b{budget}k{keep}"),
            Strategy::Prefiltered { keep_frac, inner } => {
                format!("prefilter{keep_frac}+{}", inner.label())
            }
        }
    }

    /// Convenience constructor for the common two-tier shape.
    pub fn prefiltered(keep_frac: f64, inner: Strategy) -> Self {
        Strategy::Prefiltered {
            keep_frac,
            inner: Box::new(inner),
        }
    }

    /// Parses a [`Self::label`]-shaped string back into a strategy —
    /// `"exhaustive"`, `"beam8"`, `"random64@7"`, `"tier0b4096k32"`,
    /// `"prefilter0.1+tier0b4096k32"` — the wire format `cello-serve`
    /// requests carry. Returns `None` on anything else (a typed protocol
    /// error at the daemon, never a panic). Parsed parameters are
    /// validity-clamped the same way the tuner clamps them (width ≥ 1,
    /// budget/keep ≥ 1, `keep_frac ∈ (0, 1]`).
    pub fn parse(label: &str) -> Option<Strategy> {
        let label = label.trim();
        if label == "exhaustive" {
            return Some(Strategy::Exhaustive);
        }
        // Before "beam": "tier0…" does not share a prefix, but keep the
        // more specific pattern first anyway.
        if let Some(rest) = label.strip_prefix("tier0b") {
            let (budget, keep) = rest.split_once('k')?;
            let budget: u64 = budget.parse().ok()?;
            let keep: usize = keep.parse().ok()?;
            return Some(Strategy::Tier0 {
                budget: budget.max(1),
                keep: keep.max(1),
            });
        }
        if let Some(rest) = label.strip_prefix("beam") {
            let width: usize = rest.parse().ok()?;
            return Some(Strategy::Beam {
                width: width.max(1),
            });
        }
        if let Some(rest) = label.strip_prefix("random") {
            let (samples, seed) = rest.split_once('@')?;
            return Some(Strategy::Random {
                samples: samples.parse().ok()?,
                seed: seed.parse().ok()?,
            });
        }
        if let Some(rest) = label.strip_prefix("prefilter") {
            let (frac, inner) = rest.split_once('+')?;
            let keep_frac: f64 = frac.parse().ok()?;
            if !(keep_frac > 0.0 && keep_frac <= 1.0) {
                return None;
            }
            // One level of nesting only, matching the tuner's flattening of
            // nested prefilters (prefiltering is idempotent).
            if inner.starts_with("prefilter") {
                return None;
            }
            return Some(Strategy::prefiltered(keep_frac, Strategy::parse(inner)?));
        }
        None
    }
}

/// Deterministic SplitMix64 used by [`Strategy::Random`].
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Strategy::Exhaustive.label(), "exhaustive");
        assert_eq!(Strategy::Beam { width: 4 }.label(), "beam4");
        assert_eq!(
            Strategy::Random {
                samples: 9,
                seed: 1
            }
            .label(),
            "random9@1"
        );
        assert_eq!(
            Strategy::prefiltered(0.1, Strategy::Beam { width: 8 }).label(),
            "prefilter0.1+beam8"
        );
        assert_eq!(
            Strategy::Tier0 {
                budget: 4096,
                keep: 32
            }
            .label(),
            "tier0b4096k32"
        );
        assert_eq!(
            Strategy::prefiltered(
                0.1,
                Strategy::Tier0 {
                    budget: 12288,
                    keep: 48
                }
            )
            .label(),
            "prefilter0.1+tier0b12288k48"
        );
    }

    /// `parse` inverts `label` on every strategy shape the wire carries, and
    /// rejects garbage with `None` instead of panicking.
    #[test]
    fn parse_inverts_label() {
        for s in [
            Strategy::Exhaustive,
            Strategy::Beam { width: 8 },
            Strategy::Random {
                samples: 64,
                seed: 7,
            },
            Strategy::prefiltered(0.1, Strategy::Beam { width: 8 }),
            Strategy::prefiltered(0.25, Strategy::Exhaustive),
            Strategy::Tier0 {
                budget: 4096,
                keep: 32,
            },
            Strategy::prefiltered(
                0.1,
                Strategy::Tier0 {
                    budget: 12288,
                    keep: 48,
                },
            ),
        ] {
            assert_eq!(Strategy::parse(&s.label()), Some(s.clone()), "{s:?}");
        }
        for bad in [
            "",
            "beam",
            "beam-1",
            "beamx",
            "random64",
            "random@7",
            "prefilter+beam4",
            "prefilter0+beam4",
            "prefilter1.5+beam4",
            "prefilter0.1+prefilter0.1+beam4",
            "annealed",
            "beam4 extra",
            "tier0b",
            "tier0b4096",
            "tier0bxk4",
            "tier0b4096k",
        ] {
            assert_eq!(Strategy::parse(bad), None, "{bad:?} should not parse");
        }
        // Clamps mirror the tuner's.
        assert_eq!(Strategy::parse("beam0"), Some(Strategy::Beam { width: 1 }));
        assert_eq!(
            Strategy::parse("tier0b0k0"),
            Some(Strategy::Tier0 { budget: 1, keep: 1 })
        );
    }

    #[test]
    fn splitmix_deterministic_and_in_bounds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let (x, y) = (a.below(17), b.below(17));
            assert_eq!(x, y);
            assert!(x < 17);
        }
    }
}

//! Tier-0: closed-form asymptotic cost sketches + symbolic dominance
//! pruning — the wide mouth of the three-tier DSE funnel.
//!
//! The two concrete tiers both pay a per-candidate fixed cost that has
//! nothing to do with scoring: `Candidate::build` materializes a schedule
//! through the constraint-validating builder, and even the analytic
//! surrogate then walks the phase plan. That caps how many candidates a
//! search can *consider* per second, which caps how wide a space it can
//! reach. Tier 0 scores an assignment **without building its schedule**:
//! a [`Sketch`] of four monotone resource terms is computed directly from
//! the [`SearchSpace`] decision vector and DAG-level quantities
//! precomputed once per space. [`Tier0Model::new`] builds one default
//! schedule per (scheduler preset × SRAM split) pair — a few dozen builds
//! total, paid once — and the per-assignment sketch afterwards is
//! O(decisions) with no allocation.
//!
//! The split axis matters to the *DRAM* term, not just capacity: the
//! pipeline buffer gates which edges can realize at all
//! (`pipeline_can_stream`), so a lean split that donates SRAM to CHORD
//! also blocks fusion and round-trips the unrealized intermediates. A
//! capacity-only model would let lean splits falsely dominate fat ones;
//! baking the split into the precomputed DRAM base keeps dominance honest.
//!
//! The four sketch terms, all in machine units so dominance is meaningful:
//!
//! 1. **DRAM floor words** — cold external reads, terminal writebacks,
//!    round-trips of intermediates the (preset, split) leaves unrealized,
//!    per-use streaming of DRAM-steered tensors, plus cut decisions'
//!    consequences;
//! 2. **NoC word-hops** — the §V-B closed forms per partition choice:
//!    `0` single-node, small-tensor broadcast/reduce over the mesh
//!    diameter for rank slicing, full intermediates over the NoC for stage
//!    splitting;
//! 3. **CHORD spill words** — a greedy priority-ordered fill of the hot
//!    CHORD-bound tensors (bias decisions re-weight the fill order, rank
//!    slicing shrinks sliced footprints `1/nodes`) against the split's
//!    CHORD capacity; whatever does not fit streams per use. Under an
//!    overbook decision ([`crate::space::Choice::Overbook`]) an
//!    occupancy-carrying tensor fills at its *granted*
//!    (expected-occupancy) footprint instead of its worst-case-dense one,
//!    shrinks its external cold fill on the DRAM axis by the same grant,
//!    and charges the Tailors-style variance tail on this axis — the
//!    exact `granted/spill` split [`cello_sim::phases::plan_phases`]
//!    applies, so the sketch's axes move the way the concrete tiers will;
//! 4. **cycle proxy** — the roofline `max(compute, DRAM)` over the terms
//!    above plus NoC transfer cycles; under a transfer-tuning decision
//!    ([`crate::space::Choice::Transfer`]) only the *exposed* fraction of
//!    the DRAM cycles enters the max (see [`Tier0Model::sketch`]), while
//!    the prefetch staging carve shrinks the CHORD capacity the spill
//!    term fills against.
//!
//! A candidate whose sketch is elementwise `>=` another's (and strictly
//! `>` somewhere) cannot beat it under any cost model monotone in these
//! resources — it is **symbolically dominated** and pruned without ever
//! being built. Equal sketches are mutually non-dominating and both
//! survive, so pruning alone never separates candidates the sketch cannot
//! tell apart; the `keep` cap (scalar-magnitude tiebreak) is the only
//! lossy step, and the tier-0 soundness proptest pins that with cap slack
//! the surviving set always contains the sim-optimal candidate.

use crate::candidate::Candidate;
use crate::space::{Choice, SearchSpace};
use crate::strategy::SplitMix64;
use cello_core::accel::CelloConfig;
use cello_core::chord::PriorityBias;
use cello_core::score::binding::Binding;
use cello_core::score::multinode::{NocModel, Partition, PartitionAxis};
use cello_core::{ChordOverbook, TransferTuning};
use cello_graph::dag::TensorDag;
use cello_tensor::shape::RankId;
use cello_tensor::sparse::OccupancyStats;
use std::collections::HashMap;

/// Cap on the pressure list (hot CHORD tensors + cuttable intermediates)
/// the greedy fill scans per sketch — keeps the per-candidate cost O(1).
/// Must stay ≤ 32 (pressure sets are `u32` bitmasks).
const MAX_PRESSURE: usize = 16;

/// Cap on (preset × split) base schedules ≤ 64 (membership bitmasks are
/// `u64`). Six presets × six splits fits; degenerate hand-built spaces
/// that exceed it fall back to the last base.
const MAX_BASES: usize = 64;

/// The four-term asymptotic cost sketch (see module docs for the terms).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sketch(pub [u64; 4]);

impl Sketch {
    /// Elementwise `<=` with strict `<` somewhere: `self`'s candidate is
    /// at least as cheap on every resource and strictly cheaper on one, so
    /// any cost model monotone in the terms prefers it.
    pub fn dominates(&self, other: &Sketch) -> bool {
        let mut strict = false;
        for i in 0..4 {
            if self.0[i] > other.0[i] {
                return false;
            }
            strict |= self.0[i] < other.0[i];
        }
        strict
    }

    /// Scalar magnitude for the `keep`-cap tiebreak among mutually
    /// non-dominated sketches (smaller = kept first). Not used for
    /// pruning — only for choosing which front members to drop when the
    /// front outgrows the cap.
    pub fn scalar(&self) -> u64 {
        self.0[0]
            .saturating_add(self.0[1])
            .saturating_add(self.0[2])
            .saturating_add(self.0[3])
    }
}

/// One potential occupant of CHORD capacity: a hot CHORD-bound tensor from
/// a base schedule, or an intermediate a cut decision can push out of the
/// pipeline into CHORD.
struct PressureTensor {
    words: u64,
    /// Reads after production (consumer count) — the per-use streaming
    /// multiplier for whatever spills.
    uses: u64,
    /// Static fill priority (hotter = filled first).
    score: u64,
    /// The tensor's ranks, to detect `1/nodes` footprint slicing.
    ranks: Vec<RankId>,
    /// External input ⇔ its cold DRAM fill lives in the base `dram_words`
    /// and shrinks with an overbooked grant.
    external: bool,
    /// Measured nonzero structure, when the workload carried one — the
    /// gate for the overbook decision's effect on this tensor.
    occupancy: Option<OccupancyStats>,
    /// Bit `b` set ⇔ CHORD-bound under base schedule `b` (already
    /// competing for capacity without any cut).
    member: u64,
}

/// What one (preset, SRAM split) pair fixes before the per-assignment
/// decisions apply.
struct Base {
    chord_on: bool,
    /// DRAM floor words of this pair's default schedule — includes the
    /// round-trips of edges the split's pipeline buffer blocks.
    dram_words: u64,
}

/// Closed-form consequences of one partition choice.
struct PartitionChoice {
    nodes: u64,
    sliced: Option<RankId>,
    noc_word_hops: u64,
}

/// Consequences of one repartition profile: which split's base models its
/// fused-phase realizability, and the (optimistic) CHORD capacity of its
/// most generous phase.
struct RepartitionChoice {
    base_split: Option<usize>,
    capacity: u64,
}

/// Per-decision sketch effect, aligned with `space.decisions`.
enum Effect {
    /// The preset decision.
    Preset,
    /// The SRAM-split decision: per-choice CHORD capacity words.
    SramSplit(Vec<u64>),
    /// Partition decision: per-choice closed forms.
    Partition(Vec<PartitionChoice>),
    /// Per-phase repartition: per-choice override (`None` = keep the
    /// global split).
    Repartition(Vec<Option<RepartitionChoice>>),
    /// Cut decision (choice 1 = enabled): pressure-list index of the
    /// intermediate it unrealizes.
    Cut { pressure: usize },
    /// Steer decision (choice 1 = DRAM): pressure-list index of the
    /// steered tensor.
    Steer { pressure: Option<usize> },
    /// Bias decision: per-choice signed magnitude (`+l` boost, `-l`
    /// demote, `0` neutral) applied to the tensor's fill score.
    Bias {
        pressure: Option<usize>,
        shift: Vec<i8>,
    },
    /// Transfer-tuning decision: per-choice prefetch/double-buffer
    /// setting (choice 0 is always "off").
    Transfer(Vec<TransferTuning>),
    /// Overbook decision: per-choice CHORD overbooking level (choice 0 is
    /// always the worst-case-dense "off").
    Overbook(Vec<ChordOverbook>),
    /// Decisions the sketch cannot see (loop-order flips are cost-neutral
    /// intra-op by construction — §V-B).
    Inert,
}

/// Result of a tier-0 sweep.
pub struct Tier0Prune {
    /// Surviving assignments (sketch-Pareto, capped), in admission order.
    pub kept: Vec<Vec<usize>>,
    /// Assignments sketched.
    pub swept: u64,
}

/// The per-space precomputation that makes sketches build-free (see
/// module docs).
pub struct Tier0Model {
    /// Indexed `preset * n_splits + split`.
    bases: Vec<Base>,
    n_splits: usize,
    pressure: Vec<PressureTensor>,
    effects: Vec<Effect>,
    /// CHORD capacity when no SRAM-split decision exists (derived spaces
    /// always have one, but the model stays total).
    default_capacity: u64,
    compute_macs: u64,
    pe_count: u64,
    word_bytes: u64,
    /// Quantum for the prefetch staging carve
    /// ([`cello_core::TransferTuning::staging_words`]).
    staging_quantum_words: u64,
    /// DRAM bytes transferred per core cycle (bandwidth / frequency).
    dram_bytes_per_cycle: u64,
    /// NoC bytes per core cycle per link.
    noc_bytes_per_cycle: u64,
}

impl Tier0Model {
    /// Precomputes sketch ingredients for `space` over `dag`/`accel`: one
    /// default schedule per (preset, SRAM split) pair — the only builds
    /// tier 0 ever pays — the unified CHORD pressure list, and
    /// per-decision effects.
    pub fn new(dag: &TensorDag, accel: &CelloConfig, space: &SearchSpace) -> Self {
        // Tensor name -> (words, uses, ranks, occupancy) over node outputs
        // and externals.
        #[allow(clippy::type_complexity)]
        let mut meta: HashMap<&str, (u64, u64, &[RankId], Option<OccupancyStats>)> = HashMap::new();
        for (id, node) in dag.nodes() {
            let uses = dag.edges().filter(|(_, e)| e.src == id.0).count() as u64;
            meta.insert(
                &node.output.name,
                (
                    node.output.words,
                    uses,
                    &node.output.ranks,
                    node.output.occupancy,
                ),
            );
        }
        for ext in dag.externals() {
            meta.insert(
                &ext.meta.name,
                (
                    ext.meta.words,
                    ext.consumers.len() as u64,
                    &ext.meta.ranks,
                    ext.meta.occupancy,
                ),
            );
        }

        let preset_di = space
            .decisions
            .iter()
            .position(|d| matches!(d.choices.first(), Some(Choice::Preset { .. })));
        let split_di = space
            .decisions
            .iter()
            .position(|d| matches!(d.choices.first(), Some(Choice::SramSplit { .. })));
        let preset_count = preset_di.map_or(1, |di| space.decisions[di].choices.len());
        let n_splits = split_di.map_or(1, |di| space.decisions[di].choices.len());

        // Build each (preset, split) default schedule once; derive its DRAM
        // floor and which tensors it binds to CHORD.
        let mut bases = Vec::with_capacity((preset_count * n_splits).min(MAX_BASES));
        let mut pressure: Vec<PressureTensor> = Vec::new();
        let mut pressure_idx: HashMap<String, usize> = HashMap::new();
        'bases: for pi in 0..preset_count {
            for si in 0..n_splits {
                if bases.len() >= MAX_BASES {
                    break 'bases;
                }
                let base_bit = bases.len();
                let mut c = Candidate::paper_heuristic();
                if let Some(di) = preset_di {
                    space.apply_pick(&mut c, di, pi);
                }
                if let Some(di) = split_di {
                    space.apply_pick(&mut c, di, si);
                }
                let schedule = c.build(dag);
                let chord_on = schedule.options.enable_chord;
                let mut dram_words = 0u64;
                for (name, binding) in &schedule.binding {
                    let &(words, uses, ranks, occupancy) = match meta.get(name.as_str()) {
                        Some(m) => m,
                        None => continue,
                    };
                    let external = dag.externals().iter().any(|e| &e.meta.name == name);
                    let terminal = !external && uses == 0;
                    match binding {
                        Binding::Dram => {
                            // Streams per use; producers also write it out.
                            dram_words += words * uses.max(1);
                            if !external {
                                dram_words += words;
                            }
                        }
                        Binding::Chord => {
                            // Cold fill once (externals) / eventual
                            // terminal writeback; re-use cost is the spill
                            // term's job.
                            if external || terminal {
                                dram_words += words;
                            }
                            let idx = *pressure_idx.entry(name.clone()).or_insert_with(|| {
                                pressure.push(PressureTensor {
                                    words,
                                    uses: uses.max(1),
                                    score: pressure_score(words, uses),
                                    ranks: ranks.to_vec(),
                                    external,
                                    occupancy,
                                    member: 0,
                                });
                                pressure.len() - 1
                            });
                            pressure[idx].member |= 1 << base_bit;
                        }
                        Binding::RegisterFile => {
                            if external {
                                dram_words += words; // one cold load
                            }
                        }
                        Binding::Pipeline => {}
                    }
                }
                bases.push(Base {
                    chord_on,
                    dram_words,
                });
            }
        }

        // Per-decision effects. Cut decisions add their intermediate to the
        // pressure list: under build-free sketching a cut's effect is "this
        // tensor now competes for CHORD" (or round-trips DRAM with CHORD
        // off).
        let mut effects = Vec::with_capacity(space.decisions.len());
        for d in &space.decisions {
            let effect = match d.choices.first() {
                Some(Choice::Preset { .. }) => Effect::Preset,
                Some(Choice::SramSplit { .. }) => {
                    let caps = d
                        .choices
                        .iter()
                        .map(|c| match c {
                            Choice::SramSplit {
                                pipeline_words,
                                rf_words,
                            } => accel.sram_words().saturating_sub(pipeline_words + rf_words),
                            _ => 0,
                        })
                        .collect();
                    Effect::SramSplit(caps)
                }
                Some(Choice::Partition { .. }) => {
                    let choices = d
                        .choices
                        .iter()
                        .map(|c| match c {
                            Choice::Partition { partition } => partition_choice(dag, *partition),
                            _ => PartitionChoice {
                                nodes: 1,
                                sliced: None,
                                noc_word_hops: 0,
                            },
                        })
                        .collect();
                    Effect::Partition(choices)
                }
                Some(Choice::Repartition { .. }) => {
                    let splits: Vec<(u64, u64)> = split_di
                        .map(|di| {
                            space.decisions[di]
                                .choices
                                .iter()
                                .map(|c| match c {
                                    Choice::SramSplit {
                                        pipeline_words,
                                        rf_words,
                                    } => (*pipeline_words, *rf_words),
                                    _ => (0, 0),
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    let choices = d
                        .choices
                        .iter()
                        .map(|c| match c {
                            Choice::Repartition { profile: Some(p) } => {
                                // The most generous phase's capacity — the
                                // optimistic (sound) direction for a floor —
                                // and the fused phase's split for
                                // realizability, when the split menu has it.
                                let fused =
                                    p.fused.pipeline_buffer_words + p.fused.rf_capacity_words;
                                let solo = p.solo.pipeline_buffer_words + p.solo.rf_capacity_words;
                                Some(RepartitionChoice {
                                    base_split: splits.iter().position(|&(pw, rw)| {
                                        pw == p.fused.pipeline_buffer_words
                                            && rw == p.fused.rf_capacity_words
                                    }),
                                    capacity: accel.sram_words().saturating_sub(fused.min(solo)),
                                })
                            }
                            _ => None,
                        })
                        .collect();
                    Effect::Repartition(choices)
                }
                Some(Choice::Cut { node, .. }) => {
                    // The intermediate a cut before `node` stops streaming:
                    // its first incoming edge's producer output.
                    let name = dag
                        .edges()
                        .find(|(_, e)| e.dst == *node)
                        .and_then(|(_, e)| {
                            dag.nodes()
                                .find(|(id, _)| id.0 == e.src)
                                .map(|(_, n)| n.output.name.clone())
                        });
                    match name {
                        Some(name) => {
                            let idx = *pressure_idx.entry(name.clone()).or_insert_with(|| {
                                let (words, uses, ranks, occupancy) = meta
                                    .get(name.as_str())
                                    .copied()
                                    .unwrap_or((0, 1, &[], None));
                                pressure.push(PressureTensor {
                                    words,
                                    uses: uses.max(1),
                                    score: pressure_score(words, uses),
                                    ranks: ranks.to_vec(),
                                    // Cut intermediates are node outputs.
                                    external: false,
                                    occupancy,
                                    member: 0,
                                });
                                pressure.len() - 1
                            });
                            Effect::Cut { pressure: idx }
                        }
                        None => Effect::Inert,
                    }
                }
                Some(Choice::Steer { tensor, .. }) => Effect::Steer {
                    pressure: pressure_idx.get(tensor.as_str()).copied(),
                },
                Some(Choice::Transfer { .. }) => {
                    let menu = d
                        .choices
                        .iter()
                        .map(|c| match c {
                            Choice::Transfer { tuning } => tuning.normalized(),
                            _ => TransferTuning::off(),
                        })
                        .collect();
                    Effect::Transfer(menu)
                }
                Some(Choice::Overbook { .. }) => {
                    let menu = d
                        .choices
                        .iter()
                        .map(|c| match c {
                            Choice::Overbook { overbook } => overbook.normalized(),
                            _ => ChordOverbook::off(),
                        })
                        .collect();
                    Effect::Overbook(menu)
                }
                Some(Choice::ChordBias { tensor, .. }) => {
                    let shift = d
                        .choices
                        .iter()
                        .map(|c| match c {
                            Choice::ChordBias {
                                bias: Some(b @ PriorityBias::Boost(_)),
                                ..
                            } => b.level() as i8,
                            Choice::ChordBias {
                                bias: Some(b @ PriorityBias::Demote(_)),
                                ..
                            } => -(b.level() as i8),
                            _ => 0i8,
                        })
                        .collect();
                    Effect::Bias {
                        pressure: pressure_idx.get(tensor.as_str()).copied(),
                        shift,
                    }
                }
                _ => Effect::Inert,
            };
            effects.push(effect);
        }

        // Keep the pressure list bounded: heaviest tensors first, then
        // re-point the effects at the surviving indices (dropped tensors'
        // DRAM consequences stay covered by the bases).
        if pressure.len() > MAX_PRESSURE {
            let mut order: Vec<usize> = (0..pressure.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(pressure[i].words));
            order.truncate(MAX_PRESSURE);
            let mut remap: HashMap<usize, usize> = HashMap::new();
            let mut trimmed: Vec<PressureTensor> = Vec::with_capacity(MAX_PRESSURE);
            for &old_i in &order {
                remap.insert(old_i, trimmed.len());
                trimmed.push(std::mem::replace(
                    &mut pressure[old_i],
                    PressureTensor {
                        words: 0,
                        uses: 1,
                        score: 0,
                        ranks: Vec::new(),
                        external: false,
                        occupancy: None,
                        member: 0,
                    },
                ));
            }
            pressure = trimmed;
            for effect in &mut effects {
                match effect {
                    Effect::Cut { pressure: p } => match remap.get(p) {
                        Some(&n) => *p = n,
                        None => *effect = Effect::Inert,
                    },
                    Effect::Steer { pressure: p } | Effect::Bias { pressure: p, .. } => {
                        *p = p.and_then(|old| remap.get(&old).copied());
                    }
                    _ => {}
                }
            }
        }

        let compute_macs: u64 = dag.nodes().map(|(_, n)| n.spec.macs()).sum();
        Self {
            bases,
            n_splits,
            pressure,
            effects,
            default_capacity: accel
                .sram_words()
                .saturating_sub(accel.pipeline_buffer_words + accel.rf_capacity_words),
            compute_macs,
            pe_count: accel.pe_count.max(1),
            word_bytes: accel.word_bytes as u64,
            staging_quantum_words: accel.staging_quantum_words,
            dram_bytes_per_cycle: ((accel.dram.bandwidth_bytes_per_sec / accel.freq_hz) as u64)
                .max(1),
            noc_bytes_per_cycle: ((accel.noc_bandwidth_bytes_per_sec / accel.freq_hz) as u64)
                .max(1),
        }
    }

    /// Sketches one assignment — O(decisions + pressure), no allocation,
    /// no schedule build.
    pub fn sketch(&self, picks: &[usize]) -> Sketch {
        debug_assert_eq!(picks.len(), self.effects.len());
        let mut preset = 0usize;
        let mut base_split = 0usize;
        let mut capacity = self.default_capacity;
        let mut nodes = 1u64;
        let mut sliced: Option<RankId> = None;
        let mut noc_word_hops = 0u64;
        let mut steered: u32 = 0;
        let mut cuts: u32 = 0;
        let mut shifts = [0i8; MAX_PRESSURE];
        let mut transfer = TransferTuning::off();
        let mut overbook = ChordOverbook::off();
        for (effect, &pick) in self.effects.iter().zip(picks) {
            match effect {
                Effect::Preset => preset = pick,
                Effect::SramSplit(caps) => {
                    base_split = pick.min(caps.len().saturating_sub(1));
                    capacity = caps[base_split];
                }
                Effect::Partition(choices) => {
                    let c = &choices[pick.min(choices.len() - 1)];
                    nodes = c.nodes;
                    sliced = c.sliced;
                    noc_word_hops = c.noc_word_hops;
                }
                Effect::Repartition(choices) => {
                    if let Some(Some(r)) = choices.get(pick) {
                        capacity = r.capacity;
                        if let Some(s) = r.base_split {
                            base_split = s;
                        }
                    }
                }
                Effect::Cut { pressure } => {
                    if pick == 1 {
                        cuts |= 1 << pressure;
                    }
                }
                Effect::Steer { pressure } => {
                    if pick == 1 {
                        if let Some(p) = pressure {
                            steered |= 1 << p;
                        }
                    }
                }
                Effect::Bias { pressure, shift } => {
                    if let Some(p) = pressure {
                        shifts[*p] = shift[pick.min(shift.len() - 1)];
                    }
                }
                Effect::Transfer(menu) => {
                    transfer = menu[pick.min(menu.len() - 1)];
                }
                Effect::Overbook(menu) => {
                    overbook = menu[pick.min(menu.len() - 1)];
                }
                Effect::Inert => {}
            }
        }

        let base_idx = (preset * self.n_splits + base_split).min(self.bases.len() - 1);
        let base = &self.bases[base_idx];
        let mut dram_words = base.dram_words;
        let mut spill_words = 0u64;
        if base.chord_on {
            // Gather the live pressure set (base members + enabled cuts,
            // minus DRAM-steered) into a fixed-size descending-score fill.
            let mut order = [0usize; MAX_PRESSURE];
            let mut scores = [0u64; MAX_PRESSURE];
            let mut len = 0usize;
            for (i, t) in self.pressure.iter().enumerate() {
                let resident = (t.member >> base_idx) & 1 == 1;
                if (steered >> i) & 1 == 1 {
                    if resident {
                        // Steered to DRAM: streams per use instead of
                        // competing for CHORD.
                        dram_words += t.words * t.uses;
                    }
                    continue;
                }
                if !resident && (cuts >> i) & 1 != 1 {
                    continue;
                }
                let shift = shifts[i];
                let score = if shift >= 0 {
                    t.score << shift as u32
                } else {
                    t.score >> (-shift) as u32
                };
                // Insertion sort: descending score, earlier index on ties.
                let mut j = len;
                while j > 0 && scores[j - 1] < score {
                    scores[j] = scores[j - 1];
                    order[j] = order[j - 1];
                    j -= 1;
                }
                scores[j] = score;
                order[j] = i;
                len += 1;
            }
            // The prefetch staging region comes out of whatever CHORD
            // capacity the split (or repartition override) left — the same
            // carve the sim applies in `phase_chord_capacity_words`.
            let mut remaining =
                capacity.saturating_sub(transfer.staging_words(self.staging_quantum_words));
            for &i in &order[..len] {
                let t = &self.pressure[i];
                let eff_words = match sliced {
                    Some(r) if t.ranks.contains(&r) => (t.words / nodes).max(1),
                    _ => t.words,
                };
                // Overbooked grant: occupancy-carrying tensors reserve
                // capacity at expected occupancy and pay the variance tail
                // on the spill axis — the same `granted/spill` split
                // `plan_phases` applies. Off (or absent occupancy) is the
                // identity, so overbook-free sketches are unchanged.
                let (need, ob_spill) = match t.occupancy {
                    Some(occ) if !overbook.is_off() => (
                        overbook.granted_words(eff_words, &occ),
                        overbook.spill_words(eff_words, &occ),
                    ),
                    _ => (eff_words, 0),
                };
                if t.external {
                    // The cold DRAM fill shrinks with the grant, exactly
                    // as the engine's occupancy-scaled access words do.
                    dram_words = dram_words.saturating_sub(eff_words - need);
                }
                spill_words = spill_words.saturating_add(ob_spill.saturating_mul(t.uses));
                let granted = need.min(remaining);
                remaining -= granted;
                spill_words = spill_words.saturating_add((need - granted) * t.uses);
            }
        } else {
            // CHORD off: every enabled cut's intermediate round-trips DRAM.
            for (i, t) in self.pressure.iter().enumerate() {
                if (cuts >> i) & 1 == 1 {
                    dram_words = dram_words.saturating_add(t.words * (1 + t.uses));
                }
            }
        }

        let compute_cycles = self.compute_macs.div_ceil(self.pe_count).div_ceil(nodes);
        let dram_cycles = (dram_words.saturating_add(spill_words))
            .saturating_mul(self.word_bytes)
            .div_ceil(self.dram_bytes_per_cycle.saturating_mul(nodes));
        let noc_cycles = noc_word_hops
            .saturating_mul(self.word_bytes)
            .div_ceil(self.noc_bytes_per_cycle);
        // Overlap-aware cycle proxy. Depth 0 is the serialized roofline,
        // bit-identical to the pre-overlap sketch. With a prefetch window
        // of depth `d`, double-buffered transfers expose only ~1/(d+1) of
        // the DRAM cycles (each phase's inbound hides behind up to `d`
        // predecessors); single-buffered prefetch can only use idle
        // bandwidth, so it never exposes less than the memory-over-compute
        // excess. The asymmetry keeps off/sb/db sketches mutually
        // non-dominated (the carve above already charges the spill axis),
        // so the soundness proptest's covering property survives.
        let cycles = if transfer.is_off() {
            compute_cycles.max(dram_cycles) + noc_cycles
        } else {
            let window = transfer.prefetch_depth as u64 + 1;
            let pipelined = dram_cycles.div_ceil(window);
            let exposed = if transfer.double_buffer {
                pipelined
            } else {
                dram_cycles.saturating_sub(compute_cycles).max(pipelined)
            };
            compute_cycles.max(exposed) + noc_cycles
        };
        Sketch([dram_words, noc_word_hops, spill_words, cycles])
    }

    /// Sweeps up to `budget` assignments of `space` (the full odometer when
    /// it fits, a seeded uniform sample otherwise) and returns the
    /// sketch-Pareto survivors, capped at `keep` by scalar magnitude.
    /// Deterministic: same space + budget + keep + seed ⇒ same survivors.
    pub fn prune(&self, space: &SearchSpace, budget: u64, keep: usize, seed: u64) -> Tier0Prune {
        let budget = budget.max(1);
        let keep = keep.max(1);
        let total = space.exhaustive_size();
        struct Entry {
            sketch: Sketch,
            scalar: u64,
            order: u64,
            picks: Vec<usize>,
        }
        // `keep` may be enormous ("keep everything"); cap the pre-allocation,
        // not the logic.
        let mut kept: Vec<Entry> = Vec::with_capacity(keep.saturating_add(1).min(4096));
        let consider = |picks: &[usize], order: u64, kept: &mut Vec<Entry>| {
            let sketch = self.sketch(picks);
            if kept.iter().any(|k| k.sketch.dominates(&sketch)) {
                return;
            }
            kept.retain(|k| !sketch.dominates(&k.sketch));
            kept.push(Entry {
                sketch,
                scalar: sketch.scalar(),
                order,
                picks: picks.to_vec(),
            });
            if kept.len() > keep {
                // Drop the worst non-dominated survivor: largest scalar,
                // latest admission on ties (incumbents win).
                let worst = kept
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, k)| (k.scalar, k.order))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                kept.remove(worst);
            }
        };
        let radices: Vec<usize> = space.decisions.iter().map(|d| d.choices.len()).collect();
        let mut picks = vec![0usize; radices.len()];
        let swept;
        if total <= budget {
            // Exhaustive odometer walk, in-place increments (same order as
            // `SearchSpace::index_to_picks`).
            for order in 0..total {
                consider(&picks, order, &mut kept);
                for (p, &radix) in picks.iter_mut().zip(&radices) {
                    *p += 1;
                    if *p < radix {
                        break;
                    }
                    *p = 0;
                }
            }
            swept = total;
        } else {
            // Same stream as `SearchSpace::sample_assignments`, drawn into
            // a reused buffer.
            let mut rng = SplitMix64::new(seed);
            for order in 0..budget {
                for (p, &radix) in picks.iter_mut().zip(&radices) {
                    *p = rng.below(radix as u64) as usize;
                }
                consider(&picks, order, &mut kept);
            }
            swept = budget;
        }
        kept.sort_by_key(|k| k.order);
        Tier0Prune {
            kept: kept.into_iter().map(|k| k.picks).collect(),
            swept,
        }
    }
}

/// Reuse-density fill priority: reused words fill before single-use ones;
/// among equal reuse, smaller tensors first (more reuse per capacity
/// word). Headroom above bit 20 keeps ±[`cello_core::chord::MAX_BIAS_LEVEL`]
/// shifts meaningful without overflow.
fn pressure_score(words: u64, uses: u64) -> u64 {
    (uses.max(1) << 20) | ((1 << 19) - words.min((1 << 19) - 1))
}

/// Closed-form NoC consequences of one partition choice (§V-B).
fn partition_choice(dag: &TensorDag, partition: Partition) -> PartitionChoice {
    if !partition.is_multi() {
        return PartitionChoice {
            nodes: 1,
            sliced: None,
            noc_word_hops: 0,
        };
    }
    let noc = NocModel::new(partition.nodes);
    let noc_word_hops = match partition.axis {
        PartitionAxis::Rank(rank) => {
            // Scalable dataflow (Fig 8 bottom): only tensors *not* carrying
            // the sliced rank cross the NoC — externals broadcast in,
            // partial outputs reduce out, each over the mesh diameter.
            let mut words = 0u64;
            for ext in dag.externals() {
                if !ext.meta.ranks.contains(&rank) {
                    words =
                        words.saturating_add(ext.meta.words.saturating_mul(noc.hops_broadcast()));
                }
            }
            for (_, node) in dag.nodes() {
                if !node.output.ranks.contains(&rank) {
                    words =
                        words.saturating_add(node.output.words.saturating_mul(noc.hops_reduce()));
                }
            }
            words
        }
        PartitionAxis::Stage => {
            // Naive strategy (Fig 8 top): every producer→consumer
            // intermediate ships in full between stage nodes.
            let mut words = 0u64;
            for (_, edge) in dag.edges() {
                if let Some((_, node)) = dag.nodes().find(|(id, _)| id.0 == edge.src) {
                    words = words.saturating_add(node.output.words);
                }
            }
            words
        }
    };
    PartitionChoice {
        nodes: partition.nodes,
        sliced: partition.sliced_rank(),
        noc_word_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceConfig;
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn cg(iters: u32) -> TensorDag {
        build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: iters,
            a_occupancy: None,
        })
    }

    #[test]
    fn dominance_is_elementwise_and_strict() {
        let a = Sketch([1, 2, 3, 4]);
        let b = Sketch([1, 2, 3, 5]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "equal sketches never dominate");
        let c = Sketch([0, 9, 3, 4]); // trade on term 1
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    /// The default assignment's sketch is finite and sane: nonzero DRAM
    /// floor (externals must be read), zero NoC (single-node), and a cycle
    /// proxy at least the compute roofline.
    #[test]
    fn default_sketch_is_sane() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        let model = Tier0Model::new(&dag, &accel, &space);
        let s = model.sketch(&space.default_picks());
        assert!(s.0[0] > 0, "externals must cost DRAM words");
        assert_eq!(s.0[1], 0, "single-node has no NoC term");
        let compute = dag
            .nodes()
            .map(|(_, n)| n.spec.macs())
            .sum::<u64>()
            .div_ceil(accel.pe_count);
        assert!(s.0[3] >= compute, "cycle proxy respects the compute floor");
    }

    /// Multi-node rank slicing pays NoC hops the single-node default does
    /// not — the sketch must keep the axes separate so the NoC-free
    /// default never falsely dominates a capacity-relieved slice.
    #[test]
    fn rank_slice_pays_noc_but_keeps_its_own_axis() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::with_nodes(&[1, 4]));
        let model = Tier0Model::new(&dag, &accel, &space);
        let pd = space
            .decisions
            .iter()
            .position(|d| d.name == "partition")
            .unwrap();
        let mut picks = space.default_picks();
        picks[pd] = 1; // 4-node dominant-rank slice
        let sliced = model.sketch(&picks);
        assert!(sliced.0[1] > 0, "rank slice pays NoC hops");
    }

    /// In the exhaustive regime with no keep-cap pressure, pruning is
    /// *covering*: every dropped assignment is sketch-dominated by a
    /// survivor (dominance is transitive, so admission preserves this).
    /// The paper-heuristic default in particular is either kept outright or
    /// dominated by a kept assignment — never silently lost. Survivors are
    /// mutually non-dominated (a genuine Pareto set).
    #[test]
    fn prune_covers_the_default_and_keeps_a_pareto_set() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        let model = Tier0Model::new(&dag, &accel, &space);
        let total = space.exhaustive_size();
        let out = model.prune(&space, total, usize::MAX >> 1, 0);
        assert_eq!(out.swept, total);
        assert!(!out.kept.is_empty());
        let default_picks = space.default_picks();
        let default = model.sketch(&default_picks);
        assert!(
            out.kept.contains(&default_picks)
                || out.kept.iter().any(|p| model.sketch(p).dominates(&default)),
            "the default was dropped without a dominating survivor"
        );
        let sketches: Vec<Sketch> = out.kept.iter().map(|p| model.sketch(p)).collect();
        for (i, a) in sketches.iter().enumerate() {
            for (j, b) in sketches.iter().enumerate() {
                assert!(
                    i == j || !a.dominates(b),
                    "survivors must be mutually non-dominated ({i} vs {j})"
                );
            }
        }
    }

    /// Pruning is deterministic and respects budget and keep caps in both
    /// the exhaustive and sampled regimes.
    #[test]
    fn prune_is_deterministic_and_capped() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::widened_with_nodes(&[1, 4]));
        let model = Tier0Model::new(&dag, &accel, &space);
        // Sampled regime: the widened multi-node space exceeds the budget.
        assert!(space.exhaustive_size() > 2000);
        let a = model.prune(&space, 2000, 16, 7);
        let b = model.prune(&space, 2000, 16, 7);
        assert_eq!(a.swept, 2000);
        assert_eq!(a.kept, b.kept, "same seed ⇒ same survivors");
        assert!(a.kept.len() <= 16);
        // Exhaustive regime: budget covers the whole (default) space.
        let small = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        let sm = Tier0Model::new(&dag, &accel, &small);
        let total = small.exhaustive_size();
        let out = sm.prune(&small, total, usize::MAX >> 1, 0);
        assert_eq!(out.swept, total, "budget ≥ space ⇒ full sweep");
        for picks in &out.kept {
            for (p, d) in picks.iter().zip(&small.decisions) {
                assert!(*p < d.choices.len());
            }
        }
    }

    /// The transfer decision reaches the sketch: on a memory-bound
    /// workload a double-buffered pick shrinks the cycle proxy below the
    /// serialized (off) proxy, never below the compute floor, and the two
    /// sketches stay mutually non-dominated (the overlapped pick pays the
    /// staging carve on the spill axis or wins strictly on cycles — either
    /// way neither prunes the other).
    #[test]
    fn transfer_tuning_shapes_the_cycle_proxy() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let cfg = SpaceConfig {
            transfer_menu: SpaceConfig::default_transfer_menu(),
            ..SpaceConfig::default()
        };
        let space = SearchSpace::from_dag(&dag, &cfg);
        let model = Tier0Model::new(&dag, &accel, &space);
        let td = space
            .decisions
            .iter()
            .position(|d| d.name == "transfer")
            .expect("transfer decision exists");
        let menu: Vec<TransferTuning> = space.decisions[td]
            .choices
            .iter()
            .map(|c| match c {
                Choice::Transfer { tuning } => *tuning,
                _ => unreachable!("transfer decision holds transfer choices"),
            })
            .collect();
        assert!(menu[0].is_off(), "choice 0 is the serialized baseline");
        let db = menu
            .iter()
            .position(|t| t.double_buffer)
            .expect("menu has a double-buffered entry");
        let mut picks = space.default_picks();
        let off = model.sketch(&picks);
        picks[td] = db;
        let on = model.sketch(&picks);
        let compute = dag
            .nodes()
            .map(|(_, n)| n.spec.macs())
            .sum::<u64>()
            .div_ceil(accel.pe_count);
        assert!(on.0[3] < off.0[3], "double-buffering hides DRAM cycles");
        assert!(on.0[3] >= compute, "never below the compute floor");
        assert!(on.0[2] >= off.0[2], "the staging carve can only add spill");
        assert!(
            !off.dominates(&on) && !on.dominates(&off),
            "off and overlapped picks must coexist on the sketch front"
        );
    }

    /// The overbook decision reaches the sketch: on an occupancy-carrying
    /// sparse workload an overbooked pick shrinks the DRAM axis (the
    /// grant scales the external cold fill). With a high-variance, high-
    /// mean matrix — `rel_std` above the mean's slack `1 - rel_mean`, so
    /// the modeled refetch tail outweighs the footprint the grant gives
    /// back — the spill axis grows, and the off and overbooked picks stay
    /// mutually non-dominated: the prune keeps both sides of the trade.
    /// (A low-mean matrix makes overbooking a pure win and the sketch
    /// rightly lets it dominate.) A dense-occupancy DAG sketches
    /// identically at every level — where overbooking has no effect the
    /// sketch cannot separate candidates, so the prune stays sound.
    #[test]
    fn overbooking_scales_the_dram_and_spill_axes() {
        let skewed = OccupancyStats {
            mean: 0.9,
            variance: 0.09,
            ..OccupancyStats::dense()
        };
        let mut prm = CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: 2,
            a_occupancy: Some(skewed),
        };
        let accel = CelloConfig::paper();
        let cfg = SpaceConfig {
            overbook_menu: SpaceConfig::default_overbook_menu(),
            ..SpaceConfig::default()
        };
        let dag = build_cg_dag(&prm);
        let space = SearchSpace::from_dag(&dag, &cfg);
        let model = Tier0Model::new(&dag, &accel, &space);
        let od = space
            .decisions
            .iter()
            .position(|d| d.name == "overbook")
            .expect("overbook decision exists");
        let mut picks = space.default_picks();
        let off = model.sketch(&picks);
        picks[od] = 1; // ChordOverbook::at(1)
        let on = model.sketch(&picks);
        assert!(on.0[0] < off.0[0], "the grant shrinks the A cold fill");
        assert!(on.0[2] > off.0[2], "the variance tail lands on spill");
        assert!(
            !off.dominates(&on) && !on.dominates(&off),
            "off and overbooked picks must coexist on the sketch front"
        );
        // Dense occupancy is the identity at every level.
        prm.a_occupancy = Some(OccupancyStats::dense());
        let dag = build_cg_dag(&prm);
        let space = SearchSpace::from_dag(&dag, &cfg);
        let model = Tier0Model::new(&dag, &accel, &space);
        let od = space
            .decisions
            .iter()
            .position(|d| d.name == "overbook")
            .expect("dense occupancy still gates the dimension on");
        let mut picks = space.default_picks();
        let base = model.sketch(&picks);
        for choice in 1..space.decisions[od].choices.len() {
            picks[od] = choice;
            assert_eq!(
                model.sketch(&picks),
                base,
                "dense occupancy sketches identically at every level"
            );
        }
    }

    /// A sampled sweep prunes hard: survivors are a small fraction of the
    /// swept budget (the whole point of the tier).
    #[test]
    fn prune_discards_most_of_the_budget() {
        let dag = cg(3);
        let accel = CelloConfig::paper();
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::widened_with_nodes(&[1, 4]));
        let model = Tier0Model::new(&dag, &accel, &space);
        let out = model.prune(&space, 8192, 48, 0);
        assert_eq!(out.swept, 8192);
        assert!(out.kept.len() <= 48);
        assert!(
            (out.kept.len() as u64) * 20 < out.swept,
            "kept {} of {}",
            out.kept.len(),
            out.swept
        );
    }
}

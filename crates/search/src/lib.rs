//! # cello-search — parallel schedule auto-tuner over the SCORE × CHORD space
//!
//! The paper's central claim is that CHORD collapses the *buffer allocation*
//! search space (from ~10⁸⁰ explicit-scratchpad choices to `O(nodes+edges)`
//! policy inputs, §VI-B), leaving *schedule* search as the tractable
//! remaining problem. The seed repo counted that space
//! (`cello_core::search_space`) but never searched it: every schedule came
//! from the fixed [`ScheduleOptions`](cello_core::score::binding::ScheduleOptions)
//! presets. This crate is the missing design-space explorer:
//!
//! - [`space`]: derives the candidate dimensions from a
//!   [`TensorDag`](cello_graph::dag::TensorDag) — scheduler preset (the
//!   Table IV family), the SRAM split between pipeline buffer / RF / CHORD
//!   (the tiling knob: `pipeline_can_stream` gates which edges can realize,
//!   so a lean buffer that feeds CHORD risks blocking fusion on wide-row
//!   DAGs), cluster cuts, per-tensor buffer
//!   steering, loop-order flips on balanced nodes (the only nodes where
//!   §V-B leaves the order cost-neutral, so the search cannot exploit
//!   unmodeled intra-op costs), and — when
//!   [`SpaceConfig::node_choices`](space::SpaceConfig) lists counts above
//!   one — the §V-B multi-node partition (node count × dominant-rank-slice
//!   or stage-split axis, scored on NoC hop-bytes and per-node footprints);
//! - [`candidate`]: one point of that space — a `ScheduleOptions` plus a
//!   [`ScheduleConstraints`](cello_core::score::binding::ScheduleConstraints) —
//!   buildable into a valid [`Schedule`](cello_core::score::binding::Schedule)
//!   by construction;
//! - [`cost`]: the Pareto machinery over
//!   [`CostEstimate`](cello_sim::evaluate::CostEstimate)
//!   (cycles, DRAM bytes, NoC hop-bytes, energy);
//! - [`cache`]: a thread-safe memo table keyed by the **canonicalized
//!   schedule** (not the candidate), so decision combinations that collapse
//!   to the same schedule are evaluated once;
//! - [`strategy`]: exhaustive enumeration (small DAGs), beam search with
//!   configurable width, a seeded random-sampling baseline, the symbolic
//!   [`Strategy::Tier0`] sweep, and the tiered [`Strategy::Prefiltered`]
//!   wrapper;
//! - [`tier0`]: the tier-0 asymptotic cost sketch — a closed-form
//!   `[dram, noc, spill, cycles]` vector computed per assignment from
//!   precomputed per-decision effects, no schedule built and no phase walk,
//!   pruned by symbolic Pareto dominance so only non-dominated sketches
//!   reach the concrete tiers;
//! - [`surrogate`]: the tier-1 analytic cost model — the same
//!   [`cello_sim::phases::PhasePlan`] the simulator replays, scored with a
//!   closed-form CHORD capacity split instead of the stateful RIFF walk
//!   (orders of magnitude cheaper, validated by rank correlation);
//! - [`tuner`]: drives everything — candidates are scored in parallel
//!   (rayon) through `cello_sim::evaluate`'s cheap traffic+roofline path,
//!   or analytically prefiltered first under `Strategy::Prefiltered`
//!   (both concrete tiers memoized in one shared lock-striped cache keyed
//!   by interned 128-bit schedule keys);
//! - [`audit`]: funnel forensics — [`Tuner::tune_audited`] replays a tune
//!   while ledgering where every candidate died (tier-0 prune, schedule
//!   dedup, surrogate cut), cross-checks tier-0 sketch rank against exact
//!   sim rank, and samples the pruned set for survivor loss.
//!
//! Every strategy is deterministic: parallel evaluation preserves order,
//! ranking ties break on the canonical schedule key, and the random strategy
//! derives from an explicit seed.
//!
//! ```
//! use cello_search::{SpaceConfig, Strategy, Tuner};
//! use cello_core::accel::CelloConfig;
//! use cello_workloads::cg::{build_cg_dag, CgParams};
//!
//! let dag = build_cg_dag(&CgParams {
//!     m: 20_000, occupancy: 4.0, a_payload_words: 2 * 80_000 + 20_001,
//!     n: 16, nprime: 16, iterations: 2, a_occupancy: None,
//! });
//! let accel = CelloConfig::paper();
//! let tuner = Tuner::new(&dag, &accel, SpaceConfig::default());
//! let outcome = tuner.tune(&Strategy::Beam { width: 4 });
//! // The paper heuristic is always part of the explored space, so the tuned
//! // schedule can only match or beat it.
//! assert!(outcome.best_cycles.cost.cycles <= outcome.baseline.cost.cycles);
//! assert!(!outcome.pareto.is_empty());
//!
//! // Two-tier: rank the space analytically, sim-evaluate the top 20%.
//! let two_tier = tuner.tune(&Strategy::prefiltered(0.2, Strategy::Beam { width: 4 }));
//! assert!(two_tier.best_cycles.cost.cycles <= two_tier.baseline.cost.cycles);
//! assert!(two_tier.surrogate_scored > 0);
//!
//! // Three-tier: sketch-prune symbolically, surrogate-rank the survivors,
//! // sim-evaluate the top 20% of those.
//! let funnel = tuner.tune(&Strategy::prefiltered(
//!     0.2,
//!     Strategy::Tier0 { budget: 512, keep: 32 },
//! ));
//! assert!(funnel.best_cycles.cost.cycles <= funnel.baseline.cost.cycles);
//! ```

pub mod audit;
pub mod cache;
pub mod candidate;
pub mod cost;
pub mod fingerprint;
pub mod space;
pub mod strategy;
pub mod surrogate;
pub mod tier0;
pub mod tuner;

pub use audit::{AuditConfig, FunnelAudit};
pub use cache::EvalCache;
pub use candidate::Candidate;
pub use cost::{pareto_front, Evaluated};
pub use fingerprint::{fingerprint, Fingerprint, Fnv128Writer, ScheduleKey};
pub use space::{Choice, Decision, RepartitionProfile, SearchSpace, SpaceConfig};
pub use strategy::Strategy;
pub use surrogate::{spearman, surrogate_cost};
pub use tier0::{Sketch, Tier0Model, Tier0Prune};
pub use tuner::{SearchOutcome, Tuner};

//! Pareto machinery over the four search objectives (cycles, DRAM bytes,
//! NoC hop-bytes, energy).

use crate::candidate::Candidate;
use cello_sim::evaluate::CostEstimate;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A scored candidate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Evaluated {
    /// The candidate spec.
    pub candidate: Candidate,
    /// Canonical key of the schedule it built (memo-cache identity).
    pub key: String,
    /// The four objectives.
    pub cost: CostEstimate,
}

/// Deterministic total order: cycles, then DRAM bytes, then NoC hop-bytes,
/// then energy, then the canonical key as the final tiebreak.
pub fn rank(a: &Evaluated, b: &Evaluated) -> Ordering {
    a.cost
        .cycles
        .cmp(&b.cost.cycles)
        .then(a.cost.dram_bytes.cmp(&b.cost.dram_bytes))
        .then(a.cost.noc_hop_bytes.cmp(&b.cost.noc_hop_bytes))
        .then(a.cost.energy_pj.total_cmp(&b.cost.energy_pj))
        .then(a.key.cmp(&b.key))
}

/// The non-dominated subset of `evaluated` over (cycles, DRAM bytes, NoC
/// hop-bytes, energy), deduplicated by schedule key and sorted by [`rank`].
pub fn pareto_front(evaluated: &[Evaluated]) -> Vec<Evaluated> {
    let mut seen = std::collections::HashSet::new();
    let mut unique: Vec<&Evaluated> = Vec::new();
    for e in evaluated {
        if seen.insert(e.key.as_str()) {
            unique.push(e);
        }
    }
    let mut front: Vec<Evaluated> = unique
        .iter()
        .filter(|e| !unique.iter().any(|o| o.cost.dominates(&e.cost)))
        .map(|e| (*e).clone())
        .collect();
    front.sort_by(rank);
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(key: &str, cycles: u64, dram: u64, energy: f64) -> Evaluated {
        Evaluated {
            candidate: Candidate::paper_heuristic(),
            key: key.into(),
            cost: CostEstimate {
                cycles,
                dram_bytes: dram,
                noc_hop_bytes: 0,
                energy_pj: energy,
            },
        }
    }

    /// A NaN-energy point is dominated by its finite twin and never
    /// survives into the front (the `dominates` totality regression,
    /// exercised at the front level).
    #[test]
    fn nan_energy_cannot_corrupt_the_front() {
        let all = vec![ev("good", 10, 10, 1.0), ev("nan", 10, 10, f64::NAN)];
        let front = pareto_front(&all);
        let keys: Vec<&str> = front.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["good"]);
    }

    #[test]
    fn front_keeps_tradeoffs_drops_dominated() {
        let all = vec![
            ev("a", 100, 50, 1.0),
            ev("b", 90, 60, 1.0),  // trades cycles for bytes with a
            ev("c", 110, 55, 1.0), // dominated by a
            ev("d", 90, 60, 2.0),  // dominated by b
        ];
        let front = pareto_front(&all);
        let keys: Vec<&str> = front.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["b", "a"]);
    }

    #[test]
    fn front_dedupes_by_key() {
        let all = vec![ev("a", 10, 10, 1.0), ev("a", 10, 10, 1.0)];
        assert_eq!(pareto_front(&all).len(), 1);
    }

    #[test]
    fn rank_is_total_and_deterministic() {
        let mut v = [
            ev("b", 10, 10, 1.0),
            ev("a", 10, 10, 1.0),
            ev("c", 9, 99, 9.0),
        ];
        v.sort_by(rank);
        let keys: Vec<&str> = v.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["c", "a", "b"]);
    }
}

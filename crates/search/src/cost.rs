//! Pareto machinery over the four search objectives (cycles, DRAM bytes,
//! NoC hop-bytes, energy).

use crate::candidate::Candidate;
use crate::fingerprint::ScheduleKey;
use cello_sim::evaluate::CostEstimate;
use std::cmp::Ordering;

/// A scored candidate.
#[derive(Clone, Debug)]
pub struct Evaluated {
    /// The candidate spec.
    pub candidate: Candidate,
    /// Interned canonical key of the schedule it built (memo-cache
    /// identity — see [`Candidate::interned_key`]).
    pub key: ScheduleKey,
    /// The four objectives.
    pub cost: CostEstimate,
}

/// Deterministic total order: cycles, then DRAM bytes, then NoC hop-bytes,
/// then energy, then the interned key as the final tiebreak.
pub fn rank(a: &Evaluated, b: &Evaluated) -> Ordering {
    a.cost
        .cycles
        .cmp(&b.cost.cycles)
        .then(a.cost.dram_bytes.cmp(&b.cost.dram_bytes))
        .then(a.cost.noc_hop_bytes.cmp(&b.cost.noc_hop_bytes))
        .then(a.cost.energy_pj.total_cmp(&b.cost.energy_pj))
        .then(a.key.cmp(&b.key))
}

/// The non-dominated subset of `evaluated` over (cycles, DRAM bytes, NoC
/// hop-bytes, energy), deduplicated by schedule key and sorted by [`rank`].
pub fn pareto_front(evaluated: &[Evaluated]) -> Vec<Evaluated> {
    let mut seen = std::collections::HashSet::new();
    let mut unique: Vec<&Evaluated> = Vec::new();
    for e in evaluated {
        if seen.insert(e.key) {
            unique.push(e);
        }
    }
    let mut front: Vec<Evaluated> = unique
        .iter()
        .filter(|e| !unique.iter().any(|o| o.cost.dominates(&e.cost)))
        .map(|e| (*e).clone())
        .collect();
    front.sort_by(rank);
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(key: u128, cycles: u64, dram: u64, energy: f64) -> Evaluated {
        Evaluated {
            candidate: Candidate::paper_heuristic(),
            key: ScheduleKey(key),
            cost: CostEstimate {
                cycles,
                dram_bytes: dram,
                noc_hop_bytes: 0,
                energy_pj: energy,
            },
        }
    }

    /// A NaN-energy point is dominated by its finite twin and never
    /// survives into the front (the `dominates` totality regression,
    /// exercised at the front level).
    #[test]
    fn nan_energy_cannot_corrupt_the_front() {
        let all = vec![ev(1, 10, 10, 1.0), ev(2, 10, 10, f64::NAN)];
        let front = pareto_front(&all);
        let keys: Vec<ScheduleKey> = front.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![ScheduleKey(1)]);
    }

    #[test]
    fn front_keeps_tradeoffs_drops_dominated() {
        let all = vec![
            ev(1, 100, 50, 1.0),
            ev(2, 90, 60, 1.0),  // trades cycles for bytes with 1
            ev(3, 110, 55, 1.0), // dominated by 1
            ev(4, 90, 60, 2.0),  // dominated by 2
        ];
        let front = pareto_front(&all);
        let keys: Vec<ScheduleKey> = front.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![ScheduleKey(2), ScheduleKey(1)]);
    }

    #[test]
    fn front_dedupes_by_key() {
        let all = vec![ev(1, 10, 10, 1.0), ev(1, 10, 10, 1.0)];
        assert_eq!(pareto_front(&all).len(), 1);
    }

    #[test]
    fn rank_is_total_and_deterministic() {
        let mut v = [ev(2, 10, 10, 1.0), ev(1, 10, 10, 1.0), ev(3, 9, 99, 9.0)];
        v.sort_by(rank);
        let keys: Vec<ScheduleKey> = v.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![ScheduleKey(3), ScheduleKey(1), ScheduleKey(2)]);
    }
}

//! Thread-safe memoized evaluation cache, shared across both concrete
//! tiers.
//!
//! Keys are **interned canonicalized schedules**
//! ([`crate::Candidate::interned_key`] — the 128-bit FNV hash of
//! [`crate::Candidate::schedule_key`]), so decision combinations that
//! collapse to the same schedule — no-op cuts, steering requests the
//! builder dropped as invalid, partition changes under a CHORD-less preset
//! — cost one evaluation total. The cache is shared across strategies
//! within one [`crate::Tuner`], so a beam run after an exhaustive run on
//! the same space is nearly free.
//!
//! Two memo tables live side by side under the same keys: the exact
//! simulator tier (`lookup`/`insert`) and the analytic surrogate tier
//! (`lookup_surrogate`/`insert_surrogate`). `Strategy::Prefiltered` fills
//! the surrogate table while traversing and the exact table only for
//! survivors; a later exact-tier run over the same space then starts from
//! whatever the prefilter already paid for.
//!
//! Each tier's table is **lock-striped** into `SHARDS` shards selected by
//! the key's low bits: `batch_with`'s rayon workers used to serialize on a
//! single global `Mutex<HashMap>` for every lookup/insert, which capped the
//! parallel speedup exactly where the tier-0 funnel pushes the most
//! traffic. The keys are FNV hashes, so their low bits are already
//! uniformly distributed — no re-hashing needed to balance the stripes.

use crate::fingerprint::ScheduleKey;
use cello_sim::evaluate::CostEstimate;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock stripes per tier. A small power of two: enough that a dozen rayon
/// workers rarely collide, cheap enough that an empty cache is still tiny.
const SHARDS: usize = 16;

/// Locks a memo shard, recovering from poisoning instead of panicking.
///
/// The cache is shared across worker threads of a long-running service
/// (`cello-serve`): if one request's evaluation panics while holding the
/// lock, `.expect("poisoned")` here would turn every *subsequent* request
/// into a panic too — one bad request killing the daemon. The map's
/// invariant is a plain key→value table (no multi-step updates), so the
/// state under a poisoned lock is still consistent and safe to keep using.
fn lock_table<T>(table: &Mutex<T>) -> MutexGuard<'_, T> {
    table.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One tier's lock-striped memo table.
struct Striped {
    shards: [Mutex<HashMap<ScheduleKey, CostEstimate>>; SHARDS],
}

impl Default for Striped {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

impl Striped {
    fn shard(&self, key: ScheduleKey) -> &Mutex<HashMap<ScheduleKey, CostEstimate>> {
        &self.shards[(key.0 as usize) & (SHARDS - 1)]
    }

    fn get(&self, key: ScheduleKey) -> Option<CostEstimate> {
        lock_table(self.shard(key)).get(&key).copied()
    }

    fn put(&self, key: ScheduleKey, cost: CostEstimate) {
        lock_table(self.shard(key)).insert(key, cost);
    }
}

/// Memo tables plus hit/evaluation counters for both tiers.
#[derive(Default)]
pub struct EvalCache {
    map: Striped,
    surrogate_map: Striped,
    hits: AtomicU64,
    evaluations: AtomicU64,
    surrogate_hits: AtomicU64,
    surrogate_evaluations: AtomicU64,
}

impl EvalCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached exact cost for `key`, counting a hit when present.
    pub fn lookup(&self, key: ScheduleKey) -> Option<CostEstimate> {
        let found = self.map.get(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a fresh exact evaluation.
    pub fn insert(&self, key: ScheduleKey, cost: CostEstimate) {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.map.put(key, cost);
    }

    /// Cached surrogate score for `key`, counting a surrogate hit.
    pub fn lookup_surrogate(&self, key: ScheduleKey) -> Option<CostEstimate> {
        let found = self.surrogate_map.get(key);
        if found.is_some() {
            self.surrogate_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a fresh surrogate scoring.
    pub fn insert_surrogate(&self, key: ScheduleKey, cost: CostEstimate) {
        self.surrogate_evaluations.fetch_add(1, Ordering::Relaxed);
        self.surrogate_map.put(key, cost);
    }

    /// Number of distinct schedules exactly evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Number of lookups served from the exact cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct schedules scored by the surrogate so far.
    pub fn surrogate_evaluations(&self) -> u64 {
        self.surrogate_evaluations.load(Ordering::Relaxed)
    }

    /// Number of lookups served from the surrogate cache.
    pub fn surrogate_hits(&self) -> u64 {
        self.surrogate_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(c: u64) -> CostEstimate {
        CostEstimate {
            cycles: c,
            dram_bytes: 0,
            noc_hop_bytes: 0,
            energy_pj: 0.0,
        }
    }

    fn k(v: u128) -> ScheduleKey {
        ScheduleKey(v)
    }

    #[test]
    fn lookup_insert_counters() {
        let cache = EvalCache::new();
        assert!(cache.lookup(k(1)).is_none());
        assert_eq!(cache.hits(), 0);
        cache.insert(k(1), cost(7));
        assert_eq!(cache.lookup(k(1)).unwrap().cycles, 7);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.evaluations(), 1);
    }

    /// The two tiers memo independently under the same key space.
    #[test]
    fn tiers_do_not_alias() {
        let cache = EvalCache::new();
        cache.insert_surrogate(k(1), cost(3));
        assert!(cache.lookup(k(1)).is_none(), "surrogate fill is tier-local");
        cache.insert(k(1), cost(7));
        assert_eq!(cache.lookup_surrogate(k(1)).unwrap().cycles, 3);
        assert_eq!(cache.lookup(k(1)).unwrap().cycles, 7);
        assert_eq!(cache.evaluations(), 1);
        assert_eq!(cache.surrogate_evaluations(), 1);
        assert_eq!(cache.surrogate_hits(), 1);
    }

    /// A thread that panics while holding a shard lock must not take the
    /// cache down with it: later lookups and inserts keep working (the
    /// daemon-survives-one-bad-request guarantee).
    #[test]
    fn survives_lock_poisoning() {
        let cache = EvalCache::new();
        cache.insert(k(5), cost(1));
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = lock_table(cache.map.shard(k(5)));
                panic!("poison the lock on purpose");
            })
            .join()
        });
        assert_eq!(cache.lookup(k(5)).unwrap().cycles, 1);
        cache.insert(k(5 + SHARDS as u128), cost(2));
        assert_eq!(cache.lookup(k(5 + SHARDS as u128)).unwrap().cycles, 2);
    }

    /// Keys land on every stripe and stay retrievable — the striping is an
    /// invisible implementation detail to callers.
    #[test]
    fn striping_is_transparent() {
        let cache = EvalCache::new();
        for i in 0..(4 * SHARDS as u128) {
            cache.insert(k(i), cost(i as u64));
        }
        assert_eq!(cache.evaluations(), 4 * SHARDS as u64);
        for i in 0..(4 * SHARDS as u128) {
            assert_eq!(cache.lookup(k(i)).unwrap().cycles, i as u64);
        }
        // All shards are populated (consecutive keys round-robin the low
        // bits).
        for shard in &cache.map.shards {
            assert_eq!(lock_table(shard).len(), 4);
        }
    }

    #[test]
    fn shared_across_threads() {
        let cache = EvalCache::new();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let cache = &cache;
                s.spawn(move || cache.insert(k(i as u128), cost(i)));
            }
        });
        assert_eq!(cache.evaluations(), 8);
        for i in 0..8u64 {
            assert_eq!(cache.lookup(k(i as u128)).unwrap().cycles, i);
        }
    }
}

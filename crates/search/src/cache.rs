//! Thread-safe memoized evaluation cache.
//!
//! Keys are **canonicalized schedules** ([`crate::Candidate::schedule_key`]),
//! so decision combinations that collapse to the same schedule — no-op cuts,
//! steering requests the builder dropped as invalid, partition changes under
//! a CHORD-less preset — cost one evaluation total. The cache is shared
//! across strategies within one [`crate::Tuner`], so a beam run after an
//! exhaustive run on the same space is nearly free.

use cello_sim::evaluate::CostEstimate;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Memo table plus hit/evaluation counters.
#[derive(Default)]
pub struct EvalCache {
    map: Mutex<HashMap<String, CostEstimate>>,
    hits: AtomicU64,
    evaluations: AtomicU64,
}

impl EvalCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached cost for `key`, counting a hit when present.
    pub fn lookup(&self, key: &str) -> Option<CostEstimate> {
        let found = self
            .map
            .lock()
            .expect("eval cache poisoned")
            .get(key)
            .copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a fresh evaluation.
    pub fn insert(&self, key: String, cost: CostEstimate) {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .expect("eval cache poisoned")
            .insert(key, cost);
    }

    /// Number of distinct schedules evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(c: u64) -> CostEstimate {
        CostEstimate {
            cycles: c,
            dram_bytes: 0,
            noc_hop_bytes: 0,
            energy_pj: 0.0,
        }
    }

    #[test]
    fn lookup_insert_counters() {
        let cache = EvalCache::new();
        assert!(cache.lookup("k").is_none());
        assert_eq!(cache.hits(), 0);
        cache.insert("k".into(), cost(7));
        assert_eq!(cache.lookup("k").unwrap().cycles, 7);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.evaluations(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let cache = EvalCache::new();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let cache = &cache;
                s.spawn(move || cache.insert(format!("k{i}"), cost(i)));
            }
        });
        assert_eq!(cache.evaluations(), 8);
        for i in 0..8u64 {
            assert_eq!(cache.lookup(&format!("k{i}")).unwrap().cycles, i);
        }
    }
}

//! Candidate generation: the decision dimensions of the co-design space.
//!
//! A [`SearchSpace`] is an ordered list of [`Decision`]s, each with a small
//! choice set whose **first entry is always the paper-heuristic default** —
//! so the all-zeros assignment reproduces `ScheduleOptions::cello()` exactly,
//! beam search starts from the heuristic, and the tuned result can never be
//! worse than the baseline. Decisions are derived from the DAG itself:
//!
//! 1. **Preset** — the Table IV scheduler family (pipelining scope, hold,
//!    multicast, CHORD steering);
//! 2. **SRAM split** — how the on-chip budget divides between the pipeline
//!    buffer, the register file, and CHORD (which gets the remainder, see
//!    `cello_sim::evaluate::chord_capacity_words`). The pipeline buffer is
//!    the tiling knob: `pipeline_can_stream` gates which edges can realize
//!    at all (a buffer below one double-buffered row per stage blocks
//!    fusion), so shrinking it to feed CHORD is a modeled trade, not free
//!    SRAM — and the oversized choice is the safe direction for wide-row
//!    DAGs;
//! 3. **Cluster cuts** — one boolean per node that joins a pipeline cluster
//!    under the fully-fused schedule;
//! 4. **Steering** — one `{CHORD, DRAM}` choice per large CHORD-bound
//!    tensor (demoting a low-reuse tensor frees CHORD capacity for hotter
//!    ones);
//! 5. **CHORD priority biasing** — per hot CHORD tensor, leave the derived
//!    RIFF `(freq, dist)` facts alone or boost/demote them
//!    ([`SpaceConfig::max_chord_bias_tensors`], 0 by default;
//!    [`SpaceConfig::widened`] turns it on) — the full SCORE-CHORD
//!    interface as a decision, not just the bindings;
//! 6. **Loop-order flips** — only on *balanced* nodes, where §V-B leaves
//!    the order cost-neutral intra-op, so flipping trades nothing the cost
//!    model cannot see (it only disables/enables pipelining realizability);
//! 7. **Multi-node partition** — node count × dataflow axis (§V-B): slice
//!    the DAG's dominant rank (pipelining stays intra-node, small tensors
//!    broadcast/reduce over the NoC) or split pipeline stages across nodes
//!    (the Fig 8 naive strategy, full intermediates on the NoC). Enabled by
//!    listing node counts > 1 in [`SpaceConfig::node_choices`]; the
//!    single-node partition is always choice 0;
//! 8. **Transfer ordering** — prefetch depth × double-buffer toggle
//!    ([`cello_core::TransferTuning`]): how far the DMA engine runs ahead
//!    of compute, hiding inbound DRAM transfers behind earlier phases at
//!    the price of a staging carve out of CHORD capacity. Enabled by a
//!    non-empty [`SpaceConfig::transfer_menu`]; the serialized depth-0
//!    model is always choice 0;
//! 9. **CHORD overbooking** — Tailors-style capacity grants at expected
//!    occupancy ([`cello_core::ChordOverbook`]): sparse operands with
//!    measured `.mtx` occupancy give back the footprint slack they almost
//!    never fill, at the price of a modeled spill penalty when a tile
//!    overflows its grant. Enabled by a non-empty
//!    [`SpaceConfig::overbook_menu`] **and** a DAG that actually carries
//!    occupancy statistics — occupancy-free DAGs get no dimension (the
//!    knob cannot change their evaluation); the worst-case-dense level-0
//!    model is always choice 0.

use crate::candidate::Candidate;
use cello_core::chord::PriorityBias;
use cello_core::score::binding::{Binding, PipelineScope};
use cello_core::score::loop_order::{choose_loop_order, LoopOrder};
use cello_core::score::multinode::{dominant_partition_rank, Partition};
use cello_core::score::overbook::ChordOverbook;
use cello_core::score::repartition::{PhaseRepartition, PhaseSplit};
use cello_core::score::transfer::TransferTuning;
use cello_graph::dag::TensorDag;
use cello_graph::node::Dominance;
use serde::{Deserialize, Serialize};

/// One selectable option within a [`Decision`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Choice {
    /// Scheduler feature preset (Table IV row shape).
    Preset {
        /// Pipelining realization scope.
        scope: PipelineScope,
        /// Serve delayed-hold edges from the pipeline buffer.
        enable_hold: bool,
        /// Fuse parallel-multicast siblings.
        enable_multicast: bool,
        /// Steer writeback/sequential operands to CHORD.
        enable_chord: bool,
    },
    /// SRAM partition: pipeline-buffer and RF words (CHORD gets the rest).
    SramSplit {
        /// Pipeline-buffer capacity in words.
        pipeline_words: u64,
        /// Register-file capacity in words.
        rf_words: u64,
    },
    /// Force (or don't) a cluster cut before `node`.
    Cut {
        /// Node index.
        node: usize,
        /// Whether the cut is applied.
        enabled: bool,
    },
    /// Steer `tensor` to `binding` (`Chord` = keep the heuristic default).
    Steer {
        /// Tensor name.
        tensor: String,
        /// Requested binding.
        binding: Binding,
    },
    /// Replace `node`'s loop order (`None` = keep the canonical order).
    OrderFlip {
        /// Node index.
        node: usize,
        /// The alternative order, if this choice applies one.
        order: Option<LoopOrder>,
    },
    /// Bias `tensor`'s RIFF `(freq, dist)` priority (`None` = keep the
    /// derived facts) — searching the SCORE→CHORD metadata interface
    /// itself, not just the bindings.
    ChordBias {
        /// Tensor name.
        tensor: String,
        /// The applied bias, if this choice applies one.
        bias: Option<PriorityBias>,
    },
    /// Run the schedule over a multi-node mesh (`Partition::single()` = the
    /// default single-node dataflow).
    Partition {
        /// Node count and parallelized axis.
        partition: Partition,
    },
    /// Repartition the SRAM per phase (`None` = the global split everywhere
    /// — the paper-heuristic default).
    Repartition {
        /// The fused/solo profile applied, if any.
        profile: Option<RepartitionProfile>,
    },
    /// Reorder DRAM transfers (`TransferTuning::off()` = the serialized
    /// depth-0 model — the paper-heuristic default).
    Transfer {
        /// The prefetch-depth/double-buffer tuning applied.
        tuning: TransferTuning,
    },
    /// Overbook CHORD capacity for occupancy-carrying sparse operands
    /// (`ChordOverbook::off()` = the worst-case-dense model — the
    /// paper-heuristic default).
    Overbook {
        /// The overbooking level applied.
        overbook: ChordOverbook,
    },
}

/// One per-phase SRAM split profile the repartition decision can apply.
/// Profiles are phase-structure-agnostic (fused vs solo clusters), so one
/// menu serves every candidate schedule of a space; `sram_words` is the
/// budget the splits were validated against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RepartitionProfile {
    /// SRAM capacity in words the splits respect.
    pub sram_words: u64,
    /// Split for fused (multi-op) pipeline clusters.
    pub fused: PhaseSplit,
    /// Split for solo clusters.
    pub solo: PhaseSplit,
}

impl RepartitionProfile {
    /// The default profile menu over an SRAM of `sram_words`: fused clusters
    /// keep a streaming-capable pipeline buffer (the paper split, then a fat
    /// one for wide-row DAGs), while solo clusters — which never stream a
    /// realized edge — donate the pipeline buffer and most of the RF to
    /// CHORD capacity. A *global* split can never express the donation: some
    /// phase always needs the buffer, so the global menu's floor is pinned
    /// by the fused clusters.
    pub fn menu(sram_words: u64) -> Vec<RepartitionProfile> {
        [
            (PhaseSplit::new(65_536, 16_384), PhaseSplit::new(0, 4_096)),
            (PhaseSplit::new(262_144, 16_384), PhaseSplit::new(0, 4_096)),
            (PhaseSplit::new(16_384, 4_096), PhaseSplit::new(0, 4_096)),
        ]
        .into_iter()
        .filter(|(fused, solo)| fused.fits(sram_words) && solo.fits(sram_words))
        .map(|(fused, solo)| RepartitionProfile {
            sram_words,
            fused,
            solo,
        })
        .collect()
    }

    /// The validated constraint this profile lowers to, or `None` for a
    /// profile whose splits overcommit its declared SRAM. [`Self::menu`]
    /// never produces such profiles, but the config fields are public —
    /// and like every other invalid constraint in the builder, a degenerate
    /// hand-built profile is dropped (the candidate keeps its global
    /// split), not a panic inside the tuner.
    pub fn to_constraint(&self) -> Option<PhaseRepartition> {
        PhaseRepartition::by_kind(self.sram_words, self.fused, self.solo).ok()
    }
}

/// One dimension of the space: a named set of mutually-exclusive choices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Human-readable dimension name (shows up in the CLI output).
    pub name: String,
    /// The options; index 0 is always the paper-heuristic default.
    pub choices: Vec<Choice>,
}

/// Caps and menus bounding the generated space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpaceConfig {
    /// Max cluster-cut decisions (largest-cluster joiners first).
    pub max_cut_points: usize,
    /// Max per-tensor steering decisions (largest footprints first).
    pub max_steer_tensors: usize,
    /// Max balanced-node loop-order decisions.
    pub max_loop_order_nodes: usize,
    /// Pipeline-buffer size menu in words (first = paper default).
    pub pipeline_words_choices: Vec<u64>,
    /// Register-file size menu in words (first = paper default).
    pub rf_words_choices: Vec<u64>,
    /// Node-count menu for the multi-node partition dimension. Counts > 1
    /// each contribute a dominant-rank-sliced and a stage-split choice;
    /// single-node is always available as the default. `vec![1]` (the
    /// default) disables the dimension entirely.
    pub node_choices: Vec<u64>,
    /// Max per-tensor CHORD `(freq, dist)` priority-bias decisions (largest
    /// CHORD footprints first; each adds a `1 + 2×|magnitudes|` dimension:
    /// neutral, then boost/demote per listed magnitude). 0 — the default —
    /// keeps the interface purely derived.
    pub max_chord_bias_tensors: usize,
    /// Bias magnitude levels offered per biased tensor (each contributes a
    /// `Boost(level)` and a `Demote(level)` choice). `vec![1]` — the default
    /// — reproduces the original ±1 menu; the widened config opens the full
    /// graded range `1..=MAX_BIAS_LEVEL`.
    pub chord_bias_magnitudes: Vec<u8>,
    /// Per-phase SRAM repartition profiles (fused/solo split pairs). Empty —
    /// the default — keeps the split a single global decision; a non-empty
    /// menu adds a repartition dimension with "no repartition" as choice 0.
    pub repartition_profiles: Vec<RepartitionProfile>,
    /// DRAM transfer-ordering menu (prefetch depth × double-buffering).
    /// Empty — the default — keeps the serialized depth-0 model and adds no
    /// dimension; a non-empty menu adds a transfer dimension with the
    /// serialized model as choice 0 (off entries in the menu are dropped —
    /// choice 0 already is the off tuning).
    pub transfer_menu: Vec<TransferTuning>,
    /// CHORD overbooking level menu. Empty — the default — keeps the
    /// worst-case-dense capacity model and adds no dimension; a non-empty
    /// menu adds an overbook dimension **only on DAGs that carry occupancy
    /// statistics** (level 0 / off entries are dropped — choice 0 already
    /// is the off level).
    pub overbook_menu: Vec<ChordOverbook>,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        Self {
            max_cut_points: 4,
            max_steer_tensors: 4,
            max_loop_order_nodes: 2,
            // Paper defaults first; then a lean split that donates SRAM to
            // CHORD and a fat pipeline buffer that takes it back.
            pipeline_words_choices: vec![65_536, 16_384, 262_144],
            rf_words_choices: vec![16_384, 4_096],
            node_choices: vec![1],
            max_chord_bias_tensors: 0,
            chord_bias_magnitudes: vec![1],
            repartition_profiles: Vec::new(),
            transfer_menu: Vec::new(),
            overbook_menu: Vec::new(),
        }
    }
}

impl SpaceConfig {
    /// The default space widened with a multi-node partition dimension.
    pub fn with_nodes(nodes: &[u64]) -> Self {
        Self {
            node_choices: nodes.to_vec(),
            ..Self::default()
        }
    }

    /// The exhaustive-scale space the tiered prefilter unlocks: more
    /// cluster-cut points and graded per-tensor CHORD priority biasing
    /// (the full `1..=MAX_BIAS_LEVEL` magnitude menu) on top of the default
    /// menus. Roughly 200× the default assignment count on CG — affordable
    /// under `Strategy::Prefiltered` with a tier-0 inner stage, wasteful to
    /// re-simulate exhaustively.
    pub fn widened() -> Self {
        Self {
            max_cut_points: 6,
            max_chord_bias_tensors: 2,
            chord_bias_magnitudes: (1..=cello_core::chord::MAX_BIAS_LEVEL).collect(),
            transfer_menu: Self::default_transfer_menu(),
            overbook_menu: Self::default_overbook_menu(),
            ..Self::default()
        }
    }

    /// The overbooking menu the widened space searches on occupancy-carrying
    /// DAGs: conservative (half the slack), moderate, and aggressive grants.
    /// The worst-case-dense level 0 is implicit choice 0 of the dimension,
    /// never part of the menu.
    pub fn default_overbook_menu() -> Vec<ChordOverbook> {
        vec![
            ChordOverbook::at(1),
            ChordOverbook::at(2),
            ChordOverbook::at(4),
        ]
    }

    /// The transfer-ordering menu the widened space searches: shallow
    /// single-buffered prefetch (idle-bandwidth only, no extra carve
    /// banks), then double-buffered depths 1/2/4 — deeper hiding for a
    /// bigger staging carve. The serialized depth-0 model is implicit
    /// choice 0 of the dimension, never part of the menu.
    pub fn default_transfer_menu() -> Vec<TransferTuning> {
        vec![
            TransferTuning::single_buffered(1),
            TransferTuning::double_buffered(1),
            TransferTuning::double_buffered(2),
            TransferTuning::double_buffered(4),
        ]
    }

    /// [`Self::widened`] plus the multi-node partition dimension.
    pub fn widened_with_nodes(nodes: &[u64]) -> Self {
        Self {
            node_choices: nodes.to_vec(),
            ..Self::widened()
        }
    }

    /// This space with the per-phase SRAM repartition dimension opened over
    /// an SRAM of `sram_words` (the default profile menu).
    pub fn with_repartition(self, sram_words: u64) -> Self {
        Self {
            repartition_profiles: RepartitionProfile::menu(sram_words),
            ..self
        }
    }
}

/// The derived decision list for one DAG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Ordered decisions (assignment vectors index into these).
    pub decisions: Vec<Decision>,
}

impl SearchSpace {
    /// Derives the space from a DAG (see module docs for the dimensions).
    pub fn from_dag(dag: &TensorDag, cfg: &SpaceConfig) -> Self {
        let mut decisions = Vec::new();

        // 1. Scheduler presets: CELLO first, then the rest of Table IV.
        decisions.push(Decision {
            name: "preset".into(),
            choices: vec![
                preset(PipelineScope::Any, true, true, true), // CELLO
                preset(PipelineScope::AllPipelineOrHold, true, true, true),
                preset(PipelineScope::None, false, false, true), // PRELUDE-ish
                preset(PipelineScope::Any, true, true, false),
                preset(PipelineScope::SoleConsumer, false, false, false), // FLAT
                preset(PipelineScope::None, false, false, false),         // oracle
            ],
        });

        // 2. Multi-node partition (§V-B): single-node first, then per node
        // count a dominant-rank slice and a stage split. Skipped entirely
        // when the config lists no count above 1, so single-node spaces are
        // unchanged. Placed early so beam search settles the partition
        // before tuning the knobs that depend on per-node footprints.
        let mut partitions = vec![Choice::Partition {
            partition: Partition::single(),
        }];
        let sliceable = dominant_partition_rank(dag);
        for &n in cfg.node_choices.iter().filter(|&&n| n > 1) {
            if let Some(rank) = sliceable {
                partitions.push(Choice::Partition {
                    partition: Partition::by_rank(n, rank),
                });
            }
            partitions.push(Choice::Partition {
                partition: Partition::by_stage(n),
            });
        }
        if partitions.len() > 1 {
            decisions.push(Decision {
                name: "partition".into(),
                choices: partitions,
            });
        }

        // 3. SRAM split menu (paper default first by SpaceConfig contract).
        let mut splits = Vec::new();
        for &pw in &cfg.pipeline_words_choices {
            for &rw in &cfg.rf_words_choices {
                splits.push(Choice::SramSplit {
                    pipeline_words: pw,
                    rf_words: rw,
                });
            }
        }
        decisions.push(Decision {
            name: "sram-split".into(),
            choices: splits,
        });

        // 3b. Per-phase SRAM repartition (the Tailors/SoMa-style
        // phase-granular buffer decision): no repartition first, then the
        // configured fused/solo profiles. A profile overrides the global
        // sram-split dimension phase by phase, so both dimensions coexist —
        // the global split remains what un-profiled candidates (and the
        // drain pseudo-phase) use.
        if !cfg.repartition_profiles.is_empty() {
            let mut choices = vec![Choice::Repartition { profile: None }];
            choices.extend(
                cfg.repartition_profiles
                    .iter()
                    .map(|p| Choice::Repartition {
                        profile: Some(p.clone()),
                    }),
            );
            decisions.push(Decision {
                name: "repartition".into(),
                choices,
            });
        }

        // 3c. Transfer ordering (the SoMa-style DRAM communication-schedule
        // decision): serialized depth-0 first, then the configured
        // prefetch/double-buffer tunings. Off entries are dropped — they
        // would duplicate choice 0 and collapse onto the same schedule.
        if !cfg.transfer_menu.is_empty() {
            let mut choices = vec![Choice::Transfer {
                tuning: TransferTuning::off(),
            }];
            choices.extend(
                cfg.transfer_menu
                    .iter()
                    .map(|t| t.normalized())
                    .filter(|t| !t.is_off())
                    .map(|tuning| Choice::Transfer { tuning }),
            );
            if choices.len() > 1 {
                decisions.push(Decision {
                    name: "transfer".into(),
                    choices,
                });
            }
        }

        // 3d. CHORD overbooking (the Tailors-style expected-occupancy
        // grant): worst-case-dense level 0 first, then the configured
        // levels. Only DAGs that carry measured occupancy get the dimension
        // — on occupancy-free DAGs every level evaluates identically to
        // off, so offering it would multiply the space by pure duplicates.
        let carries_occupancy = dag.nodes().any(|(_, n)| n.output.occupancy.is_some())
            || dag.externals().iter().any(|x| x.meta.occupancy.is_some());
        if !cfg.overbook_menu.is_empty() && carries_occupancy {
            let mut choices = vec![Choice::Overbook {
                overbook: ChordOverbook::off(),
            }];
            choices.extend(
                cfg.overbook_menu
                    .iter()
                    .map(|o| o.normalized())
                    .filter(|o| !o.is_off())
                    .map(|overbook| Choice::Overbook { overbook }),
            );
            if choices.len() > 1 {
                decisions.push(Decision {
                    name: "overbook".into(),
                    choices,
                });
            }
        }

        // 4. Cluster cuts: nodes that actually join a cluster under the
        // fully-fused heuristic, biggest clusters first so the cuts that
        // matter most fit under the cap.
        let fused = Candidate::paper_heuristic().build(dag);
        let mut joiners: Vec<(usize, usize)> = Vec::new(); // (cluster size, node)
        for phase in &fused.phases {
            for &op in phase.ops.iter().skip(1) {
                joiners.push((phase.ops.len(), op.0));
            }
        }
        joiners.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, node) in joiners.iter().take(cfg.max_cut_points) {
            decisions.push(Decision {
                name: format!("cut@{node}"),
                choices: vec![
                    Choice::Cut {
                        node,
                        enabled: false,
                    },
                    Choice::Cut {
                        node,
                        enabled: true,
                    },
                ],
            });
        }

        // 5. Steering: CHORD-bound tensors by descending footprint.
        let mut chord_tensors: Vec<(u64, String)> = Vec::new();
        for (_, node) in dag.nodes() {
            if fused.binding_of(&node.output.name) == Binding::Chord {
                chord_tensors.push((node.output.words, node.output.name.clone()));
            }
        }
        for ext in dag.externals() {
            if fused.binding_of(&ext.meta.name) == Binding::Chord {
                chord_tensors.push((ext.meta.words, ext.meta.name.clone()));
            }
        }
        chord_tensors.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, tensor) in chord_tensors.iter().take(cfg.max_steer_tensors) {
            decisions.push(Decision {
                name: format!("steer@{tensor}"),
                choices: vec![
                    Choice::Steer {
                        tensor: tensor.clone(),
                        binding: Binding::Chord,
                    },
                    Choice::Steer {
                        tensor: tensor.clone(),
                        binding: Binding::Dram,
                    },
                ],
            });
        }

        // 6. CHORD priority biasing on the hottest CHORD-bound tensors: the
        // RIFF (freq, dist) metadata stops being a derived fact and becomes
        // a searched decision (neutral always first). Rides the same
        // footprint-ordered list as steering — the tensors whose residency
        // the bias can actually move.
        for (_, tensor) in chord_tensors.iter().take(cfg.max_chord_bias_tensors) {
            let mut choices = vec![Choice::ChordBias {
                tensor: tensor.clone(),
                bias: None,
            }];
            for &level in &cfg.chord_bias_magnitudes {
                choices.push(Choice::ChordBias {
                    tensor: tensor.clone(),
                    bias: Some(PriorityBias::Boost(level)),
                });
                choices.push(Choice::ChordBias {
                    tensor: tensor.clone(),
                    bias: Some(PriorityBias::Demote(level)),
                });
            }
            decisions.push(Decision {
                name: format!("bias@{tensor}"),
                choices,
            });
        }

        // 7. Loop-order flips on balanced nodes: the alternative is the pure
        // descending-extent order (no uncontracted-first promotion). Only
        // nodes where that actually differs get a decision.
        let mut flips = 0usize;
        for (nid, node) in dag.nodes() {
            if flips >= cfg.max_loop_order_nodes {
                break;
            }
            if node.dominance != Dominance::Balanced {
                continue;
            }
            let canonical = choose_loop_order(dag, nid);
            let mut ranks = node.spec.extents();
            ranks.sort_by(|a, b| b.effective.cmp(&a.effective).then(a.rank.cmp(&b.rank)));
            let flat = LoopOrder {
                order: ranks.into_iter().map(|r| r.rank).collect(),
            };
            if flat == canonical {
                continue;
            }
            decisions.push(Decision {
                name: format!("order@{}", nid.0),
                choices: vec![
                    Choice::OrderFlip {
                        node: nid.0,
                        order: None,
                    },
                    Choice::OrderFlip {
                        node: nid.0,
                        order: Some(flat),
                    },
                ],
            });
            flips += 1;
        }

        Self { decisions }
    }

    /// Number of full assignments (what exhaustive search enumerates).
    /// Saturates at `u64::MAX` instead of silently wrapping — the
    /// multi-node dimension can push combinatorial spaces past 2⁶⁴, and a
    /// wrapped size would make exhaustive enumeration think it was done
    /// after a sliver of the space.
    pub fn exhaustive_size(&self) -> u64 {
        self.decisions
            .iter()
            .map(|d| d.choices.len() as u64)
            .fold(1u64, u64::saturating_mul)
    }

    /// The all-defaults assignment (index 0 everywhere).
    pub fn default_picks(&self) -> Vec<usize> {
        vec![0; self.decisions.len()]
    }

    /// `samples` uniform seeded-random assignments — **the**
    /// `Strategy::Random` stream (one SplitMix64 draw per decision per
    /// sample, in order). The rank-correlation harnesses sample through
    /// this same method so "random candidates" means one thing everywhere.
    pub fn sample_assignments(&self, samples: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = crate::strategy::SplitMix64::new(seed);
        (0..samples)
            .map(|_| {
                self.decisions
                    .iter()
                    .map(|d| rng.below(d.choices.len() as u64) as usize)
                    .collect()
            })
            .collect()
    }

    /// Inverse of [`Self::assemble`] *across spaces*: the assignment of
    /// **this** space that best reproduces `candidate`, which may have been
    /// assembled by a different space (other node menus, other SRAM splits,
    /// another DAG-derived decision list). Decisions with no matching choice
    /// fall back to their paper-heuristic default, and candidate settings
    /// this space cannot express are dropped — projection is total, never an
    /// error. This is what lets `cello-serve` warm-start a search from a
    /// near-miss cache record: the cached Pareto candidates project into the
    /// new request's space as beam seeds.
    pub fn project(&self, candidate: &Candidate) -> Vec<usize> {
        let c = candidate;
        self.decisions
            .iter()
            .map(|d| {
                d.choices
                    .iter()
                    .position(|choice| match choice {
                        Choice::Preset {
                            scope,
                            enable_hold,
                            enable_multicast,
                            enable_chord,
                        } => {
                            c.options.scope == *scope
                                && c.options.enable_hold == *enable_hold
                                && c.options.enable_multicast == *enable_multicast
                                && c.options.enable_chord == *enable_chord
                        }
                        Choice::SramSplit {
                            pipeline_words,
                            rf_words,
                        } => {
                            c.options.pipeline_buffer_words == *pipeline_words
                                && c.options.rf_capacity_words == *rf_words
                        }
                        Choice::Cut { node, enabled } => {
                            c.constraints.cut_before.contains(node) == *enabled
                        }
                        Choice::Steer { tensor, binding } => {
                            c.constraints
                                .binding_overrides
                                .get(tensor)
                                .copied()
                                .unwrap_or(Binding::Chord)
                                == *binding
                        }
                        Choice::OrderFlip { node, order } => {
                            c.constraints.loop_orders.get(node) == order.as_ref()
                        }
                        Choice::ChordBias { tensor, bias } => {
                            c.constraints.chord_priority_bias.get(tensor).copied() == *bias
                        }
                        Choice::Partition { partition } => {
                            c.constraints.partition.unwrap_or_else(Partition::single) == *partition
                        }
                        Choice::Repartition { profile } => {
                            profile.as_ref().and_then(|p| p.to_constraint())
                                == c.constraints.phase_repartition
                        }
                        Choice::Transfer { tuning } => {
                            c.constraints
                                .transfer
                                .map(TransferTuning::normalized)
                                .unwrap_or_default()
                                == *tuning
                        }
                        Choice::Overbook { overbook } => {
                            c.constraints
                                .chord_overbook
                                .map(ChordOverbook::normalized)
                                .unwrap_or_default()
                                == *overbook
                        }
                    })
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Folds an assignment into a candidate. `picks` may be shorter than the
    /// decision list — unassigned decisions take their defaults — which is
    /// what beam search's partial prefixes rely on.
    pub fn assemble(&self, picks: &[usize]) -> Candidate {
        let mut c = Candidate::paper_heuristic();
        for (di, d) in self.decisions.iter().enumerate() {
            let pick = picks.get(di).copied().unwrap_or(0);
            apply_choice(&mut c, &d.choices[pick]);
        }
        c
    }

    /// Applies one decision's pick onto an already-assembled candidate —
    /// the incremental counterpart of [`Self::assemble`]. Because every
    /// default (index-0) choice is a no-op on the paper heuristic and each
    /// decision mutates disjoint candidate state, extending a prefix
    /// `picks[..di]`'s candidate with `apply_pick(c, di, pick)` yields
    /// exactly `assemble(picks[..di] ++ [pick])` — what lets beam search
    /// reuse prefix-built candidates instead of re-assembling the whole
    /// vector at every level.
    pub fn apply_pick(&self, c: &mut Candidate, decision: usize, pick: usize) {
        apply_choice(&mut *c, &self.decisions[decision].choices[pick]);
    }

    /// Decodes an exhaustive-enumeration index into an assignment vector
    /// (mixed-radix, decision 0 least significant — the same odometer order
    /// `Strategy::Exhaustive` walks). Indices are taken modulo
    /// [`Self::exhaustive_size`].
    pub fn index_to_picks(&self, index: u64) -> Vec<usize> {
        let mut rem = index;
        self.decisions
            .iter()
            .map(|d| {
                let n = d.choices.len() as u64;
                let p = (rem % n) as usize;
                rem /= n;
                p
            })
            .collect()
    }
}

/// Applies one [`Choice`] to a candidate (see [`SearchSpace::apply_pick`]).
fn apply_choice(c: &mut Candidate, choice: &Choice) {
    match choice {
        Choice::Preset {
            scope,
            enable_hold,
            enable_multicast,
            enable_chord,
        } => {
            c.options.scope = *scope;
            c.options.enable_hold = *enable_hold;
            c.options.enable_multicast = *enable_multicast;
            c.options.enable_chord = *enable_chord;
        }
        Choice::SramSplit {
            pipeline_words,
            rf_words,
        } => {
            c.options.pipeline_buffer_words = *pipeline_words;
            c.options.rf_capacity_words = *rf_words;
        }
        Choice::Cut { node, enabled } => {
            if *enabled {
                c.constraints.cut_before.insert(*node);
            }
        }
        Choice::Steer { tensor, binding } => {
            if *binding != Binding::Chord {
                c.constraints
                    .binding_overrides
                    .insert(tensor.clone(), *binding);
            }
        }
        Choice::Partition { partition } => {
            if partition.is_multi() {
                c.constraints.partition = Some(*partition);
            }
        }
        Choice::OrderFlip { node, order } => {
            if let Some(order) = order {
                c.constraints.loop_orders.insert(*node, order.clone());
            }
        }
        Choice::ChordBias { tensor, bias } => {
            if let Some(bias) = bias {
                c.constraints
                    .chord_priority_bias
                    .insert(tensor.clone(), *bias);
            }
        }
        Choice::Repartition { profile } => {
            if let Some(rep) = profile.as_ref().and_then(|p| p.to_constraint()) {
                c.constraints.phase_repartition = Some(rep);
            }
        }
        Choice::Transfer { tuning } => {
            if !tuning.normalized().is_off() {
                c.constraints.transfer = Some(tuning.normalized());
            }
        }
        Choice::Overbook { overbook } => {
            if !overbook.normalized().is_off() {
                c.constraints.chord_overbook = Some(overbook.normalized());
            }
        }
    }
}

fn preset(
    scope: PipelineScope,
    enable_hold: bool,
    enable_multicast: bool,
    enable_chord: bool,
) -> Choice {
    Choice::Preset {
        scope,
        enable_hold,
        enable_multicast,
        enable_chord,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn cg(iters: u32) -> TensorDag {
        build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: iters,
            a_occupancy: None,
        })
    }

    #[test]
    fn default_assignment_is_paper_heuristic() {
        let dag = cg(2);
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        let c = space.assemble(&space.default_picks());
        assert_eq!(c, Candidate::paper_heuristic());
        // Partial (empty) prefix does the same.
        assert_eq!(space.assemble(&[]), Candidate::paper_heuristic());
    }

    #[test]
    fn cg_space_has_all_dimensions() {
        let dag = cg(2);
        let cfg = SpaceConfig::default();
        let space = SearchSpace::from_dag(&dag, &cfg);
        let names: Vec<&str> = space.decisions.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names[0], "preset");
        assert_eq!(names[1], "sram-split");
        assert_eq!(
            names.iter().filter(|n| n.starts_with("cut@")).count(),
            cfg.max_cut_points
        );
        assert_eq!(
            names.iter().filter(|n| n.starts_with("steer@")).count(),
            cfg.max_steer_tensors
        );
        assert!(space.exhaustive_size() >= 6 * 6 * 16 * 16);
    }

    /// Listing node counts adds a partition dimension with single-node as
    /// the default choice, dominant-rank + stage variants per count, and
    /// assembled candidates that carry the partition constraint.
    #[test]
    fn node_choices_add_partition_dimension() {
        let dag = cg(2);
        let cfg = SpaceConfig::with_nodes(&[1, 4, 16]);
        let space = SearchSpace::from_dag(&dag, &cfg);
        let pd = space
            .decisions
            .iter()
            .position(|d| d.name == "partition")
            .expect("partition decision present");
        let d = &space.decisions[pd];
        // 1 single-node default + (rank + stage) × {4, 16}.
        assert_eq!(d.choices.len(), 5);
        assert_eq!(
            d.choices[0],
            Choice::Partition {
                partition: Partition::single()
            }
        );
        // Default assignment still reproduces the paper heuristic.
        assert_eq!(
            space.assemble(&space.default_picks()),
            Candidate::paper_heuristic()
        );
        // A non-default pick lands in the constraints and builds validly.
        let mut picks = space.default_picks();
        picks[pd] = 1;
        let c = space.assemble(&picks);
        let p = c.constraints.partition.expect("partition constrained");
        assert!(p.is_multi());
        c.build(&dag).validate(&dag).unwrap();

        // Default config: no partition dimension at all.
        let plain = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        assert!(plain.decisions.iter().all(|d| d.name != "partition"));
    }

    /// The widened config adds graded bias decisions (neutral + boost/demote
    /// per magnitude level) on the hottest CHORD tensors, keeps neutral as
    /// choice 0, and assembled bias picks land in the constraints.
    #[test]
    fn widened_space_adds_chord_bias_dimension() {
        let dag = cg(2);
        let cfg = SpaceConfig::widened();
        let space = SearchSpace::from_dag(&dag, &cfg);
        let biases: Vec<&Decision> = space
            .decisions
            .iter()
            .filter(|d| d.name.starts_with("bias@"))
            .collect();
        assert_eq!(biases.len(), cfg.max_chord_bias_tensors);
        for d in &biases {
            // Neutral + {boost, demote} × {1, 2, 3}.
            assert_eq!(d.choices.len(), 1 + 2 * cfg.chord_bias_magnitudes.len());
            assert_eq!(d.choices.len(), 7);
            assert!(matches!(d.choices[0], Choice::ChordBias { bias: None, .. }));
        }
        // Defaults still reproduce the heuristic; a bias pick constrains.
        assert_eq!(
            space.assemble(&space.default_picks()),
            Candidate::paper_heuristic()
        );
        let bi = space
            .decisions
            .iter()
            .position(|d| d.name.starts_with("bias@"))
            .unwrap();
        let mut picks = space.default_picks();
        picks[bi] = 1;
        let c = space.assemble(&picks);
        assert_eq!(c.constraints.chord_priority_bias.len(), 1);
        c.build(&dag).validate(&dag).unwrap();
        // The default config emits no bias dimension at all.
        let plain = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        assert!(plain.decisions.iter().all(|d| !d.name.starts_with("bias@")));
        // Widening multiplies the assignment count as advertised (6 cut
        // points × 7² graded biases × 5 transfer tunings vs 4 cut points).
        assert_eq!(
            space.exhaustive_size(),
            plain.exhaustive_size() * 4 * 49 * 5,
            "two extra cuts (×4), two graded bias tensors (×49), transfer (×5)"
        );
    }

    /// A transfer menu adds its dimension with the serialized depth-0 model
    /// as choice 0, assembled picks land as normalized constraints, off
    /// entries dedupe onto choice 0, and the default config leaves the
    /// space untouched.
    #[test]
    fn transfer_menu_adds_dimension() {
        let dag = cg(2);
        let cfg = SpaceConfig::widened();
        let space = SearchSpace::from_dag(&dag, &cfg);
        let td = space
            .decisions
            .iter()
            .position(|d| d.name == "transfer")
            .expect("transfer decision present");
        let d = &space.decisions[td];
        assert_eq!(d.choices.len(), 1 + cfg.transfer_menu.len());
        assert_eq!(
            d.choices[0],
            Choice::Transfer {
                tuning: TransferTuning::off()
            }
        );
        // Defaults still reproduce the paper heuristic (no constraint).
        let base = space.assemble(&space.default_picks());
        assert_eq!(base, Candidate::paper_heuristic());
        assert!(base.constraints.transfer.is_none());
        // A non-default pick lands normalized in the constraints and builds
        // a schedule that carries it.
        let mut picks = space.default_picks();
        picks[td] = 2; // double_buffered(1)
        let c = space.assemble(&picks);
        assert_eq!(
            c.constraints.transfer,
            Some(TransferTuning::double_buffered(1))
        );
        let s = c.build(&dag);
        s.validate(&dag).unwrap();
        assert_eq!(s.transfer, TransferTuning::double_buffered(1));
        // Off/denormalized menu entries are dropped rather than duplicated.
        let degenerate = SpaceConfig {
            transfer_menu: vec![
                TransferTuning::off(),
                TransferTuning {
                    prefetch_depth: 0,
                    double_buffer: true,
                },
            ],
            ..SpaceConfig::default()
        };
        let degen_space = SearchSpace::from_dag(&dag, &degenerate);
        assert!(degen_space.decisions.iter().all(|d| d.name != "transfer"));
        // The default config emits no transfer dimension at all.
        let plain = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        assert!(plain.decisions.iter().all(|d| d.name != "transfer"));
    }

    /// An overbook menu adds its dimension only on occupancy-carrying DAGs,
    /// with the worst-case-dense level as choice 0; picks land as normalized
    /// constraints; occupancy-free DAGs (and the default config) are
    /// untouched.
    #[test]
    fn overbook_menu_gated_on_dag_occupancy() {
        use cello_tensor::sparse::OccupancyStats;
        // The plain CG test DAG carries no occupancy: no dimension even
        // under the widened config (every level would evaluate identically).
        let plain_dag = cg(2);
        let widened = SearchSpace::from_dag(&plain_dag, &SpaceConfig::widened());
        assert!(widened.decisions.iter().all(|d| d.name != "overbook"));
        // An occupancy-carrying DAG opens the dimension.
        let mut skew = OccupancyStats::dense();
        skew.mean = 0.25;
        skew.variance = 0.04;
        let dag = build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: 2,
            a_occupancy: Some(skew),
        });
        let cfg = SpaceConfig::widened();
        let space = SearchSpace::from_dag(&dag, &cfg);
        let od = space
            .decisions
            .iter()
            .position(|d| d.name == "overbook")
            .expect("overbook decision present");
        let d = &space.decisions[od];
        assert_eq!(d.choices.len(), 1 + cfg.overbook_menu.len());
        assert_eq!(
            d.choices[0],
            Choice::Overbook {
                overbook: ChordOverbook::off()
            }
        );
        // Defaults still reproduce the paper heuristic (no constraint).
        let base = space.assemble(&space.default_picks());
        assert_eq!(base, Candidate::paper_heuristic());
        assert!(base.constraints.chord_overbook.is_none());
        // A non-default pick lands normalized and the schedule carries it.
        let mut picks = space.default_picks();
        picks[od] = 1;
        let c = space.assemble(&picks);
        assert_eq!(c.constraints.chord_overbook, Some(ChordOverbook::at(1)));
        let s = c.build(&dag);
        s.validate(&dag).unwrap();
        assert_eq!(s.chord_overbook, ChordOverbook::at(1));
        // Off/denormalized menu entries dedupe away the whole dimension.
        let degenerate = SpaceConfig {
            overbook_menu: vec![ChordOverbook::off(), ChordOverbook { level: 0 }],
            ..SpaceConfig::default()
        };
        let degen = SearchSpace::from_dag(&dag, &degenerate);
        assert!(degen.decisions.iter().all(|d| d.name != "overbook"));
        // The default config emits no overbook dimension at all.
        let dflt = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        assert!(dflt.decisions.iter().all(|d| d.name != "overbook"));
    }

    /// `index_to_picks` decodes the exhaustive odometer: index 0 is the
    /// default assignment, consecutive indices step decision 0 first, and
    /// every decoded pick is in range.
    #[test]
    fn index_to_picks_decodes_odometer_order() {
        let dag = cg(2);
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::widened_with_nodes(&[1, 4]));
        assert_eq!(space.index_to_picks(0), space.default_picks());
        let one = space.index_to_picks(1);
        assert_eq!(one[0], 1);
        assert!(one[1..].iter().all(|&p| p == 0));
        let radix0 = space.decisions[0].choices.len() as u64;
        let carry = space.index_to_picks(radix0);
        assert_eq!(carry[0], 0);
        assert_eq!(carry[1], 1);
        for idx in [7u64, 1000, space.exhaustive_size() - 1] {
            for (p, d) in space.index_to_picks(idx).iter().zip(&space.decisions) {
                assert!(*p < d.choices.len());
            }
        }
    }

    /// `apply_pick` on a prefix-assembled candidate equals re-assembling the
    /// extended prefix — the identity incremental beam assembly relies on.
    #[test]
    fn apply_pick_matches_prefix_reassembly() {
        let dag = cg(2);
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::widened_with_nodes(&[1, 4]));
        for picks in space.sample_assignments(8, 23) {
            let mut inc = space.assemble(&[]);
            for (di, &p) in picks.iter().enumerate() {
                space.apply_pick(&mut inc, di, p);
                assert_eq!(inc, space.assemble(&picks[..=di]));
            }
            assert_eq!(inc, space.assemble(&picks));
        }
    }

    /// A repartition menu adds its dimension with "no repartition" as the
    /// default, assembled picks land as validated constraints, and the empty
    /// menu (the default config) leaves the space untouched.
    #[test]
    fn repartition_menu_adds_dimension() {
        let dag = cg(2);
        let cfg = SpaceConfig::default().with_repartition(1 << 20);
        let space = SearchSpace::from_dag(&dag, &cfg);
        let rd = space
            .decisions
            .iter()
            .position(|d| d.name == "repartition")
            .expect("repartition decision present");
        let d = &space.decisions[rd];
        assert_eq!(d.choices.len(), 1 + cfg.repartition_profiles.len());
        assert!(matches!(
            d.choices[0],
            Choice::Repartition { profile: None }
        ));
        // Defaults still reproduce the paper heuristic.
        assert_eq!(
            space.assemble(&space.default_picks()),
            Candidate::paper_heuristic()
        );
        // A profile pick constrains and builds a valid, active repartition.
        let mut picks = space.default_picks();
        picks[rd] = 1;
        let c = space.assemble(&picks);
        let rep = c
            .constraints
            .phase_repartition
            .as_ref()
            .expect("profile constrained");
        rep.validate().unwrap();
        let s = c.build(&dag);
        s.validate(&dag).unwrap();
        assert!(s.repartition_active());
        // The default config has no repartition dimension at all.
        let plain = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        assert!(plain.decisions.iter().all(|d| d.name != "repartition"));
    }

    /// Menu profiles always fit their declared SRAM (oversized entries are
    /// filtered), and a degenerate hand-built profile is dropped at
    /// assembly — advisory semantics, never a panic inside the tuner.
    #[test]
    fn repartition_menu_respects_sram_budget() {
        for sram in [1u64 << 20, 1 << 18, 1 << 15] {
            for p in RepartitionProfile::menu(sram) {
                assert!(p.fused.fits(sram) && p.solo.fits(sram), "{p:?}");
                p.to_constraint().expect("menu fits").validate().unwrap();
            }
        }
        // A tiny SRAM filters the fat profiles but keeps the space usable.
        assert!(RepartitionProfile::menu(1 << 15).len() < RepartitionProfile::menu(1 << 20).len());

        // Hand-built overcommitted profile through the public fields: the
        // assembled candidate keeps the global split instead of panicking.
        let dag = cg(1);
        let cfg = SpaceConfig {
            repartition_profiles: vec![RepartitionProfile {
                sram_words: 100,
                fused: PhaseSplit::new(1000, 0),
                solo: PhaseSplit::new(0, 0),
            }],
            ..SpaceConfig::default()
        };
        let space = SearchSpace::from_dag(&dag, &cfg);
        let rd = space
            .decisions
            .iter()
            .position(|d| d.name == "repartition")
            .unwrap();
        let mut picks = space.default_picks();
        picks[rd] = 1;
        let c = space.assemble(&picks);
        assert!(c.constraints.phase_repartition.is_none(), "dropped");
        assert_eq!(c, Candidate::paper_heuristic());
    }

    /// `project` inverts `assemble` within one space, and across spaces it
    /// keeps what the target space can express while defaulting the rest.
    #[test]
    fn project_inverts_assemble_and_degrades_across_spaces() {
        let dag = cg(2);
        let cfg = SpaceConfig::widened_with_nodes(&[1, 4]).with_repartition(1 << 20);
        let space = SearchSpace::from_dag(&dag, &cfg);
        // Within one space: every sampled assignment round-trips exactly
        // (assemble is injective up to constraint no-ops, and none of the
        // sampled dimensions here collapse).
        for picks in space.sample_assignments(16, 11) {
            let c = space.assemble(&picks);
            assert_eq!(space.assemble(&space.project(&c)), c);
        }
        // Across spaces: a multi-node candidate projected into a single-node
        // space keeps the shared decisions (preset, sram split, cuts) and
        // defaults the partition it cannot express.
        let small = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        let mut picks = space.default_picks();
        let pd = space
            .decisions
            .iter()
            .position(|d| d.name == "partition")
            .unwrap();
        let sd = space
            .decisions
            .iter()
            .position(|d| d.name == "sram-split")
            .unwrap();
        picks[pd] = 1; // 4-node rank slice
        picks[sd] = 1; // non-default split
        let c = space.assemble(&picks);
        let projected = small.assemble(&small.project(&c));
        assert!(projected.constraints.partition.is_none(), "inexpressible");
        assert_eq!(
            projected.options.pipeline_buffer_words, c.options.pipeline_buffer_words,
            "shared decisions survive"
        );
    }

    /// Regression: the enlarged multi-node space must not wrap `u64` —
    /// `exhaustive_size` saturates instead.
    #[test]
    fn exhaustive_size_saturates_instead_of_overflowing() {
        let huge = Decision {
            name: "x".into(),
            choices: vec![
                Choice::Cut {
                    node: 0,
                    enabled: false
                };
                1 << 16
            ],
        };
        let space = SearchSpace {
            decisions: vec![huge; 5], // (2^16)^5 = 2^80 ≫ u64::MAX
        };
        assert_eq!(space.exhaustive_size(), u64::MAX);
    }

    #[test]
    fn every_assembled_candidate_builds_valid_schedule() {
        let dag = cg(1);
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        // Walk a deterministic sample of assignments (stride through the
        // odometer) and validate each built schedule.
        let total = space.exhaustive_size();
        let stride = (total / 50).max(1);
        let mut idx = 0u64;
        while idx < total {
            let mut rem = idx;
            let picks: Vec<usize> = space
                .decisions
                .iter()
                .map(|d| {
                    let p = (rem % d.choices.len() as u64) as usize;
                    rem /= d.choices.len() as u64;
                    p
                })
                .collect();
            let c = space.assemble(&picks);
            c.build(&dag).validate(&dag).unwrap();
            idx += stride;
        }
    }
}

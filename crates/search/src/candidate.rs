//! One point of the SCORE × CHORD co-design space.

use crate::fingerprint::{Fnv128Writer, ScheduleKey};
use cello_core::score::binding::{
    build_schedule_with, Binding, Schedule, ScheduleConstraints, ScheduleOptions,
};
use cello_core::score::multinode::PartitionAxis;
use cello_graph::dag::TensorDag;
use serde::{Deserialize, Serialize};

/// A candidate schedule: preset knobs plus programmatic constraints.
///
/// Candidates are *specs*, not schedules — [`Candidate::build`] materializes
/// one through `cello-core`'s constraint-validating builder, so every
/// candidate yields a schedule that passes `Schedule::validate` (invalid
/// constraint requests degrade to no-ops and dedupe in the eval cache).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Scheduler feature switches and buffer-partition sizes.
    pub options: ScheduleOptions,
    /// Cluster cuts, binding overrides, loop-order overrides.
    pub constraints: ScheduleConstraints,
}

impl Candidate {
    /// The paper's CELLO heuristic (`ScheduleOptions::cello()`, no
    /// constraints) — the baseline every search run scores first.
    pub fn paper_heuristic() -> Self {
        Self {
            options: ScheduleOptions::cello(),
            constraints: ScheduleConstraints::none(),
        }
    }

    /// Materializes the schedule.
    pub fn build(&self, dag: &TensorDag) -> Schedule {
        build_schedule_with(dag, self.options, &self.constraints)
    }

    /// Canonical key of a **built schedule** — the memo-cache identity.
    ///
    /// Two candidates whose decisions collapse to the same schedule (e.g. a
    /// "cut" before a node that never joined a cluster anyway, or a bogus
    /// partition the builder degraded to single-node) share a key and are
    /// evaluated once. The key covers everything the cheap evaluator's
    /// result depends on: phase structure, realized edges, bindings, the
    /// normalized multi-node partition, and — only when CHORD is in play —
    /// the SRAM partition that sizes it.
    pub fn schedule_key(schedule: &Schedule) -> String {
        let mut key = String::new();
        write_schedule_key(&mut key, schedule);
        key
    }

    /// The interned form of [`Self::schedule_key`]: the same canonical byte
    /// sequence streamed straight into a 128-bit FNV hasher, no `String`
    /// materialized. Both paths share `write_schedule_key`, so interned
    /// keys collide **exactly** when the string keys are equal — by
    /// construction, and pinned by the migration differential test.
    pub fn interned_key(schedule: &Schedule) -> ScheduleKey {
        let mut w = Fnv128Writer::new();
        write_schedule_key(&mut w, schedule);
        w.finish()
    }
}

/// Streams the canonical schedule-key text into any [`std::fmt::Write`]
/// sink — the single source of truth for both the human-readable `String`
/// key and the interned [`ScheduleKey`] hash.
pub(crate) fn write_schedule_key<W: std::fmt::Write>(key: &mut W, schedule: &Schedule) {
    for phase in &schedule.phases {
        for op in &phase.ops {
            let _ = write!(key, "{}.", op.0);
        }
        let _ = key.write_char('|');
    }
    let _ = key.write_char(';');
    for &r in &schedule.realized {
        let _ = key.write_char(if r { '1' } else { '0' });
    }
    let _ = key.write_char(';');
    for (name, b) in &schedule.binding {
        let tag = match b {
            Binding::RegisterFile => 'R',
            Binding::Pipeline => 'P',
            Binding::Chord => 'C',
            Binding::Dram => 'D',
        };
        let _ = write!(key, "{name}:{tag},");
    }
    let _ = key.write_char(';');
    if schedule.options.enable_chord {
        if schedule.repartition_active() {
            // Per-phase SRAM repartition: once any phase deviates, the
            // evaluators derive every capacity from the resolved
            // `phase_splits` vector and the global split is inert (the
            // engine resizes away the initial capacity before the first
            // access) — so the *vector* is the identity. Serializing
            // global+deviations instead would split candidates that
            // differ only in the unused global pb/rf choice into
            // distinct keys and re-run identical sim evaluations.
            for split in &schedule.phase_splits {
                let _ = write!(
                    key,
                    "@{}.{}",
                    split.pipeline_buffer_words, split.rf_capacity_words
                );
            }
        } else {
            // Uniform split: the global values are the whole story, and
            // a uniform repartition shares its key with the plain global
            // schedule (they evaluate identically by construction — the
            // differential proptest pins it). Without CHORD the splits
            // only matter through the phase structure and bindings
            // already serialized above.
            let _ = write!(
                key,
                "pb{}rf{}",
                schedule.options.pipeline_buffer_words, schedule.options.rf_capacity_words
            );
        }
    } else {
        let _ = key.write_char('x');
    }
    let _ = key.write_char(';');
    // CHORD priority biases: already validated down to CHORD-bound
    // tensors by the builder (empty without CHORD), so serializing the
    // surviving map is exactly the evaluation-relevant subset. The
    // magnitude level is part of the identity: Boost(1) and Boost(2)
    // evaluate differently.
    for (name, bias) in &schedule.chord_bias {
        let (tag, level) = match bias {
            cello_core::chord::PriorityBias::Boost(_) => ('+', bias.level()),
            cello_core::chord::PriorityBias::Demote(_) => ('-', bias.level()),
        };
        let _ = write!(key, "{name}{tag}{level},");
    }
    let _ = key.write_char(';');
    if schedule.partition.is_multi() {
        let _ = write!(key, "n{}", schedule.partition.nodes);
        match schedule.partition.axis {
            PartitionAxis::Rank(rank) => {
                let _ = write!(key, "r{rank}");
            }
            PartitionAxis::Stage => {
                let _ = key.write_char('s');
            }
        }
    } else {
        let _ = key.write_char('1');
    }
    // Transfer ordering: serialized only when it changes evaluation. A
    // depth-0 tuning is the pre-overlap model bit for bit, so those
    // schedules keep their historical keys (and their cached evaluations);
    // double- vs single-buffered staging at the same depth evaluates
    // differently, so the bank flag is part of the identity.
    if !schedule.transfer.is_off() {
        let _ = write!(
            key,
            ";t{}{}",
            schedule.transfer.prefetch_depth,
            if schedule.transfer.double_buffer {
                'd'
            } else {
                's'
            }
        );
    }
    // CHORD overbooking: serialized only when it changes evaluation. Level 0
    // is the worst-case-dense model bit for bit, so those schedules keep
    // their historical keys (and their cached evaluations).
    if !schedule.chord_overbook.is_off() {
        let _ = write!(key, ";ob{}", schedule.chord_overbook.level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_graph::edge::TensorMeta;
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn toy_chain(n_ops: usize) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 100_000),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..n_ops {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], 1_600_000),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "k"]);
            }
            prev = Some(id);
        }
        dag
    }

    #[test]
    fn heuristic_builds_valid_schedule() {
        let dag = toy_chain(4);
        let s = Candidate::paper_heuristic().build(&dag);
        s.validate(&dag).unwrap();
    }

    #[test]
    fn key_distinguishes_structure_not_noise() {
        let dag = toy_chain(3);
        let a = Candidate::paper_heuristic();
        // A cut before a node that never joined anything is a no-op...
        let mut noop = Candidate::paper_heuristic();
        noop.constraints.cut_before.insert(0); // node 0 starts a cluster anyway
        assert_eq!(
            Candidate::schedule_key(&a.build(&dag)),
            Candidate::schedule_key(&noop.build(&dag)),
        );
        // ...while a real cut changes the key.
        let mut cut = Candidate::paper_heuristic();
        cut.constraints.cut_before.insert(1);
        assert_ne!(
            Candidate::schedule_key(&a.build(&dag)),
            Candidate::schedule_key(&cut.build(&dag)),
        );
    }

    /// Multi-node partitions are part of the memo identity: same structure
    /// on different node counts (or axes) must evaluate separately, while a
    /// degraded (bogus-rank) partition collapses onto the single-node key.
    #[test]
    fn key_covers_multinode_partition() {
        use cello_core::score::multinode::Partition;
        use cello_tensor::shape::RankId;
        let dag = toy_chain(3);
        let base = Candidate::paper_heuristic();
        let with = |p: Partition| {
            let mut c = Candidate::paper_heuristic();
            c.constraints.partition = Some(p);
            Candidate::schedule_key(&c.build(&dag))
        };
        let k1 = Candidate::schedule_key(&base.build(&dag));
        let k4r = with(Partition::by_rank(4, RankId::new("m")));
        let k16r = with(Partition::by_rank(16, RankId::new("m")));
        let k4s = with(Partition::by_stage(4));
        assert_ne!(k1, k4r);
        assert_ne!(k4r, k16r);
        assert_ne!(k4r, k4s);
        // An unknown rank degrades to single-node and shares its key.
        assert_eq!(k1, with(Partition::by_rank(4, RankId::new("zz"))));
    }

    /// Valid CHORD priority biases are part of the memo identity; dropped
    /// (invalid) ones collapse onto the unbiased key.
    #[test]
    fn key_covers_chord_bias() {
        use cello_core::chord::PriorityBias;
        let dag = toy_chain(3);
        // T0/T1 are CHORD-bound intermediates under the cut schedule below.
        let with_bias = |tensor: &str, bias| {
            let mut c = Candidate::paper_heuristic();
            c.constraints.cut_before.insert(1);
            c.constraints.cut_before.insert(2);
            c.constraints
                .chord_priority_bias
                .insert(tensor.to_string(), bias);
            Candidate::schedule_key(&c.build(&dag))
        };
        let mut base = Candidate::paper_heuristic();
        base.constraints.cut_before.insert(1);
        base.constraints.cut_before.insert(2);
        let k = Candidate::schedule_key(&base.build(&dag));
        let kb = with_bias("T0", PriorityBias::Boost(1));
        let kd = with_bias("T0", PriorityBias::Demote(1));
        assert_ne!(k, kb);
        assert_ne!(kb, kd);
        // The magnitude level is part of the identity.
        assert_ne!(kb, with_bias("T0", PriorityBias::Boost(2)));
        // Biasing the terminal (DRAM-bound) tensor is dropped: same key.
        assert_eq!(k, with_bias("T2", PriorityBias::Boost(1)));
    }

    /// Key-migration differential: the interned 128-bit key is the FNV hash
    /// of exactly the canonical string key, so interned keys collide iff the
    /// strings were equal — across every structurally distinct schedule a
    /// small widened space can produce.
    #[test]
    fn interned_key_matches_string_key_exactly() {
        use crate::fingerprint::fnv128_hex;
        use crate::space::{SearchSpace, SpaceConfig};
        let dag = toy_chain(3);
        let cfg = SpaceConfig {
            max_cut_points: 2,
            max_steer_tensors: 1,
            max_loop_order_nodes: 1,
            max_chord_bias_tensors: 1,
            node_choices: vec![1, 4],
            ..SpaceConfig::default()
        };
        let space = SearchSpace::from_dag(&dag, &cfg);
        let total = space.exhaustive_size() as usize;
        let mut by_string = std::collections::HashMap::new();
        for i in 0..total {
            let cand = space.assemble(&space.index_to_picks(i as u64));
            let schedule = cand.build(&dag);
            let s = Candidate::schedule_key(&schedule);
            let k = Candidate::interned_key(&schedule);
            // The interned key is literally the hash of the string key.
            assert_eq!(k.hex(), fnv128_hex(&s));
            // Equal strings always landed on equal interned keys (and the
            // hash equation above makes unequal-string collisions a 128-bit
            // FNV collision — the trust level the serve cache already uses).
            let prev = by_string.insert(s, k);
            if let Some(p) = prev {
                assert_eq!(p, k);
            }
        }
        assert!(by_string.len() > 4, "space exercised distinct schedules");
    }

    /// Per-phase splits are part of the memo identity exactly when they
    /// deviate from the global split: a uniform repartition shares the plain
    /// schedule's key (identical evaluation), distinct profiles get
    /// distinct keys.
    #[test]
    fn key_covers_phase_repartition() {
        use cello_core::{PhaseRepartition, PhaseSplit};
        let dag = toy_chain(3);
        let sram = 1u64 << 20;
        let with = |fused: PhaseSplit, solo: PhaseSplit| {
            let mut c = Candidate::paper_heuristic();
            c.constraints.phase_repartition =
                Some(PhaseRepartition::by_kind(sram, fused, solo).unwrap());
            Candidate::schedule_key(&c.build(&dag))
        };
        let plain = Candidate::schedule_key(&Candidate::paper_heuristic().build(&dag));
        let global = PhaseSplit::of_options(&cello_core::ScheduleOptions::cello());
        assert_eq!(plain, with(global, global), "uniform = global identity");
        // The fused chain is one multi-op cluster: a solo-only profile is a
        // no-op (same key), while deviating fused splits each get their own.
        assert_eq!(plain, with(global, PhaseSplit::new(0, 4096)));
        let k1 = with(PhaseSplit::new(131_072, 16_384), PhaseSplit::new(0, 4096));
        let k2 = with(PhaseSplit::new(262_144, 16_384), PhaseSplit::new(0, 4096));
        assert_ne!(plain, k1);
        assert_ne!(k1, k2);
        // With a profile active the global sram-split choice is inert (every
        // capacity derives from the resolved per-phase vector), so two
        // candidates differing only in the unused global pb/rf must share a
        // key — one sim evaluation, not |global menu| duplicates.
        let with_global = |pb: u64, rf: u64| {
            let mut c = Candidate::paper_heuristic();
            c.options.pipeline_buffer_words = pb;
            c.options.rf_capacity_words = rf;
            c.constraints.phase_repartition = Some(
                PhaseRepartition::by_kind(
                    sram,
                    PhaseSplit::new(131_072, 16_384),
                    PhaseSplit::new(0, 4096),
                )
                .unwrap(),
            );
            Candidate::schedule_key(&c.build(&dag))
        };
        assert_eq!(with_global(65_536, 16_384), with_global(16_384, 4_096));
        assert_eq!(with_global(65_536, 16_384), k1);
    }

    /// Transfer tunings are part of the memo identity exactly when they
    /// overlap anything: the depth-0 tuning shares the plain schedule's key
    /// (bit-identical evaluation), while depth and bank mode each split it.
    #[test]
    fn key_covers_transfer_tuning() {
        use cello_core::TransferTuning;
        let dag = toy_chain(3);
        let with = |t: Option<TransferTuning>| {
            let mut c = Candidate::paper_heuristic();
            c.constraints.transfer = t;
            Candidate::schedule_key(&c.build(&dag))
        };
        let plain = with(None);
        assert_eq!(plain, with(Some(TransferTuning::off())), "off = no-op");
        assert_eq!(
            plain,
            with(Some(TransferTuning {
                prefetch_depth: 0,
                double_buffer: true,
            })),
            "depth-0 normalizes away the bank flag"
        );
        let d1 = with(Some(TransferTuning::double_buffered(1)));
        let d2 = with(Some(TransferTuning::double_buffered(2)));
        let s1 = with(Some(TransferTuning::single_buffered(1)));
        assert_ne!(plain, d1);
        assert_ne!(d1, d2, "depth is part of the identity");
        assert_ne!(d1, s1, "bank mode is part of the identity");
    }

    /// Overbook levels are part of the memo identity exactly when they
    /// overbook anything: level 0 shares the plain schedule's key
    /// (bit-identical evaluation), while distinct levels each split it.
    #[test]
    fn key_covers_chord_overbook() {
        use cello_core::ChordOverbook;
        let dag = toy_chain(3);
        let with = |o: Option<ChordOverbook>| {
            let mut c = Candidate::paper_heuristic();
            c.constraints.chord_overbook = o;
            Candidate::schedule_key(&c.build(&dag))
        };
        let plain = with(None);
        assert_eq!(plain, with(Some(ChordOverbook::off())), "off = no-op");
        let l1 = with(Some(ChordOverbook::at(1)));
        let l2 = with(Some(ChordOverbook::at(2)));
        assert_ne!(plain, l1);
        assert_ne!(l1, l2, "the level is part of the identity");
        // Beyond-max levels normalize onto the clamped key.
        assert_eq!(
            with(Some(ChordOverbook::at(200))),
            with(Some(ChordOverbook::at(cello_core::MAX_OVERBOOK_LEVEL)))
        );
    }

    #[test]
    fn key_ignores_partition_without_chord() {
        let dag = toy_chain(3);
        let mut a = Candidate::paper_heuristic();
        a.options.enable_chord = false;
        let mut b = a.clone();
        b.options.pipeline_buffer_words = 1024;
        // Without CHORD the partition does not affect evaluation: same key.
        assert_eq!(
            Candidate::schedule_key(&a.build(&dag)),
            Candidate::schedule_key(&b.build(&dag)),
        );
    }
}

//! The tuner: parallel scoring, strategy execution, outcome assembly.
//!
//! Three evaluation tiers form a funnel. Tier 0 ([`crate::tier0`]) is
//! symbolic: closed-form cost sketches over raw pick vectors, no schedule
//! ever built, pruned by Pareto dominance. The two concrete tiers share
//! one memo cache: the exact simulator (`cello_sim::evaluate`) and the
//! analytic surrogate ([`crate::surrogate::surrogate_cost`], whose cost
//! stays a bounded scan no matter how rich the exact tier grows). Direct
//! strategies score everything exactly; [`Strategy::Prefiltered`]
//! traverses on the surrogate and promotes only the top-ranked fraction
//! to the exact tier; with [`Strategy::Tier0`] as its inner traversal the
//! full funnel runs — sketch-prune thousands of assignments per
//! millisecond, surrogate-rank the survivors, simulate the top slice —
//! which is the piece that makes exhaustive-scale spaces
//! ([`SpaceConfig::widened`]) affordable.

use crate::cache::EvalCache;
use crate::candidate::Candidate;
use crate::cost::{pareto_front, rank, Evaluated};
use crate::fingerprint::ScheduleKey;
use crate::space::{SearchSpace, SpaceConfig};
use crate::strategy::Strategy;
use crate::surrogate::surrogate_cost;
use crate::tier0::Tier0Model;
use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use cello_sim::evaluate::{evaluate_schedule, CostEstimate};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Seed for tier-0's sampled sweep when the space exceeds the budget.
/// Fixed (not configurable) for the same reason `Strategy::Exhaustive` has
/// no seed: the tier-0 sweep is part of the strategy's identity, and two
/// runs of the same strategy must visit the same candidates.
pub(crate) const TIER0_SWEEP_SEED: u64 = 0x7E40;

/// What one `tune` run found.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Strategy label (for reports).
    pub strategy: String,
    /// The paper heuristic scored through the same evaluator.
    pub baseline: Evaluated,
    /// Fewest total cycles found.
    pub best_cycles: Evaluated,
    /// Fewest DRAM bytes found.
    pub best_dram: Evaluated,
    /// Fewest total traffic bytes (DRAM + NoC hop-bytes) found — the §V-B
    /// scalable-dataflow figure of merit.
    pub best_traffic: Evaluated,
    /// The non-dominated frontier over (cycles, DRAM bytes, NoC hop-bytes,
    /// energy).
    pub pareto: Vec<Evaluated>,
    /// Distinct schedules exactly evaluated (`cello_sim`) during this run.
    pub evaluations: u64,
    /// Lookups served by the exact memo cache during this run.
    pub cache_hits: u64,
    /// Assignments the strategy proposed (>= evaluations; the difference is
    /// deduplication plus cache reuse).
    pub candidates_seen: u64,
    /// Distinct schedules scored by the analytic surrogate during this run
    /// (0 for single-tier strategies).
    pub surrogate_scored: u64,
}

impl SearchOutcome {
    /// Cycle speedup of the tuned schedule over the paper heuristic.
    pub fn speedup(&self) -> f64 {
        self.baseline.cost.cycles as f64 / self.best_cycles.cost.cycles.max(1) as f64
    }

    /// DRAM-byte ratio tuned/baseline (< 1.0 means traffic saved).
    pub fn dram_ratio(&self) -> f64 {
        self.best_dram.cost.dram_bytes as f64 / self.baseline.cost.dram_bytes.max(1) as f64
    }

    /// Total-traffic (DRAM + NoC) ratio tuned/baseline.
    pub fn traffic_ratio(&self) -> f64 {
        self.best_traffic.cost.total_traffic_bytes() as f64
            / self.baseline.cost.total_traffic_bytes().max(1) as f64
    }
}

/// Ties a DAG + accelerator to a derived [`SearchSpace`] and a shared memo
/// cache, and runs strategies over it.
pub struct Tuner<'a> {
    pub(crate) dag: &'a TensorDag,
    pub(crate) accel: &'a CelloConfig,
    pub(crate) space: SearchSpace,
    pub(crate) cache: EvalCache,
}

impl<'a> Tuner<'a> {
    /// Derives the space from the DAG under `cfg`.
    pub fn new(dag: &'a TensorDag, accel: &'a CelloConfig, cfg: SpaceConfig) -> Self {
        Self {
            dag,
            accel,
            space: SearchSpace::from_dag(dag, &cfg),
            cache: EvalCache::new(),
        }
    }

    /// The derived space (inspectable for reporting).
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Scores a batch of candidates in parallel through `tier`, memoized in
    /// that tier's table. Results align with the input order.
    pub(crate) fn batch_with(&self, candidates: Vec<Candidate>, tier: Tier) -> Vec<Evaluated> {
        // Build every schedule (cheap, parallel) and intern its canonical
        // key — a 128-bit FNV streamed straight off the canonical text, so
        // no per-candidate `String` is ever allocated on this path.
        let built: Vec<(Candidate, cello_core::score::binding::Schedule, ScheduleKey)> = candidates
            .into_par_iter()
            .map(|c| {
                let schedule = c.build(self.dag);
                let key = Candidate::interned_key(&schedule);
                (c, schedule, key)
            })
            .collect();
        // One cache lookup per distinct key in the batch (so the hit counter
        // reflects genuine reuse, not bookkeeping); unique misses get one
        // evaluation each.
        let mut resolved: HashMap<ScheduleKey, CostEstimate> = HashMap::new();
        let mut pending: HashSet<ScheduleKey> = HashSet::new();
        let mut fresh: Vec<(ScheduleKey, &cello_core::score::binding::Schedule)> = Vec::new();
        for (_, schedule, key) in &built {
            if resolved.contains_key(key) || pending.contains(key) {
                continue;
            }
            let cached = match tier {
                Tier::Exact => self.cache.lookup(*key),
                Tier::Surrogate => self.cache.lookup_surrogate(*key),
            };
            match cached {
                Some(cost) => {
                    resolved.insert(*key, cost);
                }
                None => {
                    pending.insert(*key);
                    fresh.push((*key, schedule));
                }
            }
        }
        let costs: Vec<CostEstimate> = fresh
            .par_iter()
            .map(|(_, schedule)| match tier {
                Tier::Exact => evaluate_schedule(self.dag, schedule, self.accel),
                Tier::Surrogate => surrogate_cost(self.dag, schedule, self.accel),
            })
            .collect();
        for ((key, _), cost) in fresh.into_iter().zip(costs) {
            match tier {
                Tier::Exact => self.cache.insert(key, cost),
                Tier::Surrogate => self.cache.insert_surrogate(key, cost),
            }
            resolved.insert(key, cost);
        }
        built
            .iter()
            .map(|(candidate, _, key)| Evaluated {
                candidate: candidate.clone(),
                key: *key,
                cost: resolved[key],
            })
            .collect()
    }

    /// Exact-tier batch scoring.
    pub(crate) fn eval_batch(&self, candidates: Vec<Candidate>) -> Vec<Evaluated> {
        self.batch_with(candidates, Tier::Exact)
    }

    /// Runs a base strategy's traversal, scoring through `tier` and
    /// appending everything scored to `all`. `strategy` must not be
    /// `Prefiltered` (callers flatten it first). `seeds` are full
    /// assignments (see [`SearchSpace::project`]) that guide beam search:
    /// their prefixes always compete in (and survive into) the beam, so a
    /// narrow warm-started beam still walks the cached winners' paths.
    /// Exhaustive, random, and tier-0 traversals ignore seeds — the caller
    /// evaluates the full seed assignments up front instead.
    pub(crate) fn traverse(
        &self,
        strategy: &Strategy,
        tier: Tier,
        seeds: &[Vec<usize>],
        seen: &mut u64,
        all: &mut Vec<Evaluated>,
    ) {
        match *strategy {
            Strategy::Exhaustive => {
                let total = self.space.exhaustive_size();
                const BATCH: u64 = 1024;
                let mut idx = 0u64;
                while idx < total {
                    let hi = (idx + BATCH).min(total);
                    let batch: Vec<Candidate> = (idx..hi)
                        .map(|i| self.space.assemble(&self.space.index_to_picks(i)))
                        .collect();
                    *seen += batch.len() as u64;
                    all.extend(self.batch_with(batch, tier));
                    idx = hi;
                }
            }
            Strategy::Beam { width } => {
                let width = width.max(1);
                // The beam carries each prefix's already-assembled candidate:
                // extending a prefix applies exactly one decision
                // (`SearchSpace::apply_pick`) instead of re-walking the whole
                // vector — the level cost drops from O(prefix·pool) to
                // O(pool).
                let mut beam: Vec<(Vec<usize>, Candidate)> =
                    vec![(Vec::new(), self.space.assemble(&[]))];
                for (di, d) in self.space.decisions.iter().enumerate() {
                    let mut pool: Vec<(Vec<usize>, Candidate)> =
                        Vec::with_capacity(beam.len() * d.choices.len() + seeds.len());
                    let mut members: HashSet<Vec<usize>> = HashSet::with_capacity(pool.capacity());
                    for (prefix, cand) in &beam {
                        for choice in 0..d.choices.len() {
                            let mut picks = prefix.clone();
                            picks.push(choice);
                            if members.insert(picks.clone()) {
                                let mut c = cand.clone();
                                self.space.apply_pick(&mut c, di, choice);
                                pool.push((picks, c));
                            }
                        }
                    }
                    // Seed prefixes enter the pool even when no surviving
                    // beam prefix leads to them.
                    for s in seeds {
                        if let Some(prefix) = s.get(..=di) {
                            if members.insert(prefix.to_vec()) {
                                pool.push((prefix.to_vec(), self.space.assemble(prefix)));
                            }
                        }
                    }
                    let _level_span = cello_obs::span!("beam_level", level = di, pool = pool.len());
                    let batch: Vec<Candidate> = pool.iter().map(|(_, c)| c.clone()).collect();
                    *seen += batch.len() as u64;
                    let scored = self.batch_with(batch, tier);
                    all.extend(scored.iter().cloned());
                    let mut ranked: Vec<(usize, &Evaluated)> = scored.iter().enumerate().collect();
                    ranked.sort_by(|a, b| rank(a.1, b.1).then(a.0.cmp(&b.0)));
                    let survivors: Vec<usize> =
                        ranked.into_iter().take(width).map(|(i, _)| i).collect();
                    let mut kept: HashSet<Vec<usize>> =
                        survivors.iter().map(|&i| pool[i].0.clone()).collect();
                    let mut next: Vec<(Vec<usize>, Candidate)> =
                        survivors.into_iter().map(|i| pool[i].clone()).collect();
                    // Seed prefixes survive every level regardless of local
                    // rank: a seed that looks mediocre half-assigned can
                    // still be the best full schedule (its strength may live
                    // in a later decision), and dropping it would forfeit
                    // the whole point of warm-starting.
                    for s in seeds {
                        if let Some(prefix) = s.get(..=di) {
                            if kept.insert(prefix.to_vec()) {
                                next.push((prefix.to_vec(), self.space.assemble(prefix)));
                            }
                        }
                    }
                    beam = next;
                    debug_assert!(!beam.is_empty(), "beam emptied at decision {di}");
                }
            }
            Strategy::Random { samples, seed } => {
                let batch: Vec<Candidate> = self
                    .space
                    .sample_assignments(samples, seed)
                    .iter()
                    .map(|picks| self.space.assemble(picks))
                    .collect();
                *seen += batch.len() as u64;
                all.extend(self.batch_with(batch, tier));
            }
            Strategy::Tier0 { budget, keep } => {
                // Tier 0: sketch up to `budget` assignments symbolically (no
                // schedule build — see `crate::tier0`), promote only the
                // sketch-Pareto survivors to `tier`. Every sketched
                // assignment counts as seen: the sweep *is* the search
                // considering it and ruling it out.
                let model = Tier0Model::new(self.dag, self.accel, &self.space);
                let pruned = model.prune(&self.space, budget, keep, TIER0_SWEEP_SEED);
                *seen += pruned.swept;
                let registry = cello_obs::metrics::global();
                registry
                    .counter("search_tier0_kept")
                    .add(pruned.kept.len() as u64);
                registry
                    .counter("search_tier0_pruned")
                    .add(pruned.swept - pruned.kept.len() as u64);
                let batch: Vec<Candidate> =
                    pruned.kept.iter().map(|p| self.space.assemble(p)).collect();
                all.extend(self.batch_with(batch, tier));
            }
            Strategy::Prefiltered { .. } => unreachable!("prefilter flattened before traversal"),
        }
    }

    /// Runs one strategy, returning the outcome. The memo cache (both
    /// tiers) persists across calls on the same tuner.
    pub fn tune(&self, strategy: &Strategy) -> SearchOutcome {
        self.tune_seeded(strategy, &[])
    }

    /// [`Self::tune`] warm-started from `seeds` — candidates recovered from
    /// a cached Pareto front of a *near-miss* workload (same DAG, different
    /// SRAM split / node menu), projected into this space with
    /// [`SearchSpace::project`]. Every full seed assignment is exactly
    /// evaluated (so the outcome can never be worse than the best cached
    /// schedule re-scored under the new configuration), and beam traversals
    /// additionally keep the seeds' prefixes alive at every level. The
    /// payoff is budgetary: a *narrow* warm beam plus seeds reaches what a
    /// wide cold beam finds, at a fraction of the sim evaluations —
    /// `cello-serve` pairs seeds with `width / 4`.
    pub fn tune_seeded(&self, strategy: &Strategy, seeds: &[Candidate]) -> SearchOutcome {
        let _tune_span = cello_obs::span!("tune", strategy = strategy.label(), seeds = seeds.len());
        let seed_picks: Vec<Vec<usize>> = seeds.iter().map(|c| self.space.project(c)).collect();
        if let Strategy::Prefiltered { keep_frac, inner } = strategy {
            // Nested prefilters collapse: pruning an already-pruned
            // traversal is the same traversal.
            let mut base: &Strategy = inner;
            while let Strategy::Prefiltered { inner, .. } = base {
                base = inner;
            }
            if *keep_frac >= 1.0 {
                // Keeping everything prunes nothing: the tiers collapse and
                // the run IS the inner strategy (same best, same Pareto).
                let mut out = self.tune_seeded(base, seeds);
                out.strategy = strategy.label();
                return out;
            }
            return self.tune_prefiltered(*keep_frac, base, &strategy.label(), &seed_picks);
        }

        let hits_before = self.cache.hits();
        let evals_before = self.cache.evaluations();
        let mut seen: u64 = 0;
        let mut all: Vec<Evaluated> = Vec::new();

        // Baseline first: the paper heuristic is always part of the run.
        let baseline = self
            .eval_batch(vec![self.space.assemble(&self.space.default_picks())])
            .pop()
            .expect("baseline evaluates");
        seen += 1;
        all.push(baseline.clone());

        // Full seed assignments next: the cached winners re-scored under
        // this space's configuration, in the comparison set no matter what
        // the traversal below keeps.
        if !seed_picks.is_empty() {
            let batch: Vec<Candidate> = seed_picks.iter().map(|p| self.space.assemble(p)).collect();
            seen += batch.len() as u64;
            all.extend(self.eval_batch(batch));
        }

        self.traverse(strategy, Tier::Exact, &seed_picks, &mut seen, &mut all);

        self.outcome(
            strategy.label(),
            baseline,
            &all,
            seen,
            evals_before,
            hits_before,
            0,
        )
    }

    /// The two-tier path (see [`Strategy::Prefiltered`]): traverse on the
    /// surrogate, promote the top `keep_frac` of distinct schedules to the
    /// exact tier, report over exactly-evaluated candidates only. Seeds ride
    /// the surrogate traversal as beam guidance *and* are always promoted.
    fn tune_prefiltered(
        &self,
        keep_frac: f64,
        inner: &Strategy,
        label: &str,
        seed_picks: &[Vec<usize>],
    ) -> SearchOutcome {
        let hits_before = self.cache.hits();
        let evals_before = self.cache.evaluations();
        let surr_before = self.cache.surrogate_evaluations();
        let mut seen: u64 = 0;

        // Tier 1: the inner traversal guided entirely by the surrogate
        // (its beam ranks partial assignments on analytic scores).
        let mut scored: Vec<Evaluated> = Vec::new();
        scored.extend(self.batch_with(
            vec![self.space.assemble(&self.space.default_picks())],
            Tier::Surrogate,
        ));
        seen += 1;
        self.traverse(inner, Tier::Surrogate, seed_picks, &mut seen, &mut scored);

        // Rank the distinct visited schedules analytically; keep the top
        // fraction (at least one).
        let mut keys = HashSet::new();
        let mut uniq: Vec<Evaluated> = scored.into_iter().filter(|e| keys.insert(e.key)).collect();
        uniq.sort_by(rank);
        let keep = ((keep_frac.max(0.0) * uniq.len() as f64).ceil() as usize).clamp(1, uniq.len());
        let registry = cello_obs::metrics::global();
        registry.counter("search_prefilter_kept").add(keep as u64);
        registry
            .counter("search_prefilter_dropped")
            .add((uniq.len() - keep) as u64);

        // Tier 2: exact evaluation of the survivors, plus the baseline
        // (always part of the comparison set, filtered or not) and the full
        // seed assignments (cached winners never lost to surrogate ranking).
        let baseline = self
            .eval_batch(vec![self.space.assemble(&self.space.default_picks())])
            .pop()
            .expect("baseline evaluates");
        let mut survivors: Vec<Candidate> =
            uniq[..keep].iter().map(|e| e.candidate.clone()).collect();
        survivors.extend(seed_picks.iter().map(|p| self.space.assemble(p)));
        let mut all = vec![baseline.clone()];
        all.extend(self.eval_batch(survivors));

        let surrogate_scored = self.cache.surrogate_evaluations() - surr_before;
        self.outcome(
            label.to_string(),
            baseline,
            &all,
            seen,
            evals_before,
            hits_before,
            surrogate_scored,
        )
    }

    /// Assembles the report over an exactly-evaluated comparison set.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn outcome(
        &self,
        strategy: String,
        baseline: Evaluated,
        all: &[Evaluated],
        seen: u64,
        evals_before: u64,
        hits_before: u64,
        surrogate_scored: u64,
    ) -> SearchOutcome {
        let best_cycles = all
            .iter()
            .min_by(|a, b| rank(a, b))
            .expect("non-empty")
            .clone();
        let best_dram = all
            .iter()
            .min_by(|a, b| a.cost.dram_bytes.cmp(&b.cost.dram_bytes).then(rank(a, b)))
            .expect("non-empty")
            .clone();
        let best_traffic = all
            .iter()
            .min_by(|a, b| {
                a.cost
                    .total_traffic_bytes()
                    .cmp(&b.cost.total_traffic_bytes())
                    .then(rank(a, b))
            })
            .expect("non-empty")
            .clone();
        let evaluations = self.cache.evaluations() - evals_before;
        let cache_hits = self.cache.hits() - hits_before;
        // Mirror the per-run aggregates into the global metrics registry so
        // long-lived processes (cello-serve, cello_dse) expose cumulative
        // search counters through one `metrics` snapshot.
        let registry = cello_obs::metrics::global();
        registry.counter("search_tunes").inc();
        registry.counter("search_exact_evals").add(evaluations);
        registry.counter("search_cache_hits").add(cache_hits);
        registry
            .counter("search_surrogate_evals")
            .add(surrogate_scored);
        registry.counter("search_candidates").add(seen);
        SearchOutcome {
            strategy,
            baseline,
            best_cycles,
            best_dram,
            best_traffic,
            pareto: pareto_front(all),
            evaluations,
            cache_hits,
            candidates_seen: seen,
            surrogate_scored,
        }
    }
}

/// Which scoring tier a batch goes through.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tier {
    /// `cello_sim::evaluate` — exact, expensive.
    Exact,
    /// [`crate::surrogate::surrogate_cost`] — analytic, cheap.
    Surrogate,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceConfig;
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn cg(iters: u32) -> TensorDag {
        build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: iters,
            a_occupancy: None,
        })
    }

    fn small_cfg() -> SpaceConfig {
        SpaceConfig {
            max_cut_points: 2,
            max_steer_tensors: 2,
            max_loop_order_nodes: 1,
            pipeline_words_choices: vec![65_536, 16_384],
            rf_words_choices: vec![16_384],
            node_choices: vec![1],
            max_chord_bias_tensors: 0,
            chord_bias_magnitudes: vec![1],
            repartition_profiles: Vec::new(),
            transfer_menu: Vec::new(),
            overbook_menu: Vec::new(),
        }
    }

    #[test]
    fn exhaustive_never_loses_to_heuristic() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let out = tuner.tune(&Strategy::Exhaustive);
        assert!(out.best_cycles.cost.cycles <= out.baseline.cost.cycles);
        assert!(out.best_dram.cost.dram_bytes <= out.baseline.cost.dram_bytes);
        assert!(out.evaluations > 0);
        assert_eq!(out.surrogate_scored, 0, "single-tier run");
        assert!(!out.pareto.is_empty());
        // The frontier never contains a dominated point.
        for a in &out.pareto {
            for b in &out.pareto {
                assert!(!a.cost.dominates(&b.cost) || a.key == b.key);
            }
        }
    }

    #[test]
    fn beam_matches_exhaustive_on_small_space() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let exhaustive = tuner.tune(&Strategy::Exhaustive);
        let tuner2 = Tuner::new(&dag, &accel, small_cfg());
        let beam = tuner2.tune(&Strategy::Beam { width: 4 });
        // Beam found a schedule within 5% of exhaustive-best cycles, with
        // far fewer evaluations.
        let ratio = beam.best_cycles.cost.cycles as f64 / exhaustive.best_cycles.cost.cycles as f64;
        assert!(ratio <= 1.05, "beam within 5% (got {ratio})");
        assert!(beam.evaluations <= exhaustive.evaluations);
    }

    #[test]
    fn tuning_is_deterministic() {
        let dag = cg(1);
        let accel = CelloConfig::paper();
        let run = |strategy: &Strategy| {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let out = tuner.tune(strategy);
            (
                out.best_cycles.key,
                out.pareto.iter().map(|e| e.key).collect::<Vec<_>>(),
                out.evaluations,
            )
        };
        for strategy in [
            Strategy::Exhaustive,
            Strategy::Beam { width: 3 },
            Strategy::Random {
                samples: 40,
                seed: 7,
            },
            Strategy::prefiltered(0.25, Strategy::Beam { width: 3 }),
            Strategy::Tier0 {
                budget: 256,
                keep: 16,
            },
            Strategy::prefiltered(
                0.25,
                Strategy::Tier0 {
                    budget: 256,
                    keep: 16,
                },
            ),
        ] {
            assert_eq!(run(&strategy), run(&strategy), "{:?}", strategy);
        }
    }

    #[test]
    fn random_seed_changes_sample_set() {
        let dag = cg(1);
        let accel = CelloConfig::paper();
        // Fresh tuner per seed so the explored-schedule sets are directly
        // comparable (no cross-seed cache interference).
        let explored = |seed: u64| {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let out = tuner.tune(&Strategy::Random { samples: 30, seed });
            let mut keys: Vec<ScheduleKey> = out.pareto.iter().map(|e| e.key).collect();
            keys.sort();
            (out.evaluations, keys)
        };
        let runs: Vec<_> = (1..=4).map(explored).collect();
        assert!(
            runs.iter().any(|r| r != &runs[0]),
            "four seeds explored identical schedule sets: {runs:?}"
        );
    }

    /// The acceptance claim of the two-tier pipeline: on the widened
    /// (prefilter-scale) CG space, `Prefiltered(0.1, Beam)` lands within 2%
    /// of the full exact beam's best total traffic while invoking
    /// `sim::evaluate` on at most 15% as many candidates.
    #[test]
    fn prefiltered_beam_matches_full_beam_cheaply_on_widened_cg() {
        let dag = cg(3);
        let accel = CelloConfig::paper();
        let cfg = SpaceConfig::widened_with_nodes(&[1, 4]);
        let full = Tuner::new(&dag, &accel, cfg.clone()).tune(&Strategy::Beam { width: 8 });
        let tuner = Tuner::new(&dag, &accel, cfg);
        let pre = tuner.tune(&Strategy::prefiltered(0.1, Strategy::Beam { width: 8 }));
        let ratio = pre.best_traffic.cost.total_traffic_bytes() as f64
            / full.best_traffic.cost.total_traffic_bytes().max(1) as f64;
        assert!(
            ratio <= 1.02,
            "prefiltered traffic {} vs full beam {} ({ratio:.4}x)",
            pre.best_traffic.cost.total_traffic_bytes(),
            full.best_traffic.cost.total_traffic_bytes(),
        );
        assert!(
            (pre.evaluations as f64) <= 0.15 * full.evaluations as f64,
            "prefiltered sim evals {} vs full beam {}",
            pre.evaluations,
            full.evaluations,
        );
        // The analytic tier did the heavy lifting.
        assert!(pre.surrogate_scored > pre.evaluations);
    }

    /// The three-tier acceptance claim: with tier-0 as the inner traversal,
    /// `Prefiltered` lands within 2% of the two-tier funnel's best total
    /// traffic on the widened multi-node CG space while scoring strictly
    /// fewer candidates on the surrogate (the sketch absorbed the sweep) and
    /// sweeping far more assignments overall.
    #[test]
    fn tier0_funnel_matches_two_tier_with_fewer_surrogate_scorings() {
        let dag = cg(3);
        let accel = CelloConfig::paper();
        let cfg = SpaceConfig::widened_with_nodes(&[1, 4]);
        let two_tier = Tuner::new(&dag, &accel, cfg.clone())
            .tune(&Strategy::prefiltered(0.1, Strategy::Beam { width: 8 }));
        let funnel = Tuner::new(&dag, &accel, cfg).tune(&Strategy::prefiltered(
            0.1,
            Strategy::Tier0 {
                budget: 12_288,
                keep: 48,
            },
        ));
        let ratio = funnel.best_traffic.cost.total_traffic_bytes() as f64
            / two_tier.best_traffic.cost.total_traffic_bytes().max(1) as f64;
        assert!(
            ratio <= 1.02,
            "three-tier traffic {} vs two-tier {} ({ratio:.4}x)",
            funnel.best_traffic.cost.total_traffic_bytes(),
            two_tier.best_traffic.cost.total_traffic_bytes(),
        );
        assert!(
            funnel.surrogate_scored < two_tier.surrogate_scored,
            "tier-0 must shrink the surrogate tier ({} vs {})",
            funnel.surrogate_scored,
            two_tier.surrogate_scored,
        );
        assert!(
            funnel.candidates_seen >= 4 * two_tier.candidates_seen,
            "the sketch sweep must widen the funnel mouth ({} vs {})",
            funnel.candidates_seen,
            two_tier.candidates_seen,
        );
        // Tier-0 never drops the paper heuristic from the comparison set.
        assert!(
            funnel.best_traffic.cost.total_traffic_bytes()
                <= funnel.baseline.cost.total_traffic_bytes()
        );
    }

    /// `keep_frac = 1.0` keeps everything — no pruning — so the two-tier
    /// strategy returns the identical best candidate as its inner strategy.
    #[test]
    fn prefilter_keep_all_is_inner_strategy() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let inner = Strategy::Beam { width: 4 };
        let direct = Tuner::new(&dag, &accel, small_cfg()).tune(&inner);
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let pre = tuner.tune(&Strategy::prefiltered(1.0, inner));
        assert_eq!(pre.best_cycles.key, direct.best_cycles.key);
        assert_eq!(pre.best_cycles.candidate, direct.best_cycles.candidate);
        assert_eq!(pre.best_traffic.key, direct.best_traffic.key);
        assert_eq!(
            pre.pareto.iter().map(|e| &e.key).collect::<Vec<_>>(),
            direct.pareto.iter().map(|e| &e.key).collect::<Vec<_>>(),
        );
        assert_eq!(pre.strategy, "prefilter1+beam4");
    }

    /// The memo cache is shared across tiers and runs: an exact run after a
    /// prefiltered run re-evaluates only what the prefilter skipped, and
    /// the prefilter's surrogate table is warm for a second prefilter.
    #[test]
    fn cache_shared_across_tiers() {
        let dag = cg(1);
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let pre = tuner.tune(&Strategy::prefiltered(0.2, Strategy::Exhaustive));
        assert!(pre.surrogate_scored > 0);
        assert!(pre.evaluations < pre.surrogate_scored);
        // Same tuner, exact exhaustive: survivors already exactly cached.
        let exact = tuner.tune(&Strategy::Exhaustive);
        assert!(
            exact.evaluations < exact.candidates_seen - pre.evaluations,
            "tier-2 results were reused: {} fresh evals after {} prefiltered",
            exact.evaluations,
            pre.evaluations,
        );
        // A second prefilter run costs zero new scores in either tier.
        let again = tuner.tune(&Strategy::prefiltered(0.2, Strategy::Exhaustive));
        assert_eq!(again.surrogate_scored, 0);
        assert_eq!(again.evaluations, 0);
        assert_eq!(again.best_cycles.key, pre.best_cycles.key);
    }

    /// The §V-B acceptance claim: opening the multi-node dimension lets beam
    /// search find a schedule with strictly lower total (DRAM + NoC)
    /// traffic than the best single-node schedule on a capacity-bound CG —
    /// rank slicing shrinks per-node working sets until CHORD stops
    /// spilling, and the broadcast/reduce smalls cost orders of magnitude
    /// less than the spills saved. The winner must actually be multi-node.
    #[test]
    fn multinode_beam_beats_best_single_node_traffic_on_cg() {
        let dag = cg(3); // live set ≈ 1.6 Mi words/iter vs a 1 Mi-word SRAM
        let accel = CelloConfig::paper();
        let single = Tuner::new(&dag, &accel, small_cfg()).tune(&Strategy::Exhaustive);
        let best_single = single.best_traffic.cost.total_traffic_bytes();

        let mut cfg = small_cfg();
        cfg.node_choices = vec![1, 4];
        let multi = Tuner::new(&dag, &accel, cfg).tune(&Strategy::Beam { width: 4 });
        let best_multi = multi.best_traffic.cost.total_traffic_bytes();
        assert!(
            best_multi < best_single,
            "multi-node {best_multi} !< single-node {best_single}"
        );
        let winner = &multi.best_traffic.candidate;
        let partition = winner.constraints.partition.expect("winner is partitioned");
        assert!(partition.nodes >= 4, "{partition:?}");
    }

    /// The warm-start acceptance claim (the `cello-serve` near-miss path):
    /// seeding a *narrow* beam with the Pareto front cached from a run at a
    /// different SRAM size reaches the cold wide beam's best total traffic
    /// with strictly fewer sim evaluations.
    #[test]
    fn warm_started_narrow_beam_matches_cold_wide_beam_cheaply() {
        let dag = cg(3);
        let cfg = SpaceConfig::with_nodes(&[1, 4]);
        // The cached run: paper accel (4 MB SRAM), wide beam.
        let accel4 = CelloConfig::paper();
        let cached = Tuner::new(&dag, &accel4, cfg.clone()).tune(&Strategy::Beam { width: 8 });
        let seeds: Vec<Candidate> = cached.pareto.iter().map(|e| e.candidate.clone()).collect();
        // The near-miss request: same DAG, same space, 8 MB SRAM.
        let accel8 = CelloConfig::paper().with_sram_bytes(8 << 20);
        let cold = Tuner::new(&dag, &accel8, cfg.clone()).tune(&Strategy::Beam { width: 8 });
        let warm = Tuner::new(&dag, &accel8, cfg).tune_seeded(&Strategy::Beam { width: 2 }, &seeds);
        assert!(
            warm.best_traffic.cost.total_traffic_bytes()
                <= cold.best_traffic.cost.total_traffic_bytes(),
            "warm {} B !<= cold {} B",
            warm.best_traffic.cost.total_traffic_bytes(),
            cold.best_traffic.cost.total_traffic_bytes(),
        );
        assert!(
            warm.evaluations < cold.evaluations,
            "warm start must save sim evaluations ({} vs {})",
            warm.evaluations,
            cold.evaluations,
        );
    }

    /// Seeding with nothing is exactly `tune` (same bests, same eval count),
    /// and seeds never make an outcome worse than the best seed re-scored.
    #[test]
    fn empty_seeds_are_identity() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let a = Tuner::new(&dag, &accel, small_cfg()).tune(&Strategy::Beam { width: 3 });
        let b =
            Tuner::new(&dag, &accel, small_cfg()).tune_seeded(&Strategy::Beam { width: 3 }, &[]);
        assert_eq!(a.best_cycles.key, b.best_cycles.key);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn cache_is_shared_across_runs() {
        let dag = cg(1);
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let first = tuner.tune(&Strategy::Exhaustive);
        let second = tuner.tune(&Strategy::Exhaustive);
        assert!(first.evaluations > 0);
        assert_eq!(second.evaluations, 0, "everything served from cache");
        assert_eq!(first.best_cycles.key, second.best_cycles.key);
    }
}

//! The tuner: parallel scoring, strategy execution, outcome assembly.

use crate::cache::EvalCache;
use crate::candidate::Candidate;
use crate::cost::{pareto_front, rank, Evaluated};
use crate::space::{SearchSpace, SpaceConfig};
use crate::strategy::{SplitMix64, Strategy};
use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use cello_sim::evaluate::{evaluate_schedule, CostEstimate};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// What one `tune` run found.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Strategy label (for reports).
    pub strategy: String,
    /// The paper heuristic scored through the same evaluator.
    pub baseline: Evaluated,
    /// Fewest total cycles found.
    pub best_cycles: Evaluated,
    /// Fewest DRAM bytes found.
    pub best_dram: Evaluated,
    /// Fewest total traffic bytes (DRAM + NoC hop-bytes) found — the §V-B
    /// scalable-dataflow figure of merit.
    pub best_traffic: Evaluated,
    /// The non-dominated frontier over (cycles, DRAM bytes, NoC hop-bytes,
    /// energy).
    pub pareto: Vec<Evaluated>,
    /// Distinct schedules actually evaluated during this run.
    pub evaluations: u64,
    /// Lookups served by the memo cache during this run.
    pub cache_hits: u64,
    /// Assignments the strategy proposed (>= evaluations; the difference is
    /// deduplication plus cache reuse).
    pub candidates_seen: u64,
}

impl SearchOutcome {
    /// Cycle speedup of the tuned schedule over the paper heuristic.
    pub fn speedup(&self) -> f64 {
        self.baseline.cost.cycles as f64 / self.best_cycles.cost.cycles.max(1) as f64
    }

    /// DRAM-byte ratio tuned/baseline (< 1.0 means traffic saved).
    pub fn dram_ratio(&self) -> f64 {
        self.best_dram.cost.dram_bytes as f64 / self.baseline.cost.dram_bytes.max(1) as f64
    }

    /// Total-traffic (DRAM + NoC) ratio tuned/baseline.
    pub fn traffic_ratio(&self) -> f64 {
        self.best_traffic.cost.total_traffic_bytes() as f64
            / self.baseline.cost.total_traffic_bytes().max(1) as f64
    }
}

/// Ties a DAG + accelerator to a derived [`SearchSpace`] and a shared memo
/// cache, and runs strategies over it.
pub struct Tuner<'a> {
    dag: &'a TensorDag,
    accel: &'a CelloConfig,
    space: SearchSpace,
    cache: EvalCache,
}

impl<'a> Tuner<'a> {
    /// Derives the space from the DAG under `cfg`.
    pub fn new(dag: &'a TensorDag, accel: &'a CelloConfig, cfg: SpaceConfig) -> Self {
        Self {
            dag,
            accel,
            space: SearchSpace::from_dag(dag, &cfg),
            cache: EvalCache::new(),
        }
    }

    /// The derived space (inspectable for reporting).
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Scores a batch of candidates in parallel, memoized. Results align
    /// with the input order.
    fn eval_batch(&self, candidates: Vec<Candidate>) -> Vec<Evaluated> {
        // Build every schedule (cheap, parallel) and canonicalize.
        let built: Vec<(Candidate, cello_core::score::binding::Schedule, String)> = candidates
            .into_par_iter()
            .map(|c| {
                let schedule = c.build(self.dag);
                let key = Candidate::schedule_key(&schedule);
                (c, schedule, key)
            })
            .collect();
        // One cache lookup per distinct key in the batch (so the hit counter
        // reflects genuine reuse, not bookkeeping); unique misses get one
        // evaluation each.
        let mut resolved: HashMap<&str, CostEstimate> = HashMap::new();
        let mut pending: HashSet<&str> = HashSet::new();
        let mut fresh: Vec<(&str, &cello_core::score::binding::Schedule)> = Vec::new();
        for (_, schedule, key) in &built {
            if resolved.contains_key(key.as_str()) || pending.contains(key.as_str()) {
                continue;
            }
            match self.cache.lookup(key) {
                Some(cost) => {
                    resolved.insert(key, cost);
                }
                None => {
                    pending.insert(key);
                    fresh.push((key, schedule));
                }
            }
        }
        let costs: Vec<CostEstimate> = fresh
            .par_iter()
            .map(|(_, schedule)| evaluate_schedule(self.dag, schedule, self.accel))
            .collect();
        for ((key, _), cost) in fresh.into_iter().zip(costs) {
            self.cache.insert(key.to_string(), cost);
            resolved.insert(key, cost);
        }
        built
            .iter()
            .map(|(candidate, _, key)| Evaluated {
                candidate: candidate.clone(),
                key: key.clone(),
                cost: resolved[key.as_str()],
            })
            .collect()
    }

    /// Runs one strategy, returning the outcome. The memo cache persists
    /// across calls on the same tuner.
    pub fn tune(&self, strategy: Strategy) -> SearchOutcome {
        let hits_before = self.cache.hits();
        let evals_before = self.cache.evaluations();
        let mut seen: u64 = 0;
        let mut all: Vec<Evaluated> = Vec::new();

        // Baseline first: the paper heuristic is always part of the run.
        let baseline = self
            .eval_batch(vec![self.space.assemble(&self.space.default_picks())])
            .pop()
            .expect("baseline evaluates");
        seen += 1;
        all.push(baseline.clone());

        match strategy {
            Strategy::Exhaustive => {
                let total = self.space.exhaustive_size();
                const BATCH: u64 = 1024;
                let mut idx = 0u64;
                while idx < total {
                    let hi = (idx + BATCH).min(total);
                    let batch: Vec<Candidate> = (idx..hi)
                        .map(|i| self.space.assemble(&self.odometer(i)))
                        .collect();
                    seen += batch.len() as u64;
                    all.extend(self.eval_batch(batch));
                    idx = hi;
                }
            }
            Strategy::Beam { width } => {
                let width = width.max(1);
                let mut beam: Vec<Vec<usize>> = vec![Vec::new()];
                for (di, d) in self.space.decisions.iter().enumerate() {
                    let mut pool: Vec<Vec<usize>> = Vec::new();
                    for prefix in &beam {
                        for choice in 0..d.choices.len() {
                            let mut picks = prefix.clone();
                            picks.push(choice);
                            pool.push(picks);
                        }
                    }
                    let batch: Vec<Candidate> =
                        pool.iter().map(|p| self.space.assemble(p)).collect();
                    seen += batch.len() as u64;
                    let scored = self.eval_batch(batch);
                    all.extend(scored.iter().cloned());
                    let mut ranked: Vec<(usize, &Evaluated)> = scored.iter().enumerate().collect();
                    ranked.sort_by(|a, b| rank(a.1, b.1).then(a.0.cmp(&b.0)));
                    beam = ranked
                        .into_iter()
                        .take(width)
                        .map(|(i, _)| pool[i].clone())
                        .collect();
                    debug_assert!(!beam.is_empty(), "beam emptied at decision {di}");
                }
            }
            Strategy::Random { samples, seed } => {
                let mut rng = SplitMix64::new(seed);
                let batch: Vec<Candidate> = (0..samples)
                    .map(|_| {
                        let picks: Vec<usize> = self
                            .space
                            .decisions
                            .iter()
                            .map(|d| rng.below(d.choices.len() as u64) as usize)
                            .collect();
                        self.space.assemble(&picks)
                    })
                    .collect();
                seen += batch.len() as u64;
                all.extend(self.eval_batch(batch));
            }
        }

        let best_cycles = all
            .iter()
            .min_by(|a, b| rank(a, b))
            .expect("non-empty")
            .clone();
        let best_dram = all
            .iter()
            .min_by(|a, b| a.cost.dram_bytes.cmp(&b.cost.dram_bytes).then(rank(a, b)))
            .expect("non-empty")
            .clone();
        let best_traffic = all
            .iter()
            .min_by(|a, b| {
                a.cost
                    .total_traffic_bytes()
                    .cmp(&b.cost.total_traffic_bytes())
                    .then(rank(a, b))
            })
            .expect("non-empty")
            .clone();
        SearchOutcome {
            strategy: strategy.label(),
            baseline,
            best_cycles,
            best_dram,
            best_traffic,
            pareto: pareto_front(&all),
            evaluations: self.cache.evaluations() - evals_before,
            cache_hits: self.cache.hits() - hits_before,
            candidates_seen: seen,
        }
    }

    /// Mixed-radix decomposition of `index` over the decision sizes.
    fn odometer(&self, index: u64) -> Vec<usize> {
        let mut rem = index;
        self.space
            .decisions
            .iter()
            .map(|d| {
                let base = d.choices.len() as u64;
                let p = (rem % base) as usize;
                rem /= base;
                p
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceConfig;
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn cg(iters: u32) -> TensorDag {
        build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: iters,
        })
    }

    fn small_cfg() -> SpaceConfig {
        SpaceConfig {
            max_cut_points: 2,
            max_steer_tensors: 2,
            max_loop_order_nodes: 1,
            pipeline_words_choices: vec![65_536, 16_384],
            rf_words_choices: vec![16_384],
            node_choices: vec![1],
        }
    }

    #[test]
    fn exhaustive_never_loses_to_heuristic() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let out = tuner.tune(Strategy::Exhaustive);
        assert!(out.best_cycles.cost.cycles <= out.baseline.cost.cycles);
        assert!(out.best_dram.cost.dram_bytes <= out.baseline.cost.dram_bytes);
        assert!(out.evaluations > 0);
        assert!(!out.pareto.is_empty());
        // The frontier never contains a dominated point.
        for a in &out.pareto {
            for b in &out.pareto {
                assert!(!a.cost.dominates(&b.cost) || a.key == b.key);
            }
        }
    }

    #[test]
    fn beam_matches_exhaustive_on_small_space() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let exhaustive = tuner.tune(Strategy::Exhaustive);
        let tuner2 = Tuner::new(&dag, &accel, small_cfg());
        let beam = tuner2.tune(Strategy::Beam { width: 4 });
        // Beam found a schedule within 5% of exhaustive-best cycles, with
        // far fewer evaluations.
        let ratio = beam.best_cycles.cost.cycles as f64 / exhaustive.best_cycles.cost.cycles as f64;
        assert!(ratio <= 1.05, "beam within 5% (got {ratio})");
        assert!(beam.evaluations <= exhaustive.evaluations);
    }

    #[test]
    fn tuning_is_deterministic() {
        let dag = cg(1);
        let accel = CelloConfig::paper();
        let run = |strategy| {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let out = tuner.tune(strategy);
            (
                out.best_cycles.key.clone(),
                out.pareto.iter().map(|e| e.key.clone()).collect::<Vec<_>>(),
                out.evaluations,
            )
        };
        for strategy in [
            Strategy::Exhaustive,
            Strategy::Beam { width: 3 },
            Strategy::Random {
                samples: 40,
                seed: 7,
            },
        ] {
            assert_eq!(run(strategy), run(strategy), "{:?}", strategy);
        }
    }

    #[test]
    fn random_seed_changes_sample_set() {
        let dag = cg(1);
        let accel = CelloConfig::paper();
        // Fresh tuner per seed so the explored-schedule sets are directly
        // comparable (no cross-seed cache interference).
        let explored = |seed: u64| {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let out = tuner.tune(Strategy::Random { samples: 30, seed });
            let mut keys: Vec<String> = out.pareto.iter().map(|e| e.key.clone()).collect();
            keys.sort();
            (out.evaluations, keys)
        };
        let runs: Vec<_> = (1..=4).map(explored).collect();
        assert!(
            runs.iter().any(|r| r != &runs[0]),
            "four seeds explored identical schedule sets: {runs:?}"
        );
    }

    /// The §V-B acceptance claim: opening the multi-node dimension lets beam
    /// search find a schedule with strictly lower total (DRAM + NoC)
    /// traffic than the best single-node schedule on a capacity-bound CG —
    /// rank slicing shrinks per-node working sets until CHORD stops
    /// spilling, and the broadcast/reduce smalls cost orders of magnitude
    /// less than the spills saved. The winner must actually be multi-node.
    #[test]
    fn multinode_beam_beats_best_single_node_traffic_on_cg() {
        let dag = cg(3); // live set ≈ 1.6 Mi words/iter vs a 1 Mi-word SRAM
        let accel = CelloConfig::paper();
        let single = Tuner::new(&dag, &accel, small_cfg()).tune(Strategy::Exhaustive);
        let best_single = single.best_traffic.cost.total_traffic_bytes();

        let mut cfg = small_cfg();
        cfg.node_choices = vec![1, 4];
        let multi = Tuner::new(&dag, &accel, cfg).tune(Strategy::Beam { width: 4 });
        let best_multi = multi.best_traffic.cost.total_traffic_bytes();
        assert!(
            best_multi < best_single,
            "multi-node {best_multi} !< single-node {best_single}"
        );
        let winner = &multi.best_traffic.candidate;
        let partition = winner.constraints.partition.expect("winner is partitioned");
        assert!(partition.nodes >= 4, "{partition:?}");
    }

    #[test]
    fn cache_is_shared_across_runs() {
        let dag = cg(1);
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let first = tuner.tune(Strategy::Exhaustive);
        let second = tuner.tune(Strategy::Exhaustive);
        assert!(first.evaluations > 0);
        assert_eq!(second.evaluations, 0, "everything served from cache");
        assert_eq!(first.best_cycles.key, second.best_cycles.key);
    }
}

//! Funnel forensics: per-tier attribution of where every candidate died.
//!
//! The three-tier funnel ([`crate::tuner`]) discards candidates at three
//! lossy stages — the tier-0 symbolic prune, schedule-key deduplication,
//! and the surrogate keep-fraction cut — and only the survivors reach the
//! exact simulator. The plain [`SearchOutcome`]
//! reports aggregate counts; this module answers the forensic questions a
//! regression hunt actually asks:
//!
//! 1. **Does the accounting close?** Every proposed candidate must die in
//!    exactly one tier or be promoted:
//!    `candidates_seen = tier0_pruned + dedup_merged +
//!    surrogate_dropped + promoted`
//!    ([`FunnelAudit::accounts_exactly`]). A gap means a tier is
//!    silently eating (or double-counting) candidates.
//! 2. **Is tier 0 ranking sanely?** The sketch scalar is cross-checked
//!    against exact sim cycles on a sampled survivor subset via Spearman
//!    rank correlation ([`crate::surrogate::spearman`]).
//! 3. **Did the prune cost us the winner?** A deterministic sample of the
//!    *pruned* assignments is re-scored through the exact simulator; any
//!    sampled candidate whose cost strictly beats the reported winner is
//!    counted as `survivor_loss`. On exhaustively-coverable spaces the
//!    check is total: `sim_optimum_survived` evaluates the whole space and
//!    flags whether the funnel's winner matches the true sim optimum —
//!    the same property the `tier0_never_discards_the_sim_optimum`
//!    proptest pins.
//!
//! The audit is a *wrapper*: [`Tuner::tune_audited`] replays the exact
//! `tune` flow (same seeds, same ordering, same memo cache) while
//! collecting the per-tier ledger, so the returned outcome is identical to
//! an unaudited run — the forensics cost extra sim evaluations only for
//! the sampled cross-checks, all after the outcome is fixed.

use crate::cost::{rank, Evaluated};
use crate::strategy::{SplitMix64, Strategy};
use crate::surrogate::spearman;
use crate::tier0::{Tier0Model, Tier0Prune};
use crate::tuner::{SearchOutcome, Tier, Tuner, TIER0_SWEEP_SEED};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashSet;

/// Knobs for the audit's sampled cross-checks. All sampling is seeded and
/// deterministic: the same tune audited twice yields the same ledger.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// How many *pruned* assignments to re-score exactly for the
    /// survivor-loss check.
    pub pruned_samples: usize,
    /// How many tier-0 survivors to cross-check (sketch scalar vs exact
    /// sim cycles, Spearman).
    pub rank_samples: usize,
    /// When the space's exhaustive size is at most this, the audit
    /// sim-evaluates *everything* and sets
    /// [`FunnelAudit::sim_optimum_survived`]; larger spaces leave it
    /// `None` (the sampled survivor-loss check still runs).
    pub exhaustive_cap: u64,
    /// Seed for the pruned-assignment reservoir sample.
    pub seed: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            pruned_samples: 16,
            rank_samples: 24,
            exhaustive_cap: 512,
            seed: 0xA0D1,
        }
    }
}

/// The per-tier ledger of one audited tune: where every candidate died.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FunnelAudit {
    /// Strategy label (matches the outcome's).
    pub strategy: String,
    /// Assignments the strategy proposed (the funnel's mouth).
    pub candidates_seen: u64,
    /// Assignments tier 0 sketched (0 when the strategy has no tier-0
    /// stage).
    pub tier0_swept: u64,
    /// Sketch-Pareto survivors tier 0 promoted.
    pub tier0_kept: u64,
    /// Died in tier 0: sketched, symbolically dominated (or cap-evicted),
    /// never built.
    pub tier0_pruned: u64,
    /// Died by deduplication: distinct pick vectors that collapsed to an
    /// already-scored canonical schedule.
    pub dedup_merged: u64,
    /// Distinct schedules the surrogate ranked (the keep-fraction cut's
    /// input; 0 for single-tier strategies).
    pub surrogate_ranked: u64,
    /// Died at the surrogate cut: ranked below the keep fraction.
    pub surrogate_dropped: u64,
    /// Promoted to the exact simulator (distinct schedules).
    pub promoted: u64,
    /// Spearman rank correlation between the tier-0 sketch scalar and
    /// exact sim cycles over the sampled survivors (`None` without a
    /// tier-0 stage or with fewer than two samples).
    pub sketch_sim_spearman: Option<f64>,
    /// Survivors in the rank cross-check sample.
    pub rank_checked: u64,
    /// Pruned assignments re-scored exactly for the survivor-loss check.
    pub pruned_sampled: u64,
    /// Sampled pruned assignments whose exact cost strictly beats the
    /// reported winner — every one is a candidate the funnel lost.
    pub survivor_loss: u64,
    /// On exhaustively-coverable spaces (see
    /// [`AuditConfig::exhaustive_cap`]): did the funnel's winner match the
    /// sim optimum over the *whole* space? `None` when the space was too
    /// large to cover.
    pub sim_optimum_survived: Option<bool>,
}

impl FunnelAudit {
    /// The funnel-conservation identity: every proposed candidate died in
    /// exactly one tier or was promoted.
    pub fn accounts_exactly(&self) -> bool {
        self.candidates_seen == self.tier_sum()
    }

    /// `tier0_pruned + dedup_merged + surrogate_dropped + promoted`.
    pub fn tier_sum(&self) -> u64 {
        self.tier0_pruned + self.dedup_merged + self.surrogate_dropped + self.promoted
    }
}

/// Cost-only strict order (no schedule-key tiebreak): `Less` means `a`
/// genuinely beats `b` on the rank objectives, not merely on key order.
fn cost_rank(a: &Evaluated, b: &Evaluated) -> Ordering {
    a.cost
        .cycles
        .cmp(&b.cost.cycles)
        .then(a.cost.dram_bytes.cmp(&b.cost.dram_bytes))
        .then(a.cost.noc_hop_bytes.cmp(&b.cost.noc_hop_bytes))
        .then(a.cost.energy_pj.total_cmp(&b.cost.energy_pj))
}

impl<'a> Tuner<'a> {
    /// [`Tuner::tune`] with funnel forensics: identical outcome (same
    /// traversal, same seeds, same memo cache), plus the per-tier
    /// [`FunnelAudit`] ledger. The audit's extra exact evaluations (rank
    /// cross-check, pruned-sample re-scores, exhaustive coverage) run
    /// *after* the outcome is assembled, so they never perturb it.
    pub fn tune_audited(
        &self,
        strategy: &Strategy,
        cfg: &AuditConfig,
    ) -> (SearchOutcome, FunnelAudit) {
        // Flatten nested prefilters exactly like `tune_seeded`.
        let (keep_frac, base) = match strategy {
            Strategy::Prefiltered { keep_frac, inner } => {
                let mut b: &Strategy = inner;
                while let Strategy::Prefiltered { inner, .. } = b {
                    b = inner;
                }
                (Some(*keep_frac), b)
            }
            other => (None, other),
        };
        let prefiltered = matches!(keep_frac, Some(f) if f < 1.0);

        let hits_before = self.cache.hits();
        let evals_before = self.cache.evaluations();
        let surr_before = self.cache.surrogate_evaluations();
        let mut seen: u64 = 0;

        // Stage 1+2: the traversal, scored through the surrogate when a
        // real prefilter follows, exactly otherwise — mirroring
        // `tune_seeded` / `tune_prefiltered` step for step.
        let tier = if prefiltered {
            Tier::Surrogate
        } else {
            Tier::Exact
        };
        let mut scored: Vec<Evaluated> = Vec::new();
        scored
            .extend(self.batch_with(vec![self.space.assemble(&self.space.default_picks())], tier));
        seen += 1;

        // A tier-0 inner stage runs inline (instead of through `traverse`)
        // so the audit keeps the model and the prune result for its
        // cross-checks; counters and ordering match `traverse` exactly.
        let tier0: Option<(Tier0Model, Tier0Prune)> = match *base {
            Strategy::Tier0 { budget, keep } => {
                let model = Tier0Model::new(self.dag, self.accel, &self.space);
                let pruned = model.prune(&self.space, budget, keep, TIER0_SWEEP_SEED);
                seen += pruned.swept;
                let registry = cello_obs::metrics::global();
                registry
                    .counter("search_tier0_kept")
                    .add(pruned.kept.len() as u64);
                registry
                    .counter("search_tier0_pruned")
                    .add(pruned.swept - pruned.kept.len() as u64);
                let batch: Vec<_> = pruned.kept.iter().map(|p| self.space.assemble(p)).collect();
                scored.extend(self.batch_with(batch, tier));
                Some((model, pruned))
            }
            _ => {
                self.traverse(base, tier, &[], &mut seen, &mut scored);
                None
            }
        };
        let (tier0_swept, tier0_kept) = tier0
            .as_ref()
            .map_or((0, 0), |(_, p)| (p.swept, p.kept.len() as u64));
        let tier0_pruned = tier0_swept - tier0_kept;
        let scored_len = scored.len() as u64;

        // Dedup by canonical schedule key — the second lossy stage.
        let mut keys = HashSet::new();
        let mut uniq: Vec<Evaluated> = scored.into_iter().filter(|e| keys.insert(e.key)).collect();
        let dedup_merged = scored_len - uniq.len() as u64;
        let surrogate_ranked = if prefiltered { uniq.len() as u64 } else { 0 };

        // The keep-fraction cut (prefiltered) or a full promotion.
        let (outcome, promoted, surrogate_dropped) = if prefiltered {
            let keep_frac = keep_frac.expect("prefiltered implies a fraction");
            uniq.sort_by(rank);
            let keep =
                ((keep_frac.max(0.0) * uniq.len() as f64).ceil() as usize).clamp(1, uniq.len());
            let registry = cello_obs::metrics::global();
            registry.counter("search_prefilter_kept").add(keep as u64);
            registry
                .counter("search_prefilter_dropped")
                .add((uniq.len() - keep) as u64);
            let dropped = (uniq.len() - keep) as u64;
            let baseline = self
                .eval_batch(vec![self.space.assemble(&self.space.default_picks())])
                .pop()
                .expect("baseline evaluates");
            let survivors: Vec<_> = uniq[..keep].iter().map(|e| e.candidate.clone()).collect();
            let mut all = vec![baseline.clone()];
            all.extend(self.eval_batch(survivors));
            let surrogate_scored = self.cache.surrogate_evaluations() - surr_before;
            let outcome = self.outcome(
                strategy.label(),
                baseline,
                &all,
                seen,
                evals_before,
                hits_before,
                surrogate_scored,
            );
            (outcome, keep as u64, dropped)
        } else {
            // Direct (or keep-everything) run: every distinct schedule was
            // already exactly scored; the baseline is `scored[0]`.
            let baseline = uniq.first().expect("baseline scored first").clone();
            let all = uniq.clone();
            let outcome = self.outcome(
                strategy.label(),
                baseline,
                &all,
                seen,
                evals_before,
                hits_before,
                0,
            );
            (outcome, uniq.len() as u64, 0)
        };

        // ---- Forensics (outcome is fixed; everything below is read-only
        // with respect to the reported result). ----

        // Tier-0 rank cross-check: sketch scalar vs exact sim cycles over
        // the first `rank_samples` survivors (admission order, so the
        // sample is deterministic).
        let (sketch_sim_spearman, rank_checked) = match &tier0 {
            Some((model, pruned)) if !pruned.kept.is_empty() => {
                let sample: Vec<&Vec<usize>> =
                    pruned.kept.iter().take(cfg.rank_samples.max(2)).collect();
                let sketch: Vec<u64> = sample.iter().map(|p| model.sketch(p).scalar()).collect();
                let sims = self.eval_batch(sample.iter().map(|p| self.space.assemble(p)).collect());
                let cycles: Vec<u64> = sims.iter().map(|e| e.cost.cycles).collect();
                let rho = (sketch.len() >= 2).then(|| spearman(&sketch, &cycles));
                (rho, sample.len() as u64)
            }
            _ => (None, 0),
        };

        // Survivor-loss check: deterministically re-generate the tier-0
        // sweep stream, reservoir-sample the *pruned* assignments, and
        // re-score them exactly. Anything that strictly beats the winner
        // is a candidate the funnel lost.
        let (pruned_sampled, survivor_loss) = match &tier0 {
            Some((_, pruned)) if cfg.pruned_samples > 0 => {
                let sample = self.sample_pruned(pruned, cfg.pruned_samples, cfg.seed);
                let evals =
                    self.eval_batch(sample.iter().map(|p| self.space.assemble(p)).collect());
                let losses = evals
                    .iter()
                    .filter(|e| cost_rank(e, &outcome.best_cycles) == Ordering::Less)
                    .count() as u64;
                (sample.len() as u64, losses)
            }
            _ => (0, 0),
        };

        // Total coverage on small spaces: does the funnel's winner match
        // the sim optimum over the whole space?
        let total = self.space.exhaustive_size();
        let sim_optimum_survived = (total <= cfg.exhaustive_cap).then(|| {
            let all: Vec<_> = (0..total)
                .map(|i| self.space.assemble(&self.space.index_to_picks(i)))
                .collect();
            let evals = self.eval_batch(all);
            let optimum = evals.iter().min_by(|a, b| rank(a, b)).expect("non-empty");
            cost_rank(optimum, &outcome.best_cycles) != Ordering::Less
        });

        let audit = FunnelAudit {
            strategy: outcome.strategy.clone(),
            candidates_seen: outcome.candidates_seen,
            tier0_swept,
            tier0_kept,
            tier0_pruned,
            dedup_merged,
            surrogate_ranked,
            surrogate_dropped,
            promoted,
            sketch_sim_spearman,
            rank_checked,
            pruned_sampled,
            survivor_loss,
            sim_optimum_survived,
        };
        let registry = cello_obs::metrics::global();
        registry.counter("search_audit_runs").inc();
        registry
            .counter("search_audit_tier0_pruned")
            .add(tier0_pruned);
        registry
            .counter("search_audit_dedup_merged")
            .add(dedup_merged);
        registry
            .counter("search_audit_surrogate_dropped")
            .add(surrogate_dropped);
        registry.counter("search_audit_promoted").add(promoted);
        registry
            .counter("search_audit_survivor_loss")
            .add(survivor_loss);
        (outcome, audit)
    }

    /// Reservoir-samples up to `k` assignments the tier-0 sweep *pruned*,
    /// by replaying the exact sweep stream (`prune` is deterministic: the
    /// exhaustive odometer when the space fits the budget, the seeded
    /// SplitMix64 stream otherwise) and skipping the kept set.
    fn sample_pruned(&self, pruned: &Tier0Prune, k: usize, seed: u64) -> Vec<Vec<usize>> {
        let kept: HashSet<&Vec<usize>> = pruned.kept.iter().collect();
        let radices: Vec<usize> = self
            .space
            .decisions
            .iter()
            .map(|d| d.choices.len())
            .collect();
        let mut picks = vec![0usize; radices.len()];
        let mut reservoir: Vec<Vec<usize>> = Vec::with_capacity(k);
        let mut offered = 0u64;
        let mut res_rng = SplitMix64::new(seed);
        let mut offer = |picks: &Vec<usize>, reservoir: &mut Vec<Vec<usize>>| {
            offered += 1;
            if reservoir.len() < k {
                reservoir.push(picks.clone());
            } else {
                let j = res_rng.below(offered) as usize;
                if j < k {
                    reservoir[j] = picks.clone();
                }
            }
        };
        let total = self.space.exhaustive_size();
        if total <= pruned.swept {
            for _ in 0..total {
                if !kept.contains(&picks) {
                    offer(&picks, &mut reservoir);
                }
                for (p, &radix) in picks.iter_mut().zip(&radices) {
                    *p += 1;
                    if *p < radix {
                        break;
                    }
                    *p = 0;
                }
            }
        } else {
            let mut rng = SplitMix64::new(TIER0_SWEEP_SEED);
            for _ in 0..pruned.swept {
                for (p, &radix) in picks.iter_mut().zip(&radices) {
                    *p = rng.below(radix as u64) as usize;
                }
                if !kept.contains(&picks) {
                    offer(&picks, &mut reservoir);
                }
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceConfig;
    use cello_core::accel::CelloConfig;
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn cg(iters: u32) -> cello_graph::dag::TensorDag {
        build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: iters,
            a_occupancy: None,
        })
    }

    fn small_cfg() -> SpaceConfig {
        SpaceConfig {
            max_cut_points: 2,
            max_steer_tensors: 2,
            max_loop_order_nodes: 1,
            pipeline_words_choices: vec![65_536, 16_384],
            rf_words_choices: vec![16_384],
            node_choices: vec![1],
            max_chord_bias_tensors: 0,
            chord_bias_magnitudes: vec![1],
            repartition_profiles: Vec::new(),
            transfer_menu: Vec::new(),
            overbook_menu: Vec::new(),
        }
    }

    /// The funnel-conservation identity closes on every strategy shape:
    /// full three-tier, two-tier, and direct.
    #[test]
    fn accounting_closes_on_every_strategy_shape() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        for strategy in [
            Strategy::prefiltered(
                0.25,
                Strategy::Tier0 {
                    budget: 256,
                    keep: 16,
                },
            ),
            Strategy::prefiltered(0.25, Strategy::Beam { width: 3 }),
            Strategy::Tier0 {
                budget: 256,
                keep: 16,
            },
            Strategy::Beam { width: 3 },
            Strategy::Exhaustive,
        ] {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let (out, audit) = tuner.tune_audited(&strategy, &AuditConfig::default());
            assert!(
                audit.accounts_exactly(),
                "{}: seen {} != {} (= {} pruned + {} dedup + {} dropped + {} promoted)",
                audit.strategy,
                audit.candidates_seen,
                audit.tier_sum(),
                audit.tier0_pruned,
                audit.dedup_merged,
                audit.surrogate_dropped,
                audit.promoted,
            );
            assert_eq!(audit.candidates_seen, out.candidates_seen);
        }
    }

    /// The audit is a wrapper, not a different search: the audited outcome
    /// matches the unaudited one key for key.
    #[test]
    fn audited_outcome_matches_unaudited() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let strategy = Strategy::prefiltered(
            0.25,
            Strategy::Tier0 {
                budget: 256,
                keep: 16,
            },
        );
        let plain = Tuner::new(&dag, &accel, small_cfg()).tune(&strategy);
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let (audited, _) = tuner.tune_audited(&strategy, &AuditConfig::default());
        assert_eq!(plain.best_cycles.key, audited.best_cycles.key);
        assert_eq!(plain.best_traffic.key, audited.best_traffic.key);
        assert_eq!(plain.candidates_seen, audited.candidates_seen);
        assert_eq!(plain.surrogate_scored, audited.surrogate_scored);
        assert_eq!(
            plain.pareto.iter().map(|e| e.key).collect::<Vec<_>>(),
            audited.pareto.iter().map(|e| e.key).collect::<Vec<_>>(),
        );
    }

    /// With budget and keep cap covering the whole space the tier-0 prune
    /// is sound (the `tier0_never_discards_the_sim_optimum` property), and
    /// the audit's total-coverage flag must agree: the sim optimum
    /// survived, and no sampled pruned candidate beats the winner.
    #[test]
    fn coverage_flag_agrees_with_tier0_soundness() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        let budget = tuner.space().exhaustive_size();
        let strategy = Strategy::Tier0 {
            budget,
            keep: usize::MAX >> 1,
        };
        let cfg = AuditConfig {
            exhaustive_cap: budget,
            ..AuditConfig::default()
        };
        let (out, audit) = tuner.tune_audited(&strategy, &cfg);
        assert_eq!(audit.tier0_swept, budget, "full sweep");
        assert_eq!(
            audit.sim_optimum_survived,
            Some(true),
            "sound prune ⇒ the sim optimum survived every tier"
        );
        assert_eq!(
            audit.survivor_loss, 0,
            "no sampled pruned candidate may beat the winner of a sound prune"
        );
        // Cross-check agreement with exhaustive search, the long way.
        let ex = Tuner::new(&dag, &accel, small_cfg()).tune(&Strategy::Exhaustive);
        assert_eq!(out.best_cycles.cost, ex.best_cycles.cost);
    }

    /// The rank cross-check runs and is deterministic; the ledger fields
    /// that describe it are consistent with each other.
    #[test]
    fn rank_cross_check_is_deterministic() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let strategy = Strategy::prefiltered(
            0.25,
            Strategy::Tier0 {
                budget: 256,
                keep: 16,
            },
        );
        let run = || {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let (_, audit) = tuner.tune_audited(&strategy, &AuditConfig::default());
            audit
        };
        let a = run();
        let b = run();
        assert!(a.rank_checked >= 2, "enough survivors to correlate");
        assert_eq!(a.sketch_sim_spearman, b.sketch_sim_spearman);
        assert_eq!(a.survivor_loss, b.survivor_loss);
        assert_eq!(a.pruned_sampled, b.pruned_sampled);
        let rho = a.sketch_sim_spearman.expect("tier-0 ran");
        assert!((-1.0..=1.0).contains(&rho), "rho in range: {rho}");
    }
}

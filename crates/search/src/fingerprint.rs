//! Canonical workload fingerprints — the identity `cello-serve`'s
//! persistent schedule cache is keyed by.
//!
//! A compilation request is fully determined by four inputs: the tensor
//! dependency DAG, the accelerator configuration, the search-space config,
//! and the strategy. [`fingerprint`] serializes all four into one **stable
//! canonical text** (deterministic field order, explicit names, full-
//! precision floats — nothing depends on hash-map iteration order or
//! process state) and hashes it with 128-bit FNV-1a. Two hashes come out:
//!
//! - [`Fingerprint::hash`] over the whole text — the exact cache key;
//! - [`Fingerprint::family`] over the DAG + strategy sections only — the
//!   *near-miss* key: requests that differ solely in accelerator or space
//!   configuration (a different SRAM size, a wider node menu) share a
//!   family, and a cached family member's Pareto front can warm-start the
//!   new search ([`crate::Tuner::tune_seeded`]).
//!
//! Hashes are never trusted alone: the canonical text rides along in
//! [`Fingerprint::canon`], the cache stores it, and every lookup compares
//! the full text — a 128-bit collision (or a serialization-format drift
//! between versions) degrades to a cache miss, never to serving the wrong
//! schedule.

use crate::space::SpaceConfig;
use crate::strategy::Strategy;
use cello_core::accel::CelloConfig;
use cello_graph::dag::TensorDag;
use std::fmt::Write as _;

/// The fingerprint of one compilation request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// 128-bit FNV-1a of [`Self::canon`], lowercase hex — the cache key.
    pub hash: String,
    /// 128-bit FNV-1a of the DAG + strategy sections — the near-miss
    /// (warm-start) grouping key.
    pub family: String,
    /// The full canonical text the hashes were computed over, one section
    /// per line (`dag:` / `accel:` / `space:` / `strategy:`).
    pub canon: String,
}

impl Fingerprint {
    /// The `dag:` + `strategy:` lines of a canonical text — what two
    /// requests must share to be family (warm-start) candidates. Extracted
    /// rather than recomputed so a *stored* record's family text can be
    /// collision-checked against a fresh request without rebuilding the
    /// stored workload.
    pub fn family_canon_of(canon: &str) -> String {
        canon
            .lines()
            .filter(|l| l.starts_with("dag:") || l.starts_with("strategy:"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Fingerprints a compilation request (see module docs).
pub fn fingerprint(
    dag: &TensorDag,
    accel: &CelloConfig,
    space: &SpaceConfig,
    strategy: &Strategy,
) -> Fingerprint {
    let canon = format!(
        "dag:{}\naccel:{}\nspace:{}\nstrategy:{}",
        dag_canonical_text(dag),
        accel.canonical_text(),
        space_canonical_text(space),
        strategy.label(),
    );
    let family = fnv128_hex(&Fingerprint::family_canon_of(&canon));
    Fingerprint {
        hash: fnv128_hex(&canon),
        family,
        canon,
    }
}

/// Canonical single-line serialization of a DAG's evaluation-relevant
/// structure: nodes in id order (name, einsum with explicit extents, op
/// kind, output tensor), edges in id order (endpoints, consumer-side ranks
/// and layout), externals in declaration order (tensor + consumer list).
/// Everything the schedule builder and both evaluators read is covered;
/// derived fields (dominance, MAC counts) are functions of what's here and
/// stay out.
pub fn dag_canonical_text(dag: &TensorDag) -> String {
    let mut out = String::new();
    let tensor = |out: &mut String, m: &cello_graph::edge::TensorMeta| {
        let _ = write!(out, "{}[", m.name);
        for r in &m.ranks {
            let _ = write!(out, "{r},");
        }
        let _ = write!(out, "]w{}s{}l{:?}", m.words, m.sparse as u8, m.layout);
        // Occupancy statistics feed the overbooking model, so they are part
        // of the evaluation-relevant identity — but only when present:
        // occupancy-free tensors keep their historical spelling (and every
        // pre-occupancy cache entry stays valid).
        if let Some(occ) = &m.occupancy {
            let _ = write!(
                out,
                "o{{b{}n{}m{}v{}x{}h{:?}}}",
                occ.block_rows, occ.blocks, occ.mean, occ.variance, occ.max, occ.histogram
            );
        }
    };
    for (id, node) in dag.nodes() {
        let _ = write!(
            out,
            "n{}={}:{:?}:{}(",
            id.0, node.name, node.kind, node.spec
        );
        for e in node.spec.extents() {
            let _ = write!(out, "{}={}/{},", e.rank, e.extent, e.effective);
        }
        out.push_str(")->");
        tensor(&mut out, &node.output);
        out.push(';');
    }
    for (id, edge) in dag.edges() {
        let _ = write!(out, "e{}={}->{}[", id.0, edge.src, edge.dst);
        for r in &edge.dst_ranks {
            let _ = write!(out, "{r},");
        }
        let _ = write!(out, "]l{:?};", edge.dst_layout);
    }
    for ext in dag.externals() {
        out.push_str("x=");
        tensor(&mut out, &ext.meta);
        out.push('<');
        for (consumer, ranks) in &ext.consumers {
            let _ = write!(out, "{consumer}[");
            for r in ranks {
                let _ = write!(out, "{r},");
            }
            out.push(']');
        }
        out.push_str(">;");
    }
    out
}

/// Canonical serialization of a [`SpaceConfig`] — every cap and menu, in
/// declaration order.
fn space_canonical_text(cfg: &SpaceConfig) -> String {
    let mut out = format!(
        "space{{cuts={} steers={} orders={} pb={:?} rf={:?} nodes={:?} bias={} mags={:?}",
        cfg.max_cut_points,
        cfg.max_steer_tensors,
        cfg.max_loop_order_nodes,
        cfg.pipeline_words_choices,
        cfg.rf_words_choices,
        cfg.node_choices,
        cfg.max_chord_bias_tensors,
        cfg.chord_bias_magnitudes,
    );
    out.push_str(" rep=[");
    for p in &cfg.repartition_profiles {
        let _ = write!(
            out,
            "{}:{}+{}/{}+{},",
            p.sram_words,
            p.fused.pipeline_buffer_words,
            p.fused.rf_capacity_words,
            p.solo.pipeline_buffer_words,
            p.solo.rf_capacity_words,
        );
    }
    out.push_str("] xfer=[");
    for t in &cfg.transfer_menu {
        let _ = write!(
            out,
            "{}{},",
            t.prefetch_depth,
            if t.double_buffer { 'd' } else { 's' }
        );
    }
    out.push_str("] ob=[");
    for o in &cfg.overbook_menu {
        let _ = write!(out, "{},", o.level);
    }
    out.push_str("]}");
    out
}

/// FNV-1a 128-bit offset basis (hash of the empty string).
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a as 32 lowercase hex digits.
pub fn fnv128_hex(text: &str) -> String {
    let mut w = Fnv128Writer::new();
    w.consume(text.as_bytes());
    format!("{:032x}", w.finish().0)
}

/// An interned 128-bit schedule identity: the FNV-1a hash of the canonical
/// `Candidate::schedule_key` text, produced *streamingly* (the key
/// text is hashed as it is formatted, never materialized). Two keys are
/// equal exactly when the underlying canonical strings are equal (up to
/// 128-bit collision — the same trust level serve's fingerprint cache
/// already accepts). `Copy` + 16 bytes makes it free to thread through the
/// eval cache, dedup sets, and the beam, where `String` keys used to cost
/// an allocation plus byte-wise compares per candidate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ScheduleKey(pub u128);

impl ScheduleKey {
    /// The key as 32 lowercase hex digits — the stable wire/disk spelling
    /// used by serve's warm-start codec.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`Self::hex`] spelling back. Any non-hex or wrong-length
    /// input returns `None` (old stores carried raw key text here; those
    /// degrade to a fresh evaluation, never to a wrong hit).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ScheduleKey)
    }
}

/// Streaming 128-bit FNV-1a hasher that plugs into [`std::fmt::Write`], so
/// the exact byte sequence a `format!`-style serializer would produce can
/// be hashed without allocating the intermediate `String`.
#[derive(Clone, Debug)]
pub struct Fnv128Writer {
    h: u128,
}

impl Fnv128Writer {
    pub fn new() -> Self {
        Fnv128Writer { h: FNV128_OFFSET }
    }

    fn consume(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u128;
            self.h = self.h.wrapping_mul(FNV128_PRIME);
        }
    }

    pub fn finish(&self) -> ScheduleKey {
        ScheduleKey(self.h)
    }
}

impl Default for Fnv128Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Write for Fnv128Writer {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.consume(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn cg(m: u64, iters: u32) -> TensorDag {
        build_cg_dag(&CgParams {
            m,
            occupancy: 4.0,
            a_payload_words: 2 * 4 * m + m + 1,
            n: 16,
            nprime: 16,
            iterations: iters,
            a_occupancy: None,
        })
    }

    #[test]
    fn equal_requests_fingerprint_identically() {
        let a = fingerprint(
            &cg(20_000, 2),
            &CelloConfig::paper(),
            &SpaceConfig::default(),
            &Strategy::Beam { width: 8 },
        );
        let b = fingerprint(
            &cg(20_000, 2),
            &CelloConfig::paper(),
            &SpaceConfig::default(),
            &Strategy::Beam { width: 8 },
        );
        assert_eq!(a, b);
        assert_eq!(a.hash.len(), 32);
        assert_eq!(a.family.len(), 32);
    }

    /// Every request ingredient separates the exact hash; only DAG and
    /// strategy separate the family.
    #[test]
    fn ingredients_separate_hash_family_tracks_dag_and_strategy() {
        let dag = cg(20_000, 2);
        let base = fingerprint(
            &dag,
            &CelloConfig::paper(),
            &SpaceConfig::default(),
            &Strategy::Beam { width: 8 },
        );
        // Different DAG: new hash AND new family.
        let other_dag = fingerprint(
            &cg(30_000, 2),
            &CelloConfig::paper(),
            &SpaceConfig::default(),
            &Strategy::Beam { width: 8 },
        );
        assert_ne!(base.hash, other_dag.hash);
        assert_ne!(base.family, other_dag.family);
        // Different strategy: new hash AND new family.
        let other_strat = fingerprint(
            &dag,
            &CelloConfig::paper(),
            &SpaceConfig::default(),
            &Strategy::Beam { width: 4 },
        );
        assert_ne!(base.hash, other_strat.hash);
        assert_ne!(base.family, other_strat.family);
        // Different accel / space: new hash, SAME family — the near-miss
        // relation warm-starting is built on.
        let other_accel = fingerprint(
            &dag,
            &CelloConfig::paper().with_sram_bytes(8 << 20),
            &SpaceConfig::default(),
            &Strategy::Beam { width: 8 },
        );
        assert_ne!(base.hash, other_accel.hash);
        assert_eq!(base.family, other_accel.family);
        let other_space = fingerprint(
            &dag,
            &CelloConfig::paper(),
            &SpaceConfig::with_nodes(&[1, 4]),
            &Strategy::Beam { width: 8 },
        );
        assert_ne!(base.hash, other_space.hash);
        assert_eq!(base.family, other_space.family);
        // A transfer menu is part of the space section too.
        let xfer_space = SpaceConfig {
            transfer_menu: SpaceConfig::default_transfer_menu(),
            ..SpaceConfig::default()
        };
        let other_xfer = fingerprint(
            &dag,
            &CelloConfig::paper(),
            &xfer_space,
            &Strategy::Beam { width: 8 },
        );
        assert_ne!(base.hash, other_xfer.hash);
        assert_eq!(base.family, other_xfer.family);
        // So is the overbook menu.
        let ob_space = SpaceConfig {
            overbook_menu: SpaceConfig::default_overbook_menu(),
            ..SpaceConfig::default()
        };
        let other_ob = fingerprint(
            &dag,
            &CelloConfig::paper(),
            &ob_space,
            &Strategy::Beam { width: 8 },
        );
        assert_ne!(base.hash, other_ob.hash);
        assert_eq!(base.family, other_ob.family);
    }

    /// Occupancy statistics change the DAG identity (and therefore the
    /// family): the same shape with different measured sparsity must not
    /// share cached schedules, while occupancy-free DAGs keep their
    /// historical spelling.
    #[test]
    fn occupancy_separates_dag_identity() {
        use cello_tensor::sparse::OccupancyStats;
        let plain = dag_canonical_text(&cg(20_000, 2));
        assert!(!plain.contains("o{"), "no occupancy suffix when absent");
        let dag_occ = build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: 2,
            a_occupancy: Some(OccupancyStats::dense()),
        });
        let with_occ = dag_canonical_text(&dag_occ);
        assert_ne!(plain, with_occ);
        assert!(with_occ.contains("o{"));
    }

    #[test]
    fn family_canon_extraction_matches_family_hash() {
        let fp = fingerprint(
            &cg(20_000, 1),
            &CelloConfig::paper(),
            &SpaceConfig::default(),
            &Strategy::Exhaustive,
        );
        assert_eq!(
            fnv128_hex(&Fingerprint::family_canon_of(&fp.canon)),
            fp.family
        );
    }

    #[test]
    fn fnv128_known_values() {
        // FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(fnv128_hex(""), "6c62272e07bb014262b821756295c58d");
        assert_ne!(fnv128_hex("a"), fnv128_hex("b"));
    }

    /// The streaming writer hashes exactly the bytes written, whatever the
    /// chunking, and matches the one-shot string hash.
    #[test]
    fn streaming_writer_matches_one_shot_hash() {
        use std::fmt::Write as _;
        let mut w = Fnv128Writer::new();
        let (name, idx, tag) = ("spmv", 3, "realized");
        write!(w, "op.{name}|{idx};{tag}").unwrap();
        assert_eq!(w.finish().hex(), fnv128_hex("op.spmv|3;realized"));
        // Chunk boundaries are invisible.
        let mut a = Fnv128Writer::new();
        a.write_str("hel").unwrap();
        a.write_str("lo").unwrap();
        let mut b = Fnv128Writer::new();
        b.write_str("hello").unwrap();
        assert_eq!(a.finish(), b.finish());
        assert_eq!(Fnv128Writer::new().finish().hex(), fnv128_hex(""));
    }

    #[test]
    fn schedule_key_hex_round_trips() {
        let k = Fnv128Writer::new().finish();
        assert_eq!(ScheduleKey::from_hex(&k.hex()), Some(k));
        let k2 = ScheduleKey(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        assert_eq!(k2.hex().len(), 32);
        assert_eq!(ScheduleKey::from_hex(&k2.hex()), Some(k2));
        // Legacy raw-text keys (wrong length / non-hex) degrade to None.
        assert_eq!(ScheduleKey::from_hex("op.spmv|3;realized"), None);
        assert_eq!(
            ScheduleKey::from_hex("zz62272e07bb014262b821756295c58d"),
            None
        );
    }
}

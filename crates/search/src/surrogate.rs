//! Tier-1 analytic cost model — closed-form scoring without the simulator.
//!
//! The exact evaluator (`cello_sim::evaluate`) replays a schedule's phase
//! plan against the stateful CHORD machinery: a RIFF queue with word-level
//! residency, tail evictions, and history, whose per-access cost grows
//! with everything the buffer model learns to do. This surrogate consumes
//! the **same** [`cello_sim::phases::PhasePlan`] (so footprints,
//! slicing, multicast dedup, NoC hops and compute shares are identical by
//! construction) but replaces the buffer walk with a closed-form capacity
//! split, in the spirit of Ahrens & Kjolstad's asymptotic cost ranking:
//!
//! - per access, a CHORD-bound tensor's resident estimate is
//!   `min(words, max(0, capacity − Σ granted residency of higher-priority
//!   live tensors))`, monotone non-increasing between fetches — a
//!   Belady-like split ordered by the same RIFF `(freq, dist)` priority the
//!   hardware uses (ties break toward the earlier-admitted tensor, as
//!   `riff_victim`'s strict inequality does);
//! - grants are settled **eagerly**: whenever a new grant (or a per-phase
//!   capacity shrink) over-subscribes the buffer, strictly-junior residency
//!   is revoked immediately in the backend's victim order and dirty
//!   revocations are charged as writebacks right there — so evictions land
//!   in the phase, and on the victim, the RIFF machinery would pick
//!   (lazily settled grants misattributed whole-capacity-sized charges in
//!   the near-full-capacity regimes per-phase repartition unlocks);
//! - everything else (RF cold loads, DRAM round-trips, pipeline residency,
//!   dirty-eviction writebacks, table-slot exhaustion) mirrors the backend
//!   rules arithmetically.
//!
//! The result is a [`CostEstimate`] in the same units as the simulator's.
//! The scoring pass itself is a bounded scan (at most `riff_entries` live
//! tensors per access) instead of RIFF queue surgery, so its cost no longer
//! grows with buffer behavior — today both tiers are dominated by the
//! shared plan construction, and the budget the prefilter frees is
//! **exact-tier evaluations**: every sim feature that gets more expensive
//! (trace-driven cache baselines, contention-aware NoC, per-phase SRAM
//! repartition) widens the gap without touching the search. It is an
//! *estimate* — `Strategy::Prefiltered` uses it only to rank candidates and
//! always re-scores survivors with the exact tier; `cost_model_fit` and the
//! surrogate proptests pin its rank correlation against the simulator.

use cello_core::accel::CelloConfig;
use cello_core::chord::RiffPriority;
use cello_core::score::binding::{Binding, Schedule};
use cello_graph::dag::TensorDag;
use cello_mem::model::BufferKind;
use cello_mem::stats::AccessStats;
use cello_sim::energy::{noc_energy_pj, offchip_energy_pj, onchip_energy_pj};
use cello_sim::evaluate::{chord_capacity_words, phase_chord_capacity_words, CostEstimate};
use cello_sim::overlap::OverlapLedger;
use cello_sim::phases::plan_phases;
use std::collections::{BTreeMap, BTreeSet};

/// A live CHORD tensor in the analytic occupancy model.
struct LiveTensor {
    priority: RiffPriority,
    /// Admission order — the tiebreak for equal priorities (RIFF's victim
    /// search needs *strictly* lower priority, so incumbents win ties).
    seq: u64,
    dirty: bool,
    /// Resident estimate at the last access (to charge dirty shrinkage as
    /// writeback traffic, as tail eviction would).
    granted: u64,
}

/// Evicts granted residency weakest-first until the live set fits `cap`,
/// charging evicted *dirty* grants as writeback traffic — the engine's
/// admit/resize eviction order (ascending priority, earliest admission on
/// ties) applied eagerly at the moment a grant or a capacity change
/// over-subscribes the buffer, so evictions land in the phase (and on the
/// victim) the RIFF machinery would pick. Fully-evicted tensors leave the
/// live set, freeing their table slot. Evicted bytes are *outbound* DRAM
/// traffic (writebacks), which the overlap ledger never prefetch-hides.
fn shrink_to(
    live: &mut BTreeMap<&str, LiveTensor>,
    cap: u64,
    word_bytes: u64,
    phase_dram_bytes: &mut u64,
) {
    let mut resident: u64 = live.values().map(|t| t.granted).sum();
    while resident > cap {
        let (&victim, _) = live
            .iter()
            .filter(|(_, t)| t.granted > 0)
            .min_by(|a, b| a.1.priority.cmp(&b.1.priority).then(a.1.seq.cmp(&b.1.seq)))
            .expect("resident > 0 implies a granted tensor");
        let t = live.get_mut(victim).expect("victim is live");
        let take = (resident - cap).min(t.granted);
        t.granted -= take;
        if t.dirty {
            *phase_dram_bytes += take * word_bytes;
        }
        resident -= take;
        if t.granted == 0 {
            live.remove(victim);
        }
    }
}

/// Analytically scores `schedule` on `dag` under `accel` (see module docs).
/// Same objective units as [`cello_sim::evaluate::evaluate_schedule`].
pub fn surrogate_cost(dag: &TensorDag, schedule: &Schedule, accel: &CelloConfig) -> CostEstimate {
    let plan = plan_phases(dag, schedule);
    let word_bytes = accel.word_bytes as u64;
    let chord_on = schedule.options.enable_chord;
    // CHORD capacity during the current phase. Under a per-phase SRAM
    // repartition it is re-derived from each phase's split (the same value
    // the engine resizes to); the uniform split keeps it constant, so the
    // global path is untouched bit for bit.
    let mut chord_cap = if chord_on {
        chord_capacity_words(accel, schedule)
    } else {
        0
    };
    let repartition = chord_on && schedule.repartition_active();

    // Keys borrow tensor names straight out of the plan — no per-access
    // string allocation on the scoring pass.
    let mut live: BTreeMap<&str, LiveTensor> = BTreeMap::new();
    let mut seq: u64 = 0;
    let mut rf_loaded: BTreeSet<&str> = BTreeSet::new();
    let mut chord_seen: BTreeSet<&str> = BTreeSet::new();

    // Resident share of `words` at `priority` against the current live set
    // and phase capacity `cap`: capacity left after every strictly-senior
    // tensor keeps its **granted** residency (not its full footprint — a
    // senior bigger than the buffer only ever held a head prefix, and
    // counting its whole size would starve everything below it).
    let share = |live: &BTreeMap<&str, LiveTensor>,
                 cap: u64,
                 words: u64,
                 priority: RiffPriority,
                 my_seq: u64|
     -> u64 {
        let senior: u64 = live
            .values()
            .filter(|t| t.seq != my_seq)
            .filter(|t| t.priority > priority || (t.priority == priority && t.seq < my_seq))
            .map(|t| t.granted)
            .sum();
        words.min(cap.saturating_sub(senior))
    };

    let mut dram_bytes: u64 = 0;
    let mut sram_read_words: u64 = 0;
    let mut sram_write_words: u64 = 0;
    let mut tag_accesses: u64 = 0;
    let mut total_cycles: u64 = 0;
    // Transfer timing mirrors the engine through the shared ledger: the
    // surrogate classifies every DRAM charge as inbound (reads/streams,
    // prefetch-hidable) or outbound (writes/writebacks, always exposed),
    // and a depth-0 tuning replays `max(compute, mem) + noc` bit-for-bit.
    let mut ledger = OverlapLedger::new(schedule.transfer, accel);

    for phase in &plan.phases {
        let mut phase_inbound_bytes: u64 = 0;
        let mut phase_outbound_bytes: u64 = 0;
        if repartition {
            // Phase boundary: mirror the engine's CHORD resize. A shrink
            // revokes granted residency junior-first, and revoked *dirty*
            // grants persist to DRAM as the resize traffic, charged to the
            // entering phase.
            let new_cap = phase_chord_capacity_words(accel, &phase.split, &schedule.transfer);
            if new_cap < chord_cap {
                shrink_to(&mut live, new_cap, word_bytes, &mut phase_outbound_bytes);
            }
            chord_cap = new_cap;
        }
        for a in &phase.accesses {
            // Overbook spill is planned per access (see `cello_sim::phases`)
            // and charged as outbound traffic — the engine does the same
            // per-phase sum, so the two tiers agree on it exactly.
            phase_outbound_bytes += a.spill_words * word_bytes;
            let priority = RiffPriority::new(a.freq_after, a.dist_after.min(u32::MAX - 1));
            // CHORD bindings degrade to DRAM round-trips under a CHORD-less
            // preset, exactly as the explicit backend treats them.
            let binding = if a.binding == Binding::Chord && !chord_on {
                Binding::Dram
            } else {
                a.binding
            };
            match (binding, a.write) {
                (Binding::RegisterFile, false) => {
                    if a.external && rf_loaded.insert(&a.name) {
                        phase_inbound_bytes += a.words * word_bytes;
                    }
                }
                (Binding::RegisterFile, true) => {}
                (Binding::Pipeline, true) => {
                    sram_write_words += a.words;
                }
                (Binding::Pipeline, false) => {
                    // Realized edges never reach the backend; the plan only
                    // emits pipeline *writes* (partially-realized tensors
                    // bind to CHORD or DRAM instead).
                }
                (Binding::Dram, false) => {
                    phase_inbound_bytes += a.words * word_bytes;
                }
                (Binding::Dram, true) => {
                    phase_outbound_bytes += a.words * word_bytes;
                }
                (Binding::Chord, true) => {
                    // Produce: head fills its priority share, tail spills.
                    chord_seen.insert(&a.name);
                    let slot_free = live.len() < accel.riff_entries;
                    let granted = if slot_free {
                        seq += 1;
                        share(&live, chord_cap, a.words, priority, seq)
                    } else {
                        0
                    };
                    phase_outbound_bytes += (a.words - granted) * word_bytes;
                    sram_write_words += granted;
                    if slot_free {
                        live.insert(
                            a.name.as_str(),
                            LiveTensor {
                                priority,
                                seq,
                                dirty: true,
                                granted,
                            },
                        );
                        // The grant comes out of strictly-junior residency:
                        // evict it now, like the backend's RIFF admit does.
                        shrink_to(&mut live, chord_cap, word_bytes, &mut phase_outbound_bytes);
                    }
                }
                (Binding::Chord, false) => {
                    tag_accesses += 1;
                    if a.external && chord_seen.insert(&a.name) {
                        // First touch: cold stream from DRAM; cache the
                        // share that fits when there are future uses.
                        phase_inbound_bytes += a.words * word_bytes;
                        if a.freq_after > 0 && live.len() < accel.riff_entries {
                            seq += 1;
                            let granted = share(&live, chord_cap, a.words, priority, seq);
                            sram_write_words += granted;
                            live.insert(
                                a.name.as_str(),
                                LiveTensor {
                                    priority,
                                    seq,
                                    dirty: false,
                                    granted,
                                },
                            );
                            shrink_to(&mut live, chord_cap, word_bytes, &mut phase_outbound_bytes);
                        }
                    } else if let Some(t) = live.get(a.name.as_str()) {
                        // Resident head hits; the tail streams from DRAM.
                        // Residency is monotone non-increasing after
                        // admission: evicted/spilled words never re-enter
                        // without a fresh fetch, so the share is capped by
                        // what the last access still held.
                        let (t_seq, t_dirty, prev_granted) = (t.seq, t.dirty, t.granted);
                        let resident =
                            share(&live, chord_cap, a.words, priority, t_seq).min(prev_granted);
                        let miss = a.words - resident;
                        sram_read_words += resident;
                        phase_inbound_bytes += miss * word_bytes;
                        if t_dirty && prev_granted > resident {
                            // The share lost since the last access was a
                            // dirty tail with future uses: it persisted to
                            // DRAM on eviction.
                            phase_outbound_bytes += (prev_granted - resident) * word_bytes;
                        }
                        if a.freq_after == 0 {
                            live.remove(a.name.as_str()); // last use: retire, drop
                        } else {
                            let t = live.get_mut(a.name.as_str()).expect("still live");
                            t.priority = priority;
                            t.granted = resident;
                        }
                    } else {
                        // Produced while the table was full, fully evicted,
                        // or fetch-bypassed: pure DRAM streaming.
                        phase_inbound_bytes += a.words * word_bytes;
                    }
                }
            }
        }
        let compute = phase.compute_macs.div_ceil(accel.pe_count.max(1));
        let noc = cello_sim::engine::noc_cycles(phase.noc_hop_words, accel);
        let timing = ledger.phase(compute, phase_inbound_bytes, phase_outbound_bytes, noc);
        total_cycles += timing.cycles;
        dram_bytes += phase_inbound_bytes + phase_outbound_bytes;
    }

    let agg = plan.dram_agg;
    let noc_hop_bytes = plan.noc_hop_words() * word_bytes;
    let stats = AccessStats {
        sram_read_words,
        sram_write_words,
        tag_accesses,
        dram_read_bytes: dram_bytes, // split unused by the energy model
        ..Default::default()
    };
    let kind = if chord_on {
        BufferKind::Chord
    } else {
        BufferKind::Buffet
    };
    let energy_pj = offchip_energy_pj(&stats, accel.dram.energy_pj_per_byte) * agg as f64
        + onchip_energy_pj(
            &stats,
            kind,
            accel.sram_bytes,
            accel.word_bytes as f64,
            &cello_mem::model::AreaEnergyModel::default(),
        ) * agg as f64
        + noc_energy_pj(noc_hop_bytes);

    CostEstimate {
        cycles: total_cycles,
        dram_bytes: dram_bytes * agg,
        noc_hop_bytes,
        energy_pj,
    }
}

/// Spearman rank correlation between two paired samples (average ranks for
/// ties). Returns 0.0 for degenerate inputs (fewer than two points, or a
/// side with zero rank variance while the other varies. When **both**
/// sides are constant the rankings trivially agree and the result is 1.0 —
/// a workload whose every candidate costs the same is a perfectly
/// predicted one, not a model failure (the correlation gates in
/// `cello_dse --quick` / `cost_model_fit` / the proptests rely on this).
pub fn spearman(xs: &[u64], ys: &[u64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    let n = rx.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let (mut cov, mut vx, mut vy) = (0.0f64, 0.0f64, 0.0f64);
    for (a, b) in rx.iter().zip(&ry) {
        let (da, db) = (a - mean, b - mean);
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    match (vx == 0.0, vy == 0.0) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        _ => cov / (vx * vy).sqrt(),
    }
}

/// 1-based ranks with ties sharing their average rank.
fn average_ranks(values: &[u64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by_key(|&i| values[i]);
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Candidate;
    use crate::space::{SearchSpace, SpaceConfig};
    use cello_sim::evaluate::evaluate_schedule;
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn cg(iters: u32) -> TensorDag {
        build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: iters,
            a_occupancy: None,
        })
    }

    #[test]
    fn spearman_basics() {
        assert!((spearman(&[1, 2, 3, 4], &[10, 20, 30, 40]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1, 2, 3, 4], &[40, 30, 20, 10]) + 1.0).abs() < 1e-12);
        // Ties share average ranks and still correlate.
        assert!(spearman(&[1, 1, 2, 3], &[5, 5, 9, 12]) > 0.99);
        // Degenerate inputs.
        assert_eq!(spearman(&[1], &[2]), 0.0);
        assert_eq!(spearman(&[3, 3, 3], &[1, 2, 3]), 0.0);
        // Both constant: trivial agreement, not a failure.
        assert_eq!(spearman(&[3, 3, 3], &[7, 7, 7]), 1.0);
    }

    /// Objectives the surrogate shares exactly with the simulator (NoC hops
    /// come straight from the shared plan) must match bit-for-bit; DRAM may
    /// differ only through the CHORD approximation.
    #[test]
    fn surrogate_matches_sim_on_exact_objectives() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let c = Candidate::paper_heuristic();
        let s = c.build(&dag);
        let est = surrogate_cost(&dag, &s, &accel);
        let exact = evaluate_schedule(&dag, &s, &accel);
        assert_eq!(est.noc_hop_bytes, exact.noc_hop_bytes);
        // The CHORD estimate must land in the right ballpark on the paper
        // heuristic (within 2× either way — rank order is what matters).
        let ratio = est.dram_bytes as f64 / exact.dram_bytes.max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "surrogate {} vs sim {} ({ratio:.3}x)",
            est.dram_bytes,
            exact.dram_bytes
        );
    }

    /// Chord-less presets have no approximation at all: every binding is
    /// explicit, so the surrogate reproduces the simulator exactly.
    #[test]
    fn surrogate_is_exact_without_chord() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let mut c = Candidate::paper_heuristic();
        c.options = cello_core::score::binding::ScheduleOptions::best_intra();
        let s = c.build(&dag);
        let est = surrogate_cost(&dag, &s, &accel);
        let exact = evaluate_schedule(&dag, &s, &accel);
        assert_eq!(est.dram_bytes, exact.dram_bytes);
        assert_eq!(est.cycles, exact.cycles);
        assert_eq!(est.noc_hop_bytes, exact.noc_hop_bytes);
    }

    /// Rank correlation against the exact evaluator across a deterministic
    /// sample of the default CG space: the in-crate floor is deliberately
    /// above the 0.8 the proptests enforce.
    #[test]
    fn surrogate_ranks_default_cg_space() {
        let dag = cg(2);
        let accel = CelloConfig::paper();
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::default());
        let total = space.exhaustive_size();
        let stride = (total / 64).max(1);
        let (mut est_traffic, mut sim_traffic) = (Vec::new(), Vec::new());
        let mut idx = 0u64;
        while idx < total {
            let mut rem = idx;
            let picks: Vec<usize> = space
                .decisions
                .iter()
                .map(|d| {
                    let p = (rem % d.choices.len() as u64) as usize;
                    rem /= d.choices.len() as u64;
                    p
                })
                .collect();
            let s = space.assemble(&picks).build(&dag);
            est_traffic.push(surrogate_cost(&dag, &s, &accel).total_traffic_bytes());
            sim_traffic.push(evaluate_schedule(&dag, &s, &accel).total_traffic_bytes());
            idx += stride;
        }
        let rho = spearman(&est_traffic, &sim_traffic);
        assert!(rho >= 0.85, "traffic rank correlation {rho:.3} too low");
    }
}

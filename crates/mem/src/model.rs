//! CACTI-lite: analytical area and per-access energy for buffer structures.
//!
//! The paper models buffers with CACTI 7 (§VII-A2) and reports, for 4 MB
//! structures (Fig 15 and §VII-B3):
//!
//! | structure | area (mm²) | decomposition |
//! |-----------|-----------|----------------|
//! | buffet    | 6.72      | data 6.59 + 2% controller |
//! | cache     | 9.87      | data 6.59 + tag 1.85 + controller 1.43 |
//! | CHORD     | 6.74      | data 6.59 + RIFF table (~0.01× tag) + controller |
//!
//! We reproduce the same structural decomposition with constants calibrated at
//! the 4 MB point: data-array area scales linearly with capacity, per-access
//! energy scales with √capacity (bitline/wordline growth), the tag array
//! scales with line count, and CHORD's metadata is a fixed 64-entry × 512-bit
//! table regardless of data capacity (§VI-B "Hardware overhead reduction").

use serde::{Deserialize, Serialize};

/// The buffer structures Fig 15 compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferKind {
    /// Set-associative cache with per-line tags.
    Cache,
    /// Raw explicit scratchpad.
    Scratchpad,
    /// Credit-managed buffet.
    Buffet,
    /// The paper's hybrid CHORD (data array + RIFF index table).
    Chord,
}

/// Area/energy breakdown of one structure (the Fig 15 bars).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Data array contribution.
    pub data: f64,
    /// Tag array / metadata table contribution.
    pub tag: f64,
    /// Controller contribution.
    pub controller: f64,
}

impl Breakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.data + self.tag + self.controller
    }
}

/// Analytical area/energy model calibrated to the paper's 4 MB numbers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AreaEnergyModel {
    /// Data-array area of the 4 MB reference point (mm²).
    pub data_area_4mb_mm2: f64,
    /// Tag-array area of the 4 MB, 8-way, 16 B-line reference cache (mm²).
    pub tag_area_4mb_mm2: f64,
    /// Cache-controller area at the reference point (mm²).
    pub cache_ctrl_area_4mb_mm2: f64,
    /// Buffet/CHORD controller overhead as a fraction of data area (2%).
    pub explicit_ctrl_fraction: f64,
    /// RIFF-index-table area relative to the reference tag array (0.01×).
    pub riff_table_tag_fraction: f64,
    /// Data-array energy per access at the 4 MB point (pJ; one 16 B line).
    pub data_energy_4mb_pj: f64,
    /// Tag energy per access at the 4 MB point (pJ; "comparable to data").
    pub tag_energy_4mb_pj: f64,
}

impl Default for AreaEnergyModel {
    fn default() -> Self {
        Self {
            data_area_4mb_mm2: 6.59,
            tag_area_4mb_mm2: 1.85,
            cache_ctrl_area_4mb_mm2: 1.43,
            explicit_ctrl_fraction: 0.02,
            riff_table_tag_fraction: 0.01,
            data_energy_4mb_pj: 60.0,
            tag_energy_4mb_pj: 50.0,
        }
    }
}

const REF_BYTES: f64 = (4u64 << 20) as f64;

impl AreaEnergyModel {
    fn cap_scale(bytes: u64) -> f64 {
        bytes as f64 / REF_BYTES
    }

    fn energy_scale(bytes: u64) -> f64 {
        Self::cap_scale(bytes).sqrt()
    }

    /// Area breakdown (mm²) for a structure of `bytes` capacity.
    pub fn area_breakdown(&self, kind: BufferKind, bytes: u64) -> Breakdown {
        let s = Self::cap_scale(bytes);
        let data = self.data_area_4mb_mm2 * s;
        match kind {
            BufferKind::Cache => Breakdown {
                data,
                tag: self.tag_area_4mb_mm2 * s,
                controller: self.cache_ctrl_area_4mb_mm2 * s,
            },
            BufferKind::Scratchpad => Breakdown {
                data,
                tag: 0.0,
                controller: 0.0,
            },
            BufferKind::Buffet => Breakdown {
                data,
                tag: 0.0,
                controller: data * self.explicit_ctrl_fraction,
            },
            BufferKind::Chord => Breakdown {
                data,
                // The RIFF table is a fixed 64 x 512 b structure: it does NOT
                // scale with data capacity (one entry per tensor, not per line).
                tag: self.tag_area_4mb_mm2 * self.riff_table_tag_fraction,
                controller: data * self.explicit_ctrl_fraction,
            },
        }
    }

    /// Total area in mm².
    pub fn area_mm2(&self, kind: BufferKind, bytes: u64) -> f64 {
        self.area_breakdown(kind, bytes).total()
    }

    /// Per-access energy breakdown (pJ) for one line-granular access.
    pub fn energy_breakdown(&self, kind: BufferKind, bytes: u64) -> Breakdown {
        let s = Self::energy_scale(bytes);
        let data = self.data_energy_4mb_pj * s;
        match kind {
            BufferKind::Cache => Breakdown {
                data,
                tag: self.tag_energy_4mb_pj * s,
                controller: 0.0,
            },
            BufferKind::Scratchpad => Breakdown {
                data,
                tag: 0.0,
                controller: 0.0,
            },
            BufferKind::Buffet => Breakdown {
                data,
                tag: 0.0,
                controller: data * self.explicit_ctrl_fraction,
            },
            BufferKind::Chord => Breakdown {
                data,
                // One 512-bit RIFF entry read: fixed small cost, amortized
                // further because hits don't update metadata (§VI-B).
                tag: self.tag_energy_4mb_pj * self.riff_table_tag_fraction,
                controller: data * self.explicit_ctrl_fraction,
            },
        }
    }

    /// Total per-access energy in pJ.
    pub fn energy_per_access_pj(&self, kind: BufferKind, bytes: u64) -> f64 {
        self.energy_breakdown(kind, bytes).total()
    }

    /// CHORD metadata bits: 64 entries × 512 bits (Table V) — exposed so tests
    /// can confirm the "one entry per tensor" claim.
    pub fn chord_metadata_bits(&self) -> u64 {
        64 * 512
    }

    /// Reference cache tag bits at 4 MB / 16 B lines / 8-way with 48-bit
    /// addresses (for the "~100× smaller than cache metadata" claim, §VI-B).
    pub fn cache_tag_bits_4mb(&self) -> u64 {
        let lines = (4u64 << 20) / 16;
        let sets: u64 = lines / 8;
        let tag_bits = 48 - (sets.trailing_zeros() as u64) - 4; // addr - index - offset
        lines * (tag_bits + 2) // +valid +dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: AreaEnergyModel = AreaEnergyModel {
        data_area_4mb_mm2: 6.59,
        tag_area_4mb_mm2: 1.85,
        cache_ctrl_area_4mb_mm2: 1.43,
        explicit_ctrl_fraction: 0.02,
        riff_table_tag_fraction: 0.01,
        data_energy_4mb_pj: 60.0,
        tag_energy_4mb_pj: 50.0,
    };

    const FOUR_MB: u64 = 4 << 20;

    #[test]
    fn buffet_area_matches_paper() {
        // 6.72 mm² = 6.59 × 1.02
        assert!((M.area_mm2(BufferKind::Buffet, FOUR_MB) - 6.72).abs() < 0.01);
    }

    #[test]
    fn cache_area_matches_paper() {
        // 9.87 mm² = 6.59 + 1.85 + 1.43
        assert!((M.area_mm2(BufferKind::Cache, FOUR_MB) - 9.87).abs() < 0.01);
    }

    #[test]
    fn chord_area_matches_paper() {
        // 6.74 mm² ≈ 6.59 + 0.0185 + 0.132
        assert!((M.area_mm2(BufferKind::Chord, FOUR_MB) - 6.74).abs() < 0.01);
    }

    #[test]
    fn tag_overhead_is_about_a_third_of_cache() {
        // §VI-B: "cache controller and tag bits … almost a third of the cache area".
        let b = M.area_breakdown(BufferKind::Cache, FOUR_MB);
        let overhead = (b.tag + b.controller) / b.total();
        assert!(overhead > 0.30 && overhead < 0.37, "{overhead}");
    }

    #[test]
    fn chord_metadata_much_smaller_than_tags() {
        // "RIFF-index table requires 0.01x area compared to tag area in cache".
        let chord = M.area_breakdown(BufferKind::Chord, FOUR_MB).tag;
        let cache = M.area_breakdown(BufferKind::Cache, FOUR_MB).tag;
        assert!((chord / cache - 0.01).abs() < 1e-9);
        // Bit-level sanity: 32 Kib of RIFF entries vs ~7.9 Mib of tags.
        assert_eq!(M.chord_metadata_bits(), 32_768);
        assert!(M.cache_tag_bits_4mb() > 100 * M.chord_metadata_bits() / 2);
    }

    #[test]
    fn cache_energy_roughly_double_explicit() {
        // Fig 15b: tag energy comparable to data energy makes cache ≈ 2×.
        let cache = M.energy_per_access_pj(BufferKind::Cache, FOUR_MB);
        let buffet = M.energy_per_access_pj(BufferKind::Buffet, FOUR_MB);
        let chord = M.energy_per_access_pj(BufferKind::Chord, FOUR_MB);
        assert!(cache / buffet > 1.6, "{}", cache / buffet);
        assert!(cache / chord > 1.6);
        assert!((chord - buffet).abs() / buffet < 0.02, "chord ≈ buffet");
    }

    #[test]
    fn area_scales_linearly_energy_sublinearly() {
        let a1 = M.area_mm2(BufferKind::Scratchpad, 1 << 20);
        let a16 = M.area_mm2(BufferKind::Scratchpad, 16 << 20);
        assert!((a16 / a1 - 16.0).abs() < 1e-9);
        let e1 = M.energy_per_access_pj(BufferKind::Scratchpad, 1 << 20);
        let e16 = M.energy_per_access_pj(BufferKind::Scratchpad, 16 << 20);
        assert!((e16 / e1 - 4.0).abs() < 1e-9); // sqrt(16)
    }

    #[test]
    fn chord_tag_area_does_not_scale_with_capacity() {
        let t1 = M.area_breakdown(BufferKind::Chord, 1 << 20).tag;
        let t16 = M.area_breakdown(BufferKind::Chord, 16 << 20).tag;
        assert_eq!(t1, t16);
    }

    #[test]
    fn default_model_matches_calibration() {
        let d = AreaEnergyModel::default();
        assert!((d.area_mm2(BufferKind::Cache, FOUR_MB) - 9.87).abs() < 0.01);
    }
}

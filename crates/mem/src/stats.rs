//! Shared access counters.
//!
//! Every buffer mechanism and the simulation engine report into the same
//! [`AccessStats`] so configurations are comparable: DRAM traffic drives the
//! performance model (memory-bound phases) and the off-chip energy figure
//! (Fig 14); SRAM/tag access counts drive the on-chip energy comparison
//! (Fig 15b).

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Byte- and access-level counters accumulated during a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Words read from on-chip SRAM data arrays.
    pub sram_read_words: u64,
    /// Words written to on-chip SRAM data arrays.
    pub sram_write_words: u64,
    /// Tag-array (or metadata-table) lookups performed.
    pub tag_accesses: u64,
    /// Buffer hits (operand-level or line-level depending on mechanism).
    pub hits: u64,
    /// Buffer misses.
    pub misses: u64,
    /// Dirty evictions (writebacks) performed by the buffer.
    pub writebacks: u64,
}

impl AccessStats {
    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Hit rate over hits+misses (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise difference against an `earlier` snapshot of the same
    /// monotone counters — the per-phase delta the engine attributes to one
    /// phase. Saturating so a mismatched pair yields zeros, not a panic.
    pub fn delta_since(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            dram_read_bytes: self.dram_read_bytes.saturating_sub(earlier.dram_read_bytes),
            dram_write_bytes: self
                .dram_write_bytes
                .saturating_sub(earlier.dram_write_bytes),
            sram_read_words: self.sram_read_words.saturating_sub(earlier.sram_read_words),
            sram_write_words: self
                .sram_write_words
                .saturating_sub(earlier.sram_write_words),
            tag_accesses: self.tag_accesses.saturating_sub(earlier.tag_accesses),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
        }
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: Self) {
        self.dram_read_bytes += rhs.dram_read_bytes;
        self.dram_write_bytes += rhs.dram_write_bytes;
        self.sram_read_words += rhs.sram_read_words;
        self.sram_write_words += rhs.sram_write_words;
        self.tag_accesses += rhs.tag_accesses;
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.writebacks += rhs.writebacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_bytes_sums_directions() {
        let s = AccessStats {
            dram_read_bytes: 100,
            dram_write_bytes: 50,
            ..Default::default()
        };
        assert_eq!(s.dram_bytes(), 150);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(AccessStats::default().hit_rate(), 0.0);
        let s = AccessStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = AccessStats {
            hits: 1,
            dram_read_bytes: 16,
            ..Default::default()
        };
        a += AccessStats {
            hits: 2,
            misses: 5,
            dram_write_bytes: 32,
            ..Default::default()
        };
        assert_eq!(a.hits, 3);
        assert_eq!(a.misses, 5);
        assert_eq!(a.dram_bytes(), 48);
    }

    #[test]
    fn delta_since_inverts_add_assign() {
        let earlier = AccessStats {
            hits: 2,
            misses: 1,
            dram_read_bytes: 64,
            tag_accesses: 8,
            ..Default::default()
        };
        let mut later = earlier;
        let phase = AccessStats {
            hits: 5,
            writebacks: 2,
            dram_write_bytes: 128,
            sram_read_words: 7,
            ..Default::default()
        };
        later += phase;
        assert_eq!(later.delta_since(&earlier), phase);
        // Mismatched order saturates to zero instead of underflowing.
        assert_eq!(earlier.delta_since(&later), AccessStats::default());
    }
}

//! Buffet: explicit-decoupled data orchestration (Pellauer et al., ASPLOS'19).
//!
//! The Table III / Fig 15 comparison point between scratchpads and CHORD.
//! A buffet is a circular FIFO with credit-based synchronization: a *filler*
//! pushes data while credits remain, a *consumer* reads by offset from the
//! head and *shrinks* the window to retire data. It removes the
//! synchronization burden of raw scratchpads (2% controller overhead, paper
//! §VII-B3) but placement is still fully explicit — it cannot arbitrate
//! between multiple delayed tensors the way RIFF does.

use crate::stats::AccessStats;
use serde::{Deserialize, Serialize};

/// Errors raised by buffet operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuffetError {
    /// Fill attempted with no credits (buffer full).
    NoCredit,
    /// Read offset beyond the currently filled window.
    ReadBeyondFill,
    /// Shrink larger than the filled window.
    ShrinkBeyondFill,
}

/// A credit-managed circular buffer of words.
#[derive(Clone, Debug)]
pub struct Buffet {
    capacity_words: u64,
    head: u64,
    filled: u64,
    stats: AccessStats,
}

impl Buffet {
    /// New buffet with all credits available.
    pub fn new(capacity_words: u64) -> Self {
        Self {
            capacity_words,
            head: 0,
            filled: 0,
            stats: AccessStats::default(),
        }
    }

    /// Remaining fill credits (free words).
    pub fn credits(&self) -> u64 {
        self.capacity_words - self.filled
    }

    /// Words currently buffered.
    pub fn occupancy(&self) -> u64 {
        self.filled
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Fills `words` (producer side). Fails when credits are exhausted — the
    /// filler is expected to block, which the simulator models as a stall.
    pub fn fill(&mut self, words: u64) -> Result<(), BuffetError> {
        if words > self.credits() {
            return Err(BuffetError::NoCredit);
        }
        self.filled += words;
        self.stats.sram_write_words += words;
        Ok(())
    }

    /// Reads `words` starting `offset` words from the head (consumer side).
    /// Buffets allow random access *within* the filled window.
    pub fn read(&mut self, offset: u64, words: u64) -> Result<(), BuffetError> {
        if offset + words > self.filled {
            return Err(BuffetError::ReadBeyondFill);
        }
        self.stats.sram_read_words += words;
        self.stats.hits += words;
        Ok(())
    }

    /// Retires `words` from the head, returning credits to the filler.
    pub fn shrink(&mut self, words: u64) -> Result<(), BuffetError> {
        if words > self.filled {
            return Err(BuffetError::ShrinkBeyondFill);
        }
        self.head = self.head.wrapping_add(words);
        self.filled -= words;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_read_shrink_cycle() {
        let mut b = Buffet::new(100);
        b.fill(60).unwrap();
        assert_eq!(b.credits(), 40);
        b.read(0, 60).unwrap();
        b.shrink(60).unwrap();
        assert_eq!(b.credits(), 100);
        assert_eq!(b.stats().sram_read_words, 60);
        assert_eq!(b.stats().sram_write_words, 60);
    }

    #[test]
    fn fill_blocks_without_credit() {
        let mut b = Buffet::new(10);
        b.fill(10).unwrap();
        assert_eq!(b.fill(1), Err(BuffetError::NoCredit));
    }

    #[test]
    fn read_bounded_by_fill() {
        let mut b = Buffet::new(10);
        b.fill(5).unwrap();
        assert_eq!(b.read(3, 3), Err(BuffetError::ReadBeyondFill));
        b.read(4, 1).unwrap();
    }

    #[test]
    fn shrink_bounded_by_fill() {
        let mut b = Buffet::new(10);
        b.fill(5).unwrap();
        assert_eq!(b.shrink(6), Err(BuffetError::ShrinkBeyondFill));
        b.shrink(5).unwrap();
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn credits_pipeline_producer_consumer() {
        // Classic double-buffer pattern: fill tile, read, shrink, repeat.
        let mut b = Buffet::new(4);
        for _ in 0..16 {
            b.fill(2).unwrap();
            b.read(0, 2).unwrap();
            b.shrink(2).unwrap();
        }
        assert_eq!(b.stats().sram_read_words, 32);
        assert_eq!(b.credits(), 4);
    }
}

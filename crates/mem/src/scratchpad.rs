//! Fully explicit scratchpad.
//!
//! The classic DNN-accelerator buffer (Table III row 2): every word's residency
//! is decided by the programmer/compiler ahead of time. Allocation is
//! all-or-nothing — there is no hardware fallback, which is precisely why the
//! buffer-allocation search for DAG-level reuse explodes to ~10^80 choices
//! (§VI-B): the scheduler must *statically* partition the capacity among every
//! live tensor slice. This module provides the mechanism; the search-cost
//! accounting lives in `cello-core::search_space`.

use crate::stats::AccessStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors explicit allocation can raise.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScratchpadError {
    /// Not enough free words for the requested allocation.
    OutOfCapacity {
        /// Words requested.
        requested: u64,
        /// Words available.
        free: u64,
    },
    /// Allocation name already in use.
    DuplicateName(String),
    /// Unknown allocation.
    UnknownAllocation(String),
}

/// A named region resident in the scratchpad.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Offset in words from the scratchpad base.
    pub offset: u64,
    /// Length in words.
    pub words: u64,
}

/// Explicitly managed on-chip buffer, word-granular.
#[derive(Clone, Debug)]
pub struct Scratchpad {
    capacity_words: u64,
    used_words: u64,
    regions: BTreeMap<String, Region>,
    next_offset: u64,
    stats: AccessStats,
}

impl Scratchpad {
    /// New scratchpad with `capacity_words` capacity.
    pub fn new(capacity_words: u64) -> Self {
        Self {
            capacity_words,
            used_words: 0,
            regions: BTreeMap::new(),
            next_offset: 0,
            stats: AccessStats::default(),
        }
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_words
    }

    /// Words currently allocated.
    pub fn used_words(&self) -> u64 {
        self.used_words
    }

    /// Free words.
    pub fn free_words(&self) -> u64 {
        self.capacity_words - self.used_words
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Allocates a named region; fails (no fallback!) if it does not fit.
    pub fn alloc(&mut self, name: &str, words: u64) -> Result<Region, ScratchpadError> {
        if self.regions.contains_key(name) {
            return Err(ScratchpadError::DuplicateName(name.to_string()));
        }
        if words > self.free_words() {
            return Err(ScratchpadError::OutOfCapacity {
                requested: words,
                free: self.free_words(),
            });
        }
        let region = Region {
            offset: self.next_offset,
            words,
        };
        self.next_offset += words;
        self.used_words += words;
        self.regions.insert(name.to_string(), region.clone());
        Ok(region)
    }

    /// Frees a named region.
    pub fn free(&mut self, name: &str) -> Result<(), ScratchpadError> {
        match self.regions.remove(name) {
            Some(r) => {
                self.used_words -= r.words;
                // Simple compaction model: explicit managers re-lay-out offline.
                if self.regions.is_empty() {
                    self.next_offset = 0;
                }
                Ok(())
            }
            None => Err(ScratchpadError::UnknownAllocation(name.to_string())),
        }
    }

    /// Region lookup.
    pub fn region(&self, name: &str) -> Option<&Region> {
        self.regions.get(name)
    }

    /// Charges `words` SRAM reads against a region (must exist).
    pub fn read(&mut self, name: &str, words: u64) -> Result<(), ScratchpadError> {
        if !self.regions.contains_key(name) {
            return Err(ScratchpadError::UnknownAllocation(name.to_string()));
        }
        self.stats.sram_read_words += words;
        self.stats.hits += words; // explicit => always a hit once allocated
        Ok(())
    }

    /// Charges `words` SRAM writes against a region (must exist).
    pub fn write(&mut self, name: &str, words: u64) -> Result<(), ScratchpadError> {
        if !self.regions.contains_key(name) {
            return Err(ScratchpadError::UnknownAllocation(name.to_string()));
        }
        self.stats.sram_write_words += words;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free() {
        let mut sp = Scratchpad::new(100);
        let r = sp.alloc("P", 60).unwrap();
        assert_eq!(r.offset, 0);
        assert_eq!(sp.free_words(), 40);
        sp.free("P").unwrap();
        assert_eq!(sp.free_words(), 100);
    }

    #[test]
    fn over_allocation_fails_hard() {
        let mut sp = Scratchpad::new(100);
        sp.alloc("P", 60).unwrap();
        let err = sp.alloc("R", 50).unwrap_err();
        assert_eq!(
            err,
            ScratchpadError::OutOfCapacity {
                requested: 50,
                free: 40
            }
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut sp = Scratchpad::new(100);
        sp.alloc("P", 10).unwrap();
        assert!(matches!(
            sp.alloc("P", 10),
            Err(ScratchpadError::DuplicateName(_))
        ));
    }

    #[test]
    fn read_write_charge_stats() {
        let mut sp = Scratchpad::new(100);
        sp.alloc("P", 50).unwrap();
        sp.read("P", 20).unwrap();
        sp.write("P", 30).unwrap();
        assert_eq!(sp.stats().sram_read_words, 20);
        assert_eq!(sp.stats().sram_write_words, 30);
        assert!(matches!(
            sp.read("X", 1),
            Err(ScratchpadError::UnknownAllocation(_))
        ));
    }

    #[test]
    fn offsets_advance() {
        let mut sp = Scratchpad::new(100);
        sp.alloc("A", 30).unwrap();
        let b = sp.alloc("B", 30).unwrap();
        assert_eq!(b.offset, 30);
    }
}

//! DRAM interface model: bandwidth for timing, picojoules for energy.
//!
//! Table V evaluates two memory bandwidths (250 GB/s and 1 TB/s) at a 1 GHz
//! core clock. Off-chip energy (Fig 14) is charged per byte moved; the default
//! constant corresponds to ~3.9 pJ/bit HBM-class signaling — only *relative*
//! energy appears in the paper, so the constant cancels in every reported
//! ratio.

use serde::{Deserialize, Serialize};

/// Off-chip memory model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Access energy in picojoules per byte.
    pub energy_pj_per_byte: f64,
}

impl DramModel {
    /// Paper configuration: 1 TB/s.
    pub fn one_tb_per_sec() -> Self {
        Self {
            bandwidth_bytes_per_sec: 1.0e12,
            energy_pj_per_byte: 31.2,
        }
    }

    /// Paper configuration: 250 GB/s.
    pub fn gb250_per_sec() -> Self {
        Self {
            bandwidth_bytes_per_sec: 250.0e9,
            energy_pj_per_byte: 31.2,
        }
    }

    /// Time (seconds) to transfer `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// Cycles at `freq_hz` to transfer `bytes` (rounded up).
    pub fn transfer_cycles(&self, bytes: u64, freq_hz: f64) -> u64 {
        (self.transfer_time(bytes) * freq_hz).ceil() as u64
    }

    /// Energy (picojoules) to transfer `bytes`.
    pub fn transfer_energy_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_pj_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_at_1tbs() {
        let d = DramModel::one_tb_per_sec();
        assert!((d.transfer_time(1_000_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_round_up() {
        let d = DramModel::one_tb_per_sec();
        // 1 byte at 1 GHz over 1 TB/s = 0.001 cycles -> rounds to 1.
        assert_eq!(d.transfer_cycles(1, 1.0e9), 1);
        // 4096 bytes = 4.096 ns = 4.096 cycles -> 5.
        assert_eq!(d.transfer_cycles(4096, 1.0e9), 5);
    }

    #[test]
    fn bandwidth_ratio_is_four() {
        let fast = DramModel::one_tb_per_sec();
        let slow = DramModel::gb250_per_sec();
        let ratio = fast.bandwidth_bytes_per_sec / slow.bandwidth_bytes_per_sec;
        assert!((ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn energy_linear_in_bytes() {
        let d = DramModel::one_tb_per_sec();
        assert!((d.transfer_energy_pj(100) - 3120.0).abs() < 1e-9);
    }
}

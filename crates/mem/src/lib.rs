//! # cello-mem — memory-hierarchy substrate
//!
//! The CELLO evaluation compares schedule/buffer *combinations* (Table IV):
//! explicit scratchpads, implicitly-managed LRU/BRRIP caches, buffets, and the
//! paper's hybrid CHORD. This crate provides every buffer mechanism *except*
//! CHORD (which is the contribution and lives in `cello-core`):
//!
//! - [`stats`]: shared access counters (DRAM bytes, SRAM accesses, hits…);
//! - [`dram`]: bandwidth + energy model of the off-chip interface;
//! - [`cache`]: trace-driven set-associative cache with pluggable replacement —
//!   [`cache::LruPolicy`] and [`cache::BrripPolicy`] (Jaleel et al.'s RRIP),
//!   the `Flex+LRU` / `Flex+BRRIP` baselines;
//! - [`scratchpad`]: fully explicit, programmer-allocated SRAM (the
//!   scratchpad whose allocation-search cost §VI-B quantifies);
//! - [`buffet`]: credit-based explicit-decoupled buffer idiom (Pellauer et
//!   al.), the Table III/Fig 15 comparison point;
//! - [`pipeline`]: the explicit pipeline buffer that stages producer/consumer
//!   tiles, with *hold slots* for delayed-hold dependencies (Fig 6);
//! - [`model`]: CACTI-lite area & per-access energy, calibrated to the
//!   paper's published 4 MB figures (Fig 15).

pub mod buffet;
pub mod cache;
pub mod dram;
pub mod model;
pub mod pipeline;
pub mod scratchpad;
pub mod stats;

pub use cache::{BrripPolicy, CacheConfig, LruPolicy, SetAssocCache, SrripPolicy};
pub use dram::DramModel;
pub use model::{AreaEnergyModel, BufferKind};
pub use stats::AccessStats;

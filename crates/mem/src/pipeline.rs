//! Explicit pipeline buffer with hold slots.
//!
//! CELLO's hierarchy (Fig 4) stages pipelined producer→consumer tiles in a
//! small explicit buffer: the producer writes a tile, the consumer reads it,
//! and the slot is recycled (Fig 3a). For *delayed-hold* dependencies the tile
//! is **held** — kept resident past its immediate consumer until the delayed
//! downstream consumer arrives (Fig 6: `Tile HELD`); the extra occupancy is
//! the price of serving ResNet-style skip connections without DRAM round
//! trips.

use crate::stats::AccessStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Errors the pipeline buffer can raise.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineError {
    /// Tile larger than remaining capacity (stall in hardware).
    Full {
        /// Words requested.
        requested: u64,
        /// Words free.
        free: u64,
    },
    /// Tile id not resident.
    UnknownTile(u64),
}

/// State of one resident tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TileState {
    /// Waiting for its immediate pipelined consumer.
    Staged,
    /// Held for a delayed-hold consumer (Fig 6).
    Held,
}

/// Double-buffer-style explicit pipeline stage with hold support.
#[derive(Clone, Debug)]
pub struct PipelineBuffer {
    capacity_words: u64,
    used_words: u64,
    tiles: BTreeMap<u64, (u64, TileState)>,
    next_id: u64,
    peak_words: u64,
    stats: AccessStats,
}

impl PipelineBuffer {
    /// New pipeline buffer.
    pub fn new(capacity_words: u64) -> Self {
        Self {
            capacity_words,
            used_words: 0,
            tiles: BTreeMap::new(),
            next_id: 0,
            peak_words: 0,
            stats: AccessStats::default(),
        }
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_words
    }

    /// Current occupancy.
    pub fn used_words(&self) -> u64 {
        self.used_words
    }

    /// Highest occupancy observed — the delayed-hold footprint the scheduler
    /// must budget for ("requires slightly more occupancy", §V-A).
    pub fn peak_words(&self) -> u64 {
        self.peak_words
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Producer stages a tile; returns its id.
    pub fn stage(&mut self, words: u64) -> Result<u64, PipelineError> {
        let free = self.capacity_words - self.used_words;
        if words > free {
            return Err(PipelineError::Full {
                requested: words,
                free,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used_words += words;
        self.peak_words = self.peak_words.max(self.used_words);
        self.tiles.insert(id, (words, TileState::Staged));
        self.stats.sram_write_words += words;
        Ok(id)
    }

    /// Immediate consumer reads the tile; by default the slot is recycled.
    /// With `hold = true` the tile transitions to [`TileState::Held`] instead.
    pub fn consume(&mut self, id: u64, hold: bool) -> Result<(), PipelineError> {
        let (words, _) = *self.tiles.get(&id).ok_or(PipelineError::UnknownTile(id))?;
        self.stats.sram_read_words += words;
        self.stats.hits += words;
        if hold {
            self.tiles.insert(id, (words, TileState::Held));
        } else {
            self.tiles.remove(&id);
            self.used_words -= words;
        }
        Ok(())
    }

    /// Delayed consumer reads a held tile and releases it.
    pub fn consume_held(&mut self, id: u64) -> Result<(), PipelineError> {
        match self.tiles.get(&id) {
            Some(&(words, TileState::Held)) => {
                self.stats.sram_read_words += words;
                self.stats.hits += words;
                self.tiles.remove(&id);
                self.used_words -= words;
                Ok(())
            }
            Some(_) => Err(PipelineError::UnknownTile(id)),
            None => Err(PipelineError::UnknownTile(id)),
        }
    }

    /// State of a tile.
    pub fn tile_state(&self, id: u64) -> Option<TileState> {
        self.tiles.get(&id).map(|&(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_consume_recycles_space() {
        let mut pb = PipelineBuffer::new(100);
        let t = pb.stage(40).unwrap();
        assert_eq!(pb.used_words(), 40);
        pb.consume(t, false).unwrap();
        assert_eq!(pb.used_words(), 0);
        assert_eq!(pb.stats().sram_read_words, 40);
    }

    #[test]
    fn hold_keeps_occupancy() {
        // Fig 6: tile held across two intermediate ops, then released.
        let mut pb = PipelineBuffer::new(100);
        let held = pb.stage(30).unwrap();
        pb.consume(held, true).unwrap();
        assert_eq!(pb.tile_state(held), Some(TileState::Held));
        assert_eq!(pb.used_words(), 30);
        // Intermediate pipelined tiles come and go around the held one.
        for _ in 0..3 {
            let t = pb.stage(40).unwrap();
            pb.consume(t, false).unwrap();
        }
        assert_eq!(pb.peak_words(), 70);
        pb.consume_held(held).unwrap();
        assert_eq!(pb.used_words(), 0);
    }

    #[test]
    fn stall_when_full() {
        let mut pb = PipelineBuffer::new(50);
        pb.stage(30).unwrap();
        let err = pb.stage(30).unwrap_err();
        assert_eq!(
            err,
            PipelineError::Full {
                requested: 30,
                free: 20
            }
        );
    }

    #[test]
    fn consume_unknown_tile_errors() {
        let mut pb = PipelineBuffer::new(10);
        assert_eq!(pb.consume(7, false), Err(PipelineError::UnknownTile(7)));
        assert_eq!(pb.consume_held(7), Err(PipelineError::UnknownTile(7)));
    }

    #[test]
    fn consume_held_requires_held_state() {
        let mut pb = PipelineBuffer::new(10);
        let t = pb.stage(5).unwrap();
        // Staged (not held) tiles cannot be consumed via the held path.
        assert!(pb.consume_held(t).is_err());
    }

    #[test]
    fn hold_occupancy_tracks_reuse_distance() {
        // "The number of tiles held depends on the reuse distance of the
        // downstream dependency" — hold 3 tiles before releasing any.
        let mut pb = PipelineBuffer::new(100);
        let ids: Vec<u64> = (0..3).map(|_| pb.stage(10).unwrap()).collect();
        for &id in &ids {
            pb.consume(id, true).unwrap();
        }
        assert_eq!(pb.used_words(), 30);
        for &id in &ids {
            pb.consume_held(id).unwrap();
        }
        assert_eq!(pb.used_words(), 0);
        assert_eq!(pb.peak_words(), 30);
    }
}

//! Trace-driven set-associative cache with pluggable replacement.
//!
//! The `Flex+LRU` and `Flex+BRRIP` baselines of Table IV route *all* accelerator
//! traffic through an implicitly-managed cache (4 MB, 16 B lines, 8-way in
//! Table V). The paper's critique — "myopic view of lines which misses the
//! tensor-level reuse opportunities" (§VI-B, Fig 11) — is reproduced by these
//! policies operating at line granularity:
//!
//! - [`LruPolicy`]: least-recently-used; thrashes on tensor-sized scans;
//! - [`BrripPolicy`]: Bimodal RRIP (Jaleel et al., ISCA'10): 2-bit re-reference
//!   prediction values, distant insertion with occasional long insertion,
//!   which resists scans but still keeps stale line mixtures (Fig 11 step 2).

use crate::stats::AccessStats;
use serde::{Deserialize, Serialize};

/// Geometry of a set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (Table V: 16 B).
    pub line_bytes: u64,
    /// Ways per set (Table V: 8).
    pub associativity: usize,
}

impl CacheConfig {
    /// The paper's Table V cache: 4 MB, 16 B lines, 8-way.
    pub fn paper_4mb() -> Self {
        Self {
            capacity_bytes: 4 << 20,
            line_bytes: 16,
            associativity: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        let lines = self.capacity_bytes / self.line_bytes;
        let sets = lines as usize / self.associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line present.
    Hit,
    /// Line absent; `dirty_eviction` reports whether a writeback occurred.
    Miss {
        /// True when the victim line was dirty and was written back to DRAM.
        dirty_eviction: bool,
    },
}

/// Replacement policy plug-in: informed of hits and fills, chooses victims.
pub trait ReplacementPolicy {
    /// Creates state for `sets × ways`.
    fn new(sets: usize, ways: usize) -> Self
    where
        Self: Sized;
    /// Called when `way` in `set` hits.
    fn on_hit(&mut self, set: usize, way: usize);
    /// Called when a line is installed into `way` of `set`.
    fn on_fill(&mut self, set: usize, way: usize);
    /// Chooses a victim way in `set` (all ways valid).
    fn victim(&mut self, set: usize) -> usize;
    /// Human-readable policy name (Table IV rows).
    fn name(&self) -> &'static str;
}

/// Least-recently-used replacement.
#[derive(Clone, Debug)]
pub struct LruPolicy {
    stamp: u64,
    last_use: Vec<u64>,
    ways: usize,
}

impl ReplacementPolicy for LruPolicy {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            stamp: 0,
            last_use: vec![0; sets * ways],
            ways,
        }
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        self.last_use[set * self.ways + way] = self.stamp;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        self.last_use[set * self.ways + way] = self.stamp;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.last_use[base + w])
            .expect("associativity > 0")
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

/// Bimodal RRIP: 2-bit RRPV, hit-promotion to 0, insertion at RRPV_max with
/// probability 31/32 and RRPV_max−1 otherwise (deterministic LFSR stream so
/// simulations are reproducible).
#[derive(Clone, Debug)]
pub struct BrripPolicy {
    rrpv: Vec<u8>,
    ways: usize,
    lfsr: u32,
}

impl BrripPolicy {
    const RRPV_MAX: u8 = 3;
    /// 1-in-32 long-insertions (the "bimodal throttle").
    const BIMODAL_PERIOD: u32 = 32;

    fn next_rand(&mut self) -> u32 {
        // 32-bit xorshift: deterministic, cheap, good enough for a throttle.
        self.lfsr ^= self.lfsr << 13;
        self.lfsr ^= self.lfsr >> 17;
        self.lfsr ^= self.lfsr << 5;
        self.lfsr
    }
}

impl ReplacementPolicy for BrripPolicy {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: vec![Self::RRPV_MAX; sets * ways],
            ways,
            lfsr: 0x2A2A_2A2A,
        }
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        let long = self.next_rand().is_multiple_of(Self::BIMODAL_PERIOD);
        self.rrpv[set * self.ways + way] = if long {
            Self::RRPV_MAX - 1
        } else {
            Self::RRPV_MAX
        };
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..self.ways {
                if self.rrpv[base + w] == Self::RRPV_MAX {
                    return w;
                }
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "BRRIP"
    }
}

/// Static RRIP (SRRIP-HP): like BRRIP but every insertion uses the "long"
/// re-reference prediction (`RRPV_max − 1`). Scan-resistant but quicker to
/// cache new data than BRRIP; provided as an extra comparison point for the
/// replacement-policy study.
#[derive(Clone, Debug)]
pub struct SrripPolicy {
    rrpv: Vec<u8>,
    ways: usize,
}

impl SrripPolicy {
    const RRPV_MAX: u8 = 3;
}

impl ReplacementPolicy for SrripPolicy {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: vec![Self::RRPV_MAX; sets * ways],
            ways,
        }
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = Self::RRPV_MAX - 1;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            for w in 0..self.ways {
                if self.rrpv[base + w] == Self::RRPV_MAX {
                    return w;
                }
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "SRRIP"
    }
}

/// A set-associative cache over 64-bit byte addresses.
pub struct SetAssocCache<P: ReplacementPolicy> {
    config: CacheConfig,
    tags: Vec<Option<u64>>,
    dirty: Vec<bool>,
    policy: P,
    sets: usize,
    stats: AccessStats,
}

impl<P: ReplacementPolicy> SetAssocCache<P> {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.associativity;
        Self {
            config,
            tags: vec![None; sets * ways],
            dirty: vec![false; sets * ways],
            policy: P::new(sets, ways),
            sets,
            stats: AccessStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        ((line as usize) & (self.sets - 1), line)
    }

    /// One byte-address access. Charges a tag lookup, a data-array access, and
    /// on a miss a full line of DRAM read (plus a line writeback when a dirty
    /// victim is evicted).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.config.associativity;
        let base = set * ways;
        self.stats.tag_accesses += 1;
        if is_write {
            self.stats.sram_write_words += 1;
        } else {
            self.stats.sram_read_words += 1;
        }

        for w in 0..ways {
            if self.tags[base + w] == Some(tag) {
                self.policy.on_hit(set, w);
                self.dirty[base + w] |= is_write;
                self.stats.hits += 1;
                return AccessOutcome::Hit;
            }
        }

        // Miss: fill (allocate-on-write too).
        self.stats.misses += 1;
        self.stats.dram_read_bytes += self.config.line_bytes;
        let way = if let Some(w) = (0..ways).find(|&w| self.tags[base + w].is_none()) {
            w
        } else {
            self.policy.victim(set)
        };
        let dirty_eviction = self.tags[base + way].is_some() && self.dirty[base + way];
        if dirty_eviction {
            self.stats.dram_write_bytes += self.config.line_bytes;
            self.stats.writebacks += 1;
        }
        self.tags[base + way] = Some(tag);
        self.dirty[base + way] = is_write;
        self.policy.on_fill(set, way);
        AccessOutcome::Miss { dirty_eviction }
    }

    /// Streams a contiguous `[start, start+bytes)` region, one access per line
    /// (the granularity tensors move at). Returns the number of misses.
    pub fn stream(&mut self, start: u64, bytes: u64, is_write: bool) -> u64 {
        let line = self.config.line_bytes;
        let first = start / line;
        let last = (start + bytes.max(1) - 1) / line;
        let mut misses = 0;
        for l in first..=last {
            if matches!(self.access(l * line, is_write), AccessOutcome::Miss { .. }) {
                misses += 1;
            }
        }
        misses
    }

    /// Flushes all dirty lines to DRAM (end-of-program accounting).
    pub fn flush_dirty(&mut self) {
        for i in 0..self.tags.len() {
            if self.tags[i].is_some() && self.dirty[i] {
                self.stats.dram_write_bytes += self.config.line_bytes;
                self.stats.writebacks += 1;
                self.dirty[i] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        // 8 lines of 16 B in 2 ways => 4 sets.
        CacheConfig {
            capacity_bytes: 128,
            line_bytes: 16,
            associativity: 2,
        }
    }

    #[test]
    fn paper_config_geometry() {
        let c = CacheConfig::paper_4mb();
        assert_eq!(c.sets(), 32768);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::<LruPolicy>::new(tiny());
        assert!(matches!(c.access(0, false), AccessOutcome::Miss { .. }));
        assert!(matches!(c.access(4, false), AccessOutcome::Hit)); // same line
        assert!(matches!(c.access(16, false), AccessOutcome::Miss { .. }));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().dram_read_bytes, 32);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SetAssocCache::<LruPolicy>::new(tiny());
        // Set 0 receives lines 0, 4, 8 (addresses 0, 64, 128): 2 ways.
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // line 0 now MRU
        c.access(128, false); // evicts line at 64
        assert!(matches!(c.access(0, false), AccessOutcome::Hit));
        assert!(matches!(c.access(64, false), AccessOutcome::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = SetAssocCache::<LruPolicy>::new(tiny());
        c.access(0, true); // dirty
        c.access(64, false);
        // Next fill in set 0 evicts the dirty line 0.
        let out = c.access(128, false);
        assert!(matches!(
            out,
            AccessOutcome::Miss {
                dirty_eviction: true
            }
        ));
        assert_eq!(c.stats().dram_write_bytes, 16);
    }

    #[test]
    fn flush_writes_remaining_dirty_lines() {
        let mut c = SetAssocCache::<LruPolicy>::new(tiny());
        c.access(0, true);
        c.access(16, true);
        c.flush_dirty();
        assert_eq!(c.stats().writebacks, 2);
        c.flush_dirty(); // idempotent
        assert_eq!(c.stats().writebacks, 2);
    }

    #[test]
    fn stream_counts_lines() {
        let mut c = SetAssocCache::<LruPolicy>::new(tiny());
        let misses = c.stream(0, 64, false); // 4 lines
        assert_eq!(misses, 4);
        let misses2 = c.stream(0, 64, false); // still resident (fits in 8 lines)
        assert_eq!(misses2, 0);
    }

    #[test]
    fn scan_thrashes_lru_but_not_brrip() {
        // Working set = 4x capacity, streamed repeatedly: LRU misses every
        // access; BRRIP retains a fraction (the scan-resistance the paper
        // credits it with in Fig 11).
        let cfg = CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 16,
            associativity: 4,
        };
        let bytes = 4096u64;
        let mut lru = SetAssocCache::<LruPolicy>::new(cfg);
        let mut brrip = SetAssocCache::<BrripPolicy>::new(cfg);
        for _ in 0..8 {
            lru.stream(0, bytes, false);
            brrip.stream(0, bytes, false);
        }
        let lru_rate = lru.stats().hit_rate();
        let brrip_rate = brrip.stats().hit_rate();
        assert!(lru_rate < 0.01, "LRU should thrash, hit rate {lru_rate}");
        assert!(
            brrip_rate > lru_rate + 0.05,
            "BRRIP should resist scanning: {brrip_rate} vs {lru_rate}"
        );
    }

    #[test]
    fn lru_capacity_monotonicity() {
        // Stack property (fully associative): larger LRU cache never misses more.
        let trace: Vec<u64> = (0..2000u64)
            .map(|i| ((i * 2654435761) % 4096) / 16 * 16)
            .collect();
        let mut prev_misses = u64::MAX;
        for lines in [4usize, 8, 16, 64, 256] {
            let cfg = CacheConfig {
                capacity_bytes: (lines * 16) as u64,
                line_bytes: 16,
                associativity: lines, // fully associative
            };
            let mut c = SetAssocCache::<LruPolicy>::new(cfg);
            for &a in &trace {
                c.access(a, false);
            }
            assert!(
                c.stats().misses <= prev_misses,
                "misses increased with capacity"
            );
            prev_misses = c.stats().misses;
        }
    }

    #[test]
    fn brrip_deterministic() {
        let cfg = tiny();
        let run = || {
            let mut c = SetAssocCache::<BrripPolicy>::new(cfg);
            for i in 0..500u64 {
                c.access((i * 37) % 1024, i % 3 == 0);
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn policy_names() {
        assert_eq!(SetAssocCache::<LruPolicy>::new(tiny()).policy_name(), "LRU");
        assert_eq!(
            SetAssocCache::<BrripPolicy>::new(tiny()).policy_name(),
            "BRRIP"
        );
        assert_eq!(
            SetAssocCache::<SrripPolicy>::new(tiny()).policy_name(),
            "SRRIP"
        );
    }

    #[test]
    fn srrip_hits_after_fill_and_promotes() {
        let mut c = SetAssocCache::<SrripPolicy>::new(tiny());
        c.access(0, false);
        assert!(matches!(c.access(0, false), AccessOutcome::Hit));
        // Repeatedly touched line survives a competing fill in the same set.
        c.access(0, false);
        c.access(64, false); // same set, second way
        c.access(128, false); // forces a victim: way holding 64 (RRPV 2) not 0 (RRPV 0)
        assert!(matches!(c.access(0, false), AccessOutcome::Hit));
    }

    #[test]
    fn srrip_resists_scans_like_brrip() {
        let cfg = CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 16,
            associativity: 4,
        };
        let mut lru = SetAssocCache::<LruPolicy>::new(cfg);
        let mut srrip = SetAssocCache::<SrripPolicy>::new(cfg);
        // Hot lines touched twice per round (so RRIP hit-promotion engages);
        // between rounds a scan floods each set with 4 fresh lines. LRU lets
        // the scan displace the hot line every round; SRRIP keeps it.
        for round in 0..6 {
            for _ in 0..2 {
                lru.stream(0, 256, false);
                srrip.stream(0, 256, false);
            }
            if round < 5 {
                lru.stream(4096, 1024, false);
                srrip.stream(4096, 1024, false);
            }
        }
        assert!(
            srrip.stats().hit_rate() > lru.stats().hit_rate(),
            "SRRIP {} vs LRU {}",
            srrip.stats().hit_rate(),
            lru.stats().hit_rate()
        );
    }
}

//! Vendored stand-in for the `rayon` subset this workspace uses.
//!
//! The build container has no route to a cargo registry, so this crate
//! re-implements the handful of rayon entry points the workspace calls —
//! `par_iter().map().collect()`, `par_chunks_mut().enumerate().for_each()`,
//! `into_par_iter().step_by().map().collect()` and `current_num_threads()` —
//! on top of `std::thread::scope`. Parallelism is real (contiguous chunking,
//! one worker per available core), ordering is preserved, and the API shape
//! matches rayon closely enough that swapping the real crate back in is a
//! Cargo.toml-only change.

use std::num::NonZeroUsize;
use std::sync::{mpsc, Arc, Mutex};

/// Number of worker threads the pool-less fallback will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error type of [`ThreadPoolBuilder::build`] — mirrors rayon's
/// `ThreadPoolBuildError`. The stand-in pool cannot actually fail to build,
/// but keeping the `Result` shape means swapping the real crate back in is
/// still a Cargo.toml-only change.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirror of rayon's `ThreadPoolBuilder` (the subset `cello-serve` uses:
/// `num_threads` + `build`).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder (defaults to one worker per available core).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = one per available core, like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let job = {
                        let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    match job {
                        // A panicking job must not take the worker down with
                        // it: a long-running service owns this pool, and one
                        // bad request killing a worker would slowly drain the
                        // pool. Mirrors rayon, which catches unwinds at the
                        // job boundary.
                        Ok(job) => {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Err(_) => return, // pool dropped: all senders gone
                    }
                })
            })
            .collect();
        Ok(ThreadPool {
            tx: Some(tx),
            workers,
        })
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads consuming [`ThreadPool::spawn`]ed jobs from
/// a shared queue — the stand-in for rayon's `ThreadPool` as a long-running
/// service's connection pool. Dropping the pool closes the queue and joins
/// the workers (outstanding jobs finish first).
pub struct ThreadPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job for the next free worker (rayon's fire-and-forget
    /// `spawn`).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            // Send can only fail after the pool was dropped, which `&self`
            // rules out; ignore the impossible error rather than unwrap.
            let _ = tx.send(Box::new(job));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.tx.take(); // close the queue so workers see Err and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Ordered parallel map over owned items: splits into contiguous chunks, one
/// scoped thread per chunk, then re-concatenates in order.
fn parallel_map<I, U, F>(items: Vec<I>, f: &F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon-compat worker panicked"));
        }
    });
    out
}

/// Parallel for-each over owned items (no result collection).
fn parallel_for_each<I, F>(items: Vec<I>, f: &F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    std::thread::scope(|scope| {
        for c in chunks {
            scope.spawn(move || c.into_iter().for_each(f));
        }
    });
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element (in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Parallel for-each over `&T`.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_for_each(self.items.iter().collect(), &|t| f(t));
    }
}

/// Mapped borrowing parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map in parallel and collects in order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
        C: FromIterator<U>,
    {
        parallel_map(self.items.iter().collect::<Vec<&'a T>>(), &|t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

/// Parallel iterator over owned items (ranges, vecs).
pub struct IntoParIter<I> {
    items: Vec<I>,
}

impl<I: Send> IntoParIter<I> {
    /// Keeps every `step`-th element, mirroring `Iterator::step_by`.
    pub fn step_by(self, step: usize) -> IntoParIter<I> {
        IntoParIter {
            items: self.items.into_iter().step_by(step.max(1)).collect(),
        }
    }

    /// Maps each element (in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> IntoParMap<I, F>
    where
        U: Send,
        F: Fn(I) -> U + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
        }
    }

    /// Parallel for-each over owned items.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        parallel_for_each(self.items, &f);
    }
}

/// Mapped owning parallel iterator.
pub struct IntoParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> IntoParMap<I, F> {
    /// Runs the map in parallel and collects in order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(I) -> U + Sync,
        C: FromIterator<U>,
    {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Mirror of rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// Mirror of rayon's `IntoParallelRefIterator` (`par_iter` on slices/vecs).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Sync + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Chunked mutable parallel iterator (pre-enumerate).
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Parallel for-each over chunks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        parallel_for_each(self.chunks, &f);
    }
}

/// Enumerated chunked mutable parallel iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Parallel for-each over `(index, chunk)` pairs.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        parallel_for_each(self.chunks.into_iter().enumerate().collect(), &f);
    }
}

/// Mirror of rayon's `ParallelSliceMut` (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits into mutable chunks of at most `size` elements.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            chunks: self.chunks_mut(size.max(1)).collect(),
        }
    }
}

/// The rayon prelude: the traits that put `par_iter` & friends in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn into_par_iter_step_by_matches_sequential() {
        let par: Vec<usize> = (0..1000)
            .into_par_iter()
            .step_by(7)
            .map(|x| x + 1)
            .collect();
        let seq: Vec<usize> = (0..1000).step_by(7).map(|x| x + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_chunks_mut_enumerate_writes_disjoint() {
        let mut data = vec![0usize; 64];
        data.par_chunks_mut(8)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|c| *c = i));
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 8);
        }
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn thread_pool_runs_all_jobs_and_joins_on_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers; queued jobs finish first
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    /// A panicking job neither kills its worker nor poisons the queue.
    #[test]
    fn thread_pool_survives_panicking_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..16 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                if i % 2 == 0 {
                    panic!("job {i} goes down");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}

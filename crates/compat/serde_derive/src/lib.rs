//! Vendored no-op stand-in for `serde_derive`.
//!
//! This workspace builds in an offline container with no access to
//! crates.io, and nothing in the repo actually serializes at runtime — the
//! `#[derive(Serialize, Deserialize)]` annotations only document intent and
//! keep the door open for a real serde swap-in. These derives therefore
//! expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

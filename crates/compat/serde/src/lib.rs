//! Vendored API-compatible stand-in for `serde`.
//!
//! The container this workspace builds in has no network route to a cargo
//! registry, and no code in the repo performs runtime (de)serialization —
//! the derives are declarations of intent. This crate supplies the names the
//! source imports (`use serde::{Deserialize, Serialize}` plus the derive
//! macros) so the workspace compiles offline. Swapping in real serde later
//! is a one-line Cargo.toml change; no source edits needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never used as a bound here).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (never used as a bound here).
pub trait Deserialize<'de> {}

//! Vendored stand-in for the `proptest` subset this workspace uses.
//!
//! Offline container, no registry access. This reimplements the slice of
//! proptest the repo's property tests rely on: `Strategy` with `prop_map`,
//! range and tuple strategies, `any::<bool>()`, `proptest::collection::vec`,
//! `prop_oneof!`, the `proptest! { ... }` test macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert*` family.
//!
//! Differences from upstream, deliberately accepted:
//! - generation is **deterministic** (seeded from the test's module path), so
//!   CI failures always reproduce;
//! - there is no shrinking — a failing case reports its case index and
//!   message only.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator feeding every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (typically the test's full path).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property check (returned early by `prop_assert*`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (only the case count is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator (the proptest core abstraction, minus shrinking).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.inner)(rng)
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds from a non-empty choice list.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Self { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi as u64) - (lo as u64) + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy value.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical full-domain strategy for `bool` and small ints.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_any {
    ($($t:ty => $gen:expr),+ $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )+};
}

impl_any!(
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
);

/// The canonical strategy for `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: exact or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector-of-elements strategy (mirror of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs one property over `config.cases` deterministic cases.
#[doc(hidden)]
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{name}' failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// Mirror of proptest's `proptest! { ... }` test-defining macro.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (
        @impl ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let name = concat!(module_path!(), "::", stringify!($name));
                $crate::run_cases($cfg, name, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    { $body }
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Mirror of `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), lhs, rhs
            )));
        }
    }};
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {} (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Mirror of `prop_oneof!`: uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_and_vec_strategy_bounds() {
        let mut rng = super::TestRng::from_name("bounds");
        let s = super::collection::vec((0u64..100, any::<bool>()), 1..50);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 50);
            assert!(v.iter().all(|&(x, _)| x < 100));
        }
        let exact = super::collection::vec(0u8..10, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = super::TestRng::from_name("arms");
        let s = prop_oneof![
            (0u32..1).prop_map(|_| 0usize),
            (0u32..1).prop_map(|_| 1usize),
            (0u32..1).prop_map(|_| 2usize),
        ];
        let mut seen = [false; 3];
        for _ in 0..256 {
            seen[s.generate(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_end_to_end(x in 1u64..100, flip in any::<bool>()) {
            prop_assert!((1..100).contains(&x));
            let y = if flip { x } else { x + 1 };
            prop_assert!(y >= x);
            prop_assert_eq!(x.min(y), x);
        }
    }
}

//! Vendored stand-in for the `rand` subset this workspace uses.
//!
//! Offline container, no registry access. The dataset generators only need a
//! seedable uniform generator (`StdRng::seed_from_u64`, `gen_range` over
//! integer/float ranges, `gen_bool`), so this crate implements exactly that on
//! SplitMix64. Determinism per seed is guaranteed (the workspace's own
//! `generators_are_deterministic` test pins it); the exact stream differs from
//! upstream rand, which no test depends on.

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a range (mirror of `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Minimal core-RNG trait (`next_u64` is the only primitive).
pub trait RngCore {
    /// Next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience trait (mirror of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform draw from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Mirror of `rand::SeedableRng` (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` via Lemire-style rejection-free scaling
/// (128-bit multiply keeps bias negligible for the bounds used here).
fn below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
            let mut rng = StdRng {
                state: super::splitmix64(&mut state),
            };
            rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }
}

//! Vendored stand-in for the `criterion` subset this workspace uses.
//!
//! Offline container, no registry access. Implements the API shape the
//! `crates/bench/benches/*.rs` files call — `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple timed loop instead of criterion's statistical
//! machinery: each benchmark warms up once, then reports the mean wall time
//! over a fixed sample of iterations (plus derived throughput when set).

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (mirror of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier (mirror of `criterion::BenchmarkId`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id from a parameter's display form.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self {
            name: p.to_string(),
        }
    }

    /// Id from a function name and a parameter.
    pub fn new(function: impl Into<String>, p: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{p}", function.into()),
        }
    }
}

/// Drives one benchmark's timed loop.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the aggregate for the caller to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("bench {name:<40} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(", {:.3} GiB/s", n as f64 / per_iter / (1u64 << 30) as f64),
        Throughput::Elements(n) => format!(", {:.3} Melem/s", n as f64 / per_iter / 1e6),
    });
    println!(
        "bench {name:<40} {:>12.3} µs/iter{}",
        per_iter * 1e6,
        rate.unwrap_or_default()
    );
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<u64>,
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(10),
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b, None);
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A benchmark group (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Declares the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = Some(n as u64);
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(10),
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&label, &b, self.throughput);
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let label = format!("{}/{}", self.name, name);
        self.run(label, f);
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        self.run(label, |b| f(b, input));
    }

    /// Closes the group (formatting no-op).
    pub fn finish(self) {}
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        g.bench_function("in-group", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn api_surface_smoke() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}

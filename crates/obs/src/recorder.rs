//! A bounded flight recorder for finished span trees.
//!
//! `cello-serve` pushes one [`SpanNode`] per request; the ring keeps the
//! most recent `capacity` of them so a `trace` protocol request can ship a
//! Chrome trace of what the daemon just did without unbounded memory. The
//! lock is poison-proof: a worker panicking mid-push must not wedge every
//! later `trace` request.

use crate::span::SpanNode;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-capacity ring of recent span trees (oldest evicted first).
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<SpanNode>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` trees (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Records one finished tree, evicting the oldest at capacity.
    pub fn push(&self, node: SpanNode) {
        let mut ring = crate::lock(&self.ring);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(node);
    }

    /// The retained trees, oldest first.
    pub fn recent(&self) -> Vec<SpanNode> {
        crate::lock(&self.ring).iter().cloned().collect()
    }

    /// Number of retained trees.
    pub fn len(&self) -> usize {
        crate::lock(&self.ring).len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum retained trees.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent() {
        let rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for i in 0..5u64 {
            rec.push(SpanNode::new(format!("req-{i}")));
        }
        assert_eq!(rec.len(), 3);
        let names: Vec<String> = rec.recent().into_iter().map(|n| n.name).collect();
        assert_eq!(names, ["req-2", "req-3", "req-4"]);
        assert_eq!(rec.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let rec = FlightRecorder::new(0);
        rec.push(SpanNode::new("only"));
        rec.push(SpanNode::new("newer"));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.recent()[0].name, "newer");
    }
}

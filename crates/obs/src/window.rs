//! Epoch-bucketed sliding windows over counters and histograms.
//!
//! The registry's instruments are cumulative-forever: `requests_total` only
//! ever grows, and `request_us` mixes yesterday's latencies with this
//! second's. A window answers the *live* question — "what is the p95 over
//! the last 60 seconds?" — by bucketing observations into a ring of `N`
//! epoch-keyed slots and merging only the slots whose epoch falls inside
//! `(now − N, now]`.
//!
//! Two layers:
//!
//! - **Pure cores** ([`WindowHistogram`], [`WindowCounter`]): explicit-epoch
//!   APIs (`record_at`, `snapshot_at`, `merge`) with no clock and no lock,
//!   so the algebra is directly property-testable. The merge is
//!   slot-wise "newer epoch wins, equal epochs combine" — associative and
//!   commutative, and an expired slot can never resurrect: a slot only
//!   moves to a *larger* epoch, and `snapshot_at(now)` ignores anything
//!   outside the window.
//! - **Clocked wrappers** ([`WindowedHistogram`], [`WindowedCounter`]):
//!   `Mutex`-wrapped cores stamped from the system clock, for the serve
//!   daemon's hot path (one lock + one array write per event).

use crate::metrics::HistogramSnapshot;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// A sliding-window histogram: a ring of `N` epoch-keyed
/// [`HistogramSnapshot`] slots. Pure core — callers supply epochs.
#[derive(Clone, Debug)]
pub struct WindowHistogram {
    /// `(epoch, bucket)` pairs; slot index is `epoch % len`.
    slots: Vec<(u64, HistogramSnapshot)>,
}

impl WindowHistogram {
    /// A window of `buckets` epochs (clamped to at least 1), all empty.
    pub fn new(buckets: usize) -> Self {
        WindowHistogram {
            slots: vec![(0, HistogramSnapshot::empty()); buckets.max(1)],
        }
    }

    /// Window length in epochs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot holds any observation.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|(_, h)| h.count == 0)
    }

    /// The live slot for `epoch`: reused when the epoch matches, reset
    /// (expiring the old contents) when `epoch` is newer, `None` when
    /// `epoch` is older than what the slot already holds — a late sample
    /// from an expired epoch is dropped, never resurrected.
    fn slot_mut(&mut self, epoch: u64) -> Option<&mut HistogramSnapshot> {
        let len = self.slots.len() as u64;
        let slot = &mut self.slots[(epoch % len) as usize];
        if slot.0 > epoch {
            return None;
        }
        if slot.0 < epoch {
            *slot = (epoch, HistogramSnapshot::empty());
        }
        Some(&mut slot.1)
    }

    /// Records one observation stamped with `epoch`.
    pub fn record_at(&mut self, epoch: u64, v: u64) {
        if let Some(h) = self.slot_mut(epoch) {
            h.record(v);
        }
    }

    /// Merges a whole pre-aggregated bucket into the `epoch` slot (the
    /// shard-and-merge path).
    pub fn merge_at(&mut self, epoch: u64, bucket: &HistogramSnapshot) {
        if let Some(h) = self.slot_mut(epoch) {
            h.merge(bucket);
        }
    }

    /// Merges another window in, slot-wise: the newer epoch wins a slot,
    /// equal epochs combine. Associative and commutative (each slot is a
    /// max-graded semilattice merge), so shard aggregation is
    /// order-independent.
    pub fn merge(&mut self, other: &WindowHistogram) {
        for (epoch, bucket) in &other.slots {
            self.merge_at(*epoch, bucket);
        }
    }

    /// The merged histogram over the window ending at `now`: slots with
    /// `epoch ∈ (now − len, now]`. Slots from the future (`epoch > now`)
    /// and expired slots are both excluded.
    pub fn snapshot_at(&self, now: u64) -> HistogramSnapshot {
        let len = self.slots.len() as u64;
        let mut out = HistogramSnapshot::empty();
        for (epoch, bucket) in &self.slots {
            if *epoch <= now && epoch.saturating_add(len) > now {
                out.merge(bucket);
            }
        }
        out
    }
}

/// A sliding-window event counter: the same epoch ring as
/// [`WindowHistogram`] with a saturating `u64` per slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowCounter {
    slots: Vec<(u64, u64)>,
}

impl WindowCounter {
    /// A window of `buckets` epochs (clamped to at least 1), all zero.
    pub fn new(buckets: usize) -> Self {
        WindowCounter {
            slots: vec![(0, 0); buckets.max(1)],
        }
    }

    /// Window length in epochs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when every slot is zero.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&(_, n)| n == 0)
    }

    /// Adds `n` events stamped with `epoch` (late samples from expired
    /// epochs are dropped).
    pub fn add_at(&mut self, epoch: u64, n: u64) {
        let len = self.slots.len() as u64;
        let slot = &mut self.slots[(epoch % len) as usize];
        if slot.0 > epoch {
            return;
        }
        if slot.0 < epoch {
            *slot = (epoch, 0);
        }
        slot.1 = slot.1.saturating_add(n);
    }

    /// Merges another window in (newer epoch wins, equal epochs add).
    pub fn merge(&mut self, other: &WindowCounter) {
        for &(epoch, n) in &other.slots {
            let len = self.slots.len() as u64;
            let slot = &mut self.slots[(epoch % len) as usize];
            if slot.0 > epoch {
                continue;
            }
            if slot.0 < epoch {
                *slot = (epoch, 0);
            }
            slot.1 = slot.1.saturating_add(n);
        }
    }

    /// Total events in the window ending at `now`.
    pub fn total_at(&self, now: u64) -> u64 {
        let len = self.slots.len() as u64;
        self.slots
            .iter()
            .filter(|(epoch, _)| *epoch <= now && epoch.saturating_add(len) > now)
            .fold(0u64, |acc, &(_, n)| acc.saturating_add(n))
    }
}

/// Seconds since the Unix epoch, bucketed by `bucket_secs`.
fn epoch_now(bucket_secs: u64) -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs()
        / bucket_secs.max(1)
}

/// A clocked, thread-safe [`WindowHistogram`]: `buckets × bucket_secs`
/// seconds of sliding history (e.g. `60 × 1` for p95-over-last-60s).
#[derive(Debug)]
pub struct WindowedHistogram {
    bucket_secs: u64,
    inner: Mutex<WindowHistogram>,
}

impl WindowedHistogram {
    /// A window of `buckets` slots, each `bucket_secs` wide.
    pub fn new(buckets: usize, bucket_secs: u64) -> Self {
        WindowedHistogram {
            bucket_secs: bucket_secs.max(1),
            inner: Mutex::new(WindowHistogram::new(buckets)),
        }
    }

    /// Total window span in seconds.
    pub fn window_secs(&self) -> u64 {
        crate::lock(&self.inner).len() as u64 * self.bucket_secs
    }

    /// Records one observation stamped with the current wall clock.
    pub fn record(&self, v: u64) {
        let epoch = epoch_now(self.bucket_secs);
        crate::lock(&self.inner).record_at(epoch, v);
    }

    /// The merged histogram over the window ending now.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let epoch = epoch_now(self.bucket_secs);
        crate::lock(&self.inner).snapshot_at(epoch)
    }
}

/// A clocked, thread-safe [`WindowCounter`] (live rates: `total() /
/// window_secs()`).
#[derive(Debug)]
pub struct WindowedCounter {
    bucket_secs: u64,
    inner: Mutex<WindowCounter>,
}

impl WindowedCounter {
    /// A window of `buckets` slots, each `bucket_secs` wide.
    pub fn new(buckets: usize, bucket_secs: u64) -> Self {
        WindowedCounter {
            bucket_secs: bucket_secs.max(1),
            inner: Mutex::new(WindowCounter::new(buckets)),
        }
    }

    /// Total window span in seconds.
    pub fn window_secs(&self) -> u64 {
        crate::lock(&self.inner).len() as u64 * self.bucket_secs
    }

    /// Adds one event stamped with the current wall clock.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` events stamped with the current wall clock.
    pub fn add(&self, n: u64) {
        let epoch = epoch_now(self.bucket_secs);
        crate::lock(&self.inner).add_at(epoch, n);
    }

    /// Total events in the window ending now.
    pub fn total(&self) -> u64 {
        let epoch = epoch_now(self.bucket_secs);
        crate::lock(&self.inner).total_at(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sees_only_recent_epochs() {
        let mut w = WindowHistogram::new(3);
        w.record_at(10, 100);
        w.record_at(11, 200);
        w.record_at(12, 300);
        // All three epochs are inside (9, 12].
        let s = w.snapshot_at(12);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 300);
        // Advance: epoch 10 falls out of (10, 13].
        let s = w.snapshot_at(13);
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 200);
        // Far future: everything expired.
        assert_eq!(w.snapshot_at(100).count, 0);
    }

    #[test]
    fn late_samples_from_expired_epochs_are_dropped() {
        let mut w = WindowHistogram::new(3);
        w.record_at(12, 300); // slot 12 % 3 == 0
        w.record_at(9, 999); // same slot, older epoch: dropped
        assert_eq!(w.snapshot_at(12).count, 1);
        assert_eq!(w.snapshot_at(12).max, 300);
        // Epoch 9 is outside (9, 12] anyway, but the slot itself must not
        // have been clobbered either.
        assert_eq!(w.snapshot_at(14).count, 1);
    }

    #[test]
    fn newer_epoch_resets_the_slot() {
        let mut w = WindowHistogram::new(2);
        w.record_at(4, 1);
        w.record_at(6, 2); // same slot index (6 % 2 == 4 % 2), newer epoch
        let s = w.snapshot_at(6);
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 2, "epoch-4 sample expired when the slot advanced");
    }

    #[test]
    fn merge_is_commutative_and_keeps_newer_epochs() {
        let mut a = WindowHistogram::new(4);
        a.record_at(5, 10);
        a.record_at(6, 20);
        let mut b = WindowHistogram::new(4);
        b.record_at(6, 30);
        b.record_at(9, 40); // same slot index as 5, newer epoch

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for now in 5..12 {
            assert_eq!(ab.snapshot_at(now), ba.snapshot_at(now), "now={now}");
        }
        // Epoch 9 beat epoch 5 in their shared slot.
        let s = ab.snapshot_at(9);
        assert_eq!(s.count, 3, "epochs 6+6 merged, 9 kept, 5 expired");
    }

    #[test]
    fn counter_window_totals_and_merge() {
        let mut c = WindowCounter::new(3);
        c.add_at(10, 5);
        c.add_at(11, 7);
        assert_eq!(c.total_at(11), 12);
        assert_eq!(c.total_at(13), 7);
        assert_eq!(c.total_at(50), 0);

        let mut d = WindowCounter::new(3);
        d.add_at(11, 1);
        let mut cd = c.clone();
        cd.merge(&d);
        let mut dc = d.clone();
        dc.merge(&c);
        assert_eq!(cd, dc);
        assert_eq!(cd.total_at(11), 13);
    }

    #[test]
    fn clocked_wrappers_record_and_read() {
        let h = WindowedHistogram::new(60, 1);
        h.record(500);
        h.record(1500);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert!(s.percentile(95.0) >= 500);
        assert_eq!(h.window_secs(), 60);

        let c = WindowedCounter::new(12, 5);
        c.inc();
        c.add(2);
        assert_eq!(c.total(), 3);
        assert_eq!(c.window_secs(), 60);
    }
}

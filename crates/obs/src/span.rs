//! Hierarchical spans.
//!
//! Three ways to produce a [`SpanNode`] tree, by decreasing magic:
//!
//! - **Guards** (`span!("tune")`, `span!("phase", idx = i)`): wall-clock
//!   spans on a thread-local stack. Collection is **off by default** — a
//!   disabled guard costs one relaxed atomic load, which is what lets the
//!   tuner keep per-beam-level spans on its hot path. Enable with
//!   [`set_enabled`], collect finished roots with [`drain`].
//! - **[`SpanRecorder`]**: an explicit wall-clock builder for code that owns
//!   its tree (one per request in `cello-serve`), independent of the global
//!   switch and safe under any threading.
//! - **Plain [`SpanNode`] construction**: for *model-time* trees where
//!   `ts`/`dur` come from simulated cycles, not a clock (`cello-sim`'s
//!   phase trace).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A span argument value (rendered into Chrome trace `args`).
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (exact in JSON up to 2^53).
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One finished span: a named interval with arguments and children.
/// Timestamps are microseconds relative to the tree's epoch (wall clock for
/// recorded spans, model time for constructed ones).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanNode {
    /// Span name (the Chrome trace event name).
    pub name: String,
    /// Start, µs from the tree epoch.
    pub ts_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
    /// Key/value arguments.
    pub args: Vec<(String, ArgValue)>,
    /// Nested spans.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A zero-length span at t=0 named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SpanNode {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Builder: attach an argument.
    pub fn arg(mut self, key: &str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.to_string(), value.into()));
        self
    }

    /// Builder: attach a child.
    pub fn child(mut self, child: SpanNode) -> Self {
        self.children.push(child);
        self
    }

    /// Total node count including `self` (event count in a Chrome export).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::node_count)
            .sum::<usize>()
    }

    /// Looks up an argument by key.
    pub fn get_arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

// ---------------------------------------------------------------------------
// Explicit wall-clock recording.
// ---------------------------------------------------------------------------

/// Builds one span tree against a fixed epoch (its own creation instant).
/// Stages nest through [`SpanRecorder::timed`]; [`SpanRecorder::finish`]
/// closes the root.
pub struct SpanRecorder {
    epoch: Instant,
    started: Instant,
    name: String,
    args: Vec<(String, ArgValue)>,
    children: Vec<SpanNode>,
}

impl SpanRecorder {
    /// Opens a root span named `name`; the epoch is *now*.
    pub fn new(name: impl Into<String>) -> Self {
        let now = Instant::now();
        SpanRecorder {
            epoch: now,
            started: now,
            name: name.into(),
            args: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Attaches an argument to the span being recorded.
    pub fn arg(&mut self, key: &str, value: impl Into<ArgValue>) {
        self.args.push((key.to_string(), value.into()));
    }

    /// Runs `f` under a child span named `name`; the child closes when `f`
    /// returns. The closure receives the child recorder, so stages nest.
    pub fn timed<T>(&mut self, name: &str, f: impl FnOnce(&mut SpanRecorder) -> T) -> T {
        let mut child = SpanRecorder {
            epoch: self.epoch,
            started: Instant::now(),
            name: name.to_string(),
            args: Vec::new(),
            children: Vec::new(),
        };
        let out = f(&mut child);
        self.children.push(child.into_node());
        out
    }

    /// Closes the span, stamping its duration.
    pub fn finish(self) -> SpanNode {
        self.into_node()
    }

    fn into_node(self) -> SpanNode {
        SpanNode {
            name: self.name,
            ts_us: self.started.duration_since(self.epoch).as_secs_f64() * 1e6,
            dur_us: self.started.elapsed().as_secs_f64() * 1e6,
            args: self.args,
            children: self.children,
        }
    }
}

// ---------------------------------------------------------------------------
// Global guard-based collection (the `span!` macro).
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static FINISHED: OnceLock<Mutex<Vec<SpanNode>>> = OnceLock::new();
static PROCESS_EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static STACK: RefCell<Vec<Pending>> = const { RefCell::new(Vec::new()) };
}

struct Pending {
    name: String,
    args: Vec<(String, ArgValue)>,
    started: Instant,
    children: Vec<SpanNode>,
}

/// Turns global span collection on or off. Off (the default) makes every
/// `span!` guard a single relaxed atomic load.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether `span!` guards currently record.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Removes and returns every finished root span collected so far (across
/// all threads).
pub fn drain() -> Vec<SpanNode> {
    std::mem::take(&mut *crate::lock(FINISHED.get_or_init(Default::default)))
}

/// An RAII guard opened by the `span!` macro. Dropping it closes the span:
/// nested guards attach to their parent, a root lands in the global
/// finished list (see [`drain`]).
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// Opens a span when collection is enabled; inert otherwise.
    pub fn enter(name: &str, args: Vec<(String, ArgValue)>) -> SpanGuard {
        if !enabled() {
            return SpanGuard { active: false };
        }
        STACK.with(|stack| {
            stack.borrow_mut().push(Pending {
                name: name.to_string(),
                args,
                started: Instant::now(),
                children: Vec::new(),
            });
        });
        SpanGuard { active: true }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(pending) = stack.pop() else { return };
            let epoch = *PROCESS_EPOCH.get_or_init(Instant::now);
            let node = SpanNode {
                ts_us: pending
                    .started
                    .checked_duration_since(epoch)
                    .map_or(0.0, |d| d.as_secs_f64() * 1e6),
                dur_us: pending.started.elapsed().as_secs_f64() * 1e6,
                name: pending.name,
                args: pending.args,
                children: pending.children,
            };
            match stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => crate::lock(FINISHED.get_or_init(Default::default)).push(node),
            }
        });
    }
}

/// Opens a wall-clock span guard: `let _s = span!("tune");` or
/// `let _s = span!("phase", idx = i, bytes = b);`. The span closes when the
/// guard drops. No-op (one atomic load) unless [`set_enabled`] was called.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::SpanGuard::enter(
            $name,
            vec![$((stringify!($key).to_string(), $crate::span::ArgValue::from($value))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_nests_and_times() {
        let mut rec = SpanRecorder::new("request");
        rec.arg("id", 7u64);
        let answer = rec.timed("parse", |_| 41) + 1;
        rec.timed("tune", |tune| {
            tune.arg("evals", 12u64);
            tune.timed("beam", |_| {});
        });
        let root = rec.finish();
        assert_eq!(answer, 42);
        assert_eq!(root.name, "request");
        assert_eq!(root.get_arg("id"), Some(&ArgValue::U64(7)));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[1].children[0].name, "beam");
        assert_eq!(root.node_count(), 4);
        // Children start at or after the root and fit inside it.
        for child in &root.children {
            assert!(child.ts_us >= root.ts_us);
            assert!(child.ts_us + child.dur_us <= root.ts_us + root.dur_us + 1.0);
        }
    }

    #[test]
    fn disabled_guards_are_inert() {
        set_enabled(false);
        let before = drain().len();
        {
            let _g = crate::span!("invisible");
        }
        assert_eq!(drain().len(), before, "nothing collected while disabled");
    }

    #[test]
    fn enabled_guards_collect_trees() {
        set_enabled(true);
        {
            let _root = crate::span!("span-test-root", kind = "test");
            let _child = crate::span!("span-test-child", idx = 3u64);
        }
        set_enabled(false);
        let finished = drain();
        let root = finished
            .iter()
            .find(|s| s.name == "span-test-root")
            .expect("root collected");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "span-test-child");
        assert_eq!(root.children[0].get_arg("idx"), Some(&ArgValue::U64(3)));
        assert!(root.dur_us >= root.children[0].dur_us);
    }
}

//! Leveled, target-filtered logging.
//!
//! The filter grammar is the familiar env-filter subset:
//! `CELLO_LOG=debug` sets the global level, `CELLO_LOG=debug,serve=trace`
//! additionally overrides the `serve` target. Unset means `info`; `off`
//! silences everything. Events pass through every registered [`LogSink`]
//! (thread-safe; tests capture through one) and, unless disabled, a
//! timestamped stderr line:
//!
//! ```text
//! [   12.345ms INFO  serve] listening on 127.0.0.1:7070
//! ```

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Log severity, ordered so `Error < Warn < … < Trace` and a filter level
/// admits everything at or below it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Something failed; the process keeps going.
    Error,
    /// Something looks wrong but was handled.
    Warn,
    /// Operational milestones (default).
    Info,
    /// Per-request / per-run detail.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    /// Parses a level name (case-insensitive). `off` maps to `None`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        Some(Some(match s.to_ascii_lowercase().as_str() {
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            "off" | "none" => return Some(None),
            _ => return None,
        }))
    }

    /// Fixed-width display tag.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// A parsed `CELLO_LOG` filter: a default level plus per-target overrides.
#[derive(Clone, Debug, Default)]
pub struct Filter {
    /// Level admitted for targets without an override (`None` = off).
    pub default: Option<Level>,
    /// `target=level` overrides, first match wins.
    pub overrides: Vec<(String, Option<Level>)>,
}

impl Filter {
    /// The unset-environment default: `info` everywhere.
    pub fn info() -> Self {
        Filter {
            default: Some(Level::Info),
            overrides: Vec::new(),
        }
    }

    /// Parses `debug,serve=trace,search=off`. Unrecognized fragments are
    /// ignored rather than fatal — a typo in an env var must not take the
    /// daemon down.
    pub fn parse(spec: &str) -> Self {
        let mut filter = Filter::info();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level.trim()) {
                        filter.overrides.push((target.trim().to_string(), level));
                    }
                }
                None => {
                    if let Some(level) = Level::parse(part) {
                        filter.default = level;
                    }
                }
            }
        }
        filter
    }

    /// Whether an event at `level` for `target` passes.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let admit = self
            .overrides
            .iter()
            .find(|(t, _)| t == target)
            .map(|(_, l)| *l)
            .unwrap_or(self.default);
        admit.is_some_and(|cap| level <= cap)
    }
}

/// A structured log event, as sinks see it.
#[derive(Clone, Debug)]
pub struct LogEvent {
    /// Severity.
    pub level: Level,
    /// Component target (`serve`, `search`, …).
    pub target: String,
    /// Rendered message.
    pub message: String,
    /// Microseconds since the logger first initialized.
    pub elapsed_us: u64,
}

/// A thread-safe event sink (tests, ring buffers, files).
pub trait LogSink: Send + Sync {
    /// Receives one event that passed the filter.
    fn event(&self, event: &LogEvent);
}

struct Logger {
    epoch: Instant,
    filter: Mutex<Filter>,
    sinks: Mutex<Vec<Arc<dyn LogSink>>>,
    stderr: Mutex<bool>,
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

fn logger() -> &'static Logger {
    LOGGER.get_or_init(|| Logger {
        epoch: Instant::now(),
        filter: Mutex::new(match std::env::var("CELLO_LOG") {
            Ok(spec) => Filter::parse(&spec),
            Err(_) => Filter::info(),
        }),
        sinks: Mutex::new(Vec::new()),
        stderr: Mutex::new(true),
    })
}

/// Re-reads `CELLO_LOG` (daemon startup calls this so the filter reflects
/// the environment even if something logged earlier in the process).
pub fn init_from_env() {
    let filter = match std::env::var("CELLO_LOG") {
        Ok(spec) => Filter::parse(&spec),
        Err(_) => Filter::info(),
    };
    set_filter(filter);
}

/// Replaces the active filter.
pub fn set_filter(filter: Filter) {
    *crate::lock(&logger().filter) = filter;
}

/// Registers an event sink (in addition to stderr).
pub fn add_sink(sink: Arc<dyn LogSink>) {
    crate::lock(&logger().sinks).push(sink);
}

/// Enables or disables the stderr line (tests silence it).
pub fn log_to_stderr(enabled: bool) {
    *crate::lock(&logger().stderr) = enabled;
}

/// Whether an event at `level` for `target` would be emitted.
pub fn enabled(level: Level, target: &str) -> bool {
    crate::lock(&logger().filter).enabled(level, target)
}

/// The macro entry point: filter, render, fan out. `fmt::Arguments` keeps
/// message formatting lazy — a filtered-out event never allocates.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let logger = logger();
    if !crate::lock(&logger.filter).enabled(level, target) {
        return;
    }
    let event = LogEvent {
        level,
        target: target.to_string(),
        message: args.to_string(),
        elapsed_us: logger.epoch.elapsed().as_micros() as u64,
    };
    if *crate::lock(&logger.stderr) {
        eprintln!(
            "[{:>9.3}ms {} {}] {}",
            event.elapsed_us as f64 / 1e3,
            level.tag(),
            event.target,
            event.message,
        );
    }
    for sink in crate::lock(&logger.sinks).iter() {
        sink.event(&event);
    }
}

/// Logs at [`Level::Error`]: `error!("serve", "bind failed: {e}")`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Trace, $target, format_args!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_order_admits_downward() {
        assert!(Level::Error < Level::Trace);
        let f = Filter::parse("debug");
        assert!(f.enabled(Level::Info, "any"));
        assert!(f.enabled(Level::Debug, "any"));
        assert!(!f.enabled(Level::Trace, "any"));
    }

    #[test]
    fn env_filter_grammar() {
        let f = Filter::parse("warn,serve=trace,search=off");
        assert!(f.enabled(Level::Warn, "sim"));
        assert!(!f.enabled(Level::Info, "sim"));
        assert!(f.enabled(Level::Trace, "serve"));
        assert!(
            !f.enabled(Level::Error, "search"),
            "off silences errors too"
        );
        // Garbage fragments are ignored, default stays info.
        let g = Filter::parse("purple,serve=plaid");
        assert!(g.enabled(Level::Info, "serve"));
        assert!(!g.enabled(Level::Debug, "serve"));
    }

    #[test]
    fn off_and_default() {
        let f = Filter::parse("off");
        assert!(!f.enabled(Level::Error, "any"));
        assert!(Filter::info().enabled(Level::Info, "x"));
        assert!(!Filter::info().enabled(Level::Debug, "x"));
    }

    #[test]
    fn sink_receives_filtered_events() {
        struct Capture(Mutex<Vec<LogEvent>>);
        impl LogSink for Capture {
            fn event(&self, event: &LogEvent) {
                crate::lock(&self.0).push(event.clone());
            }
        }
        let capture = Arc::new(Capture(Mutex::new(Vec::new())));
        log_to_stderr(false);
        add_sink(capture.clone());
        set_filter(Filter::parse("info,logtest=debug"));
        crate::debug!("logtest", "captured {}", 42);
        crate::debug!("elsewhere", "filtered out");
        let events = crate::lock(&capture.0);
        let ours: Vec<&LogEvent> = events.iter().filter(|e| e.target == "logtest").collect();
        assert_eq!(ours.len(), 1);
        assert_eq!(ours[0].message, "captured 42");
        assert_eq!(ours[0].level, Level::Debug);
        assert!(!events.iter().any(|e| e.target == "elsewhere"));
    }
}

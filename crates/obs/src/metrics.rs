//! Named counters, gauges, and latency histograms.
//!
//! A [`Registry`] hands out `Arc`'d instruments keyed by name; callers keep
//! the handle and touch atomics on the hot path (no map lookup per event).
//! Counters **saturate** instead of wrapping — a u64 that silently restarts
//! at zero after 2^64 events would corrupt every rate computed from it.
//! Histograms use 65 log2-width buckets covering all of `u64`, with exact
//! min/max tracked on the side so percentile estimates can be clamped to
//! the observed range.
//!
//! [`global()`] is the process-wide registry (`cello-serve`'s daemon and the
//! in-process tuner share it so `metrics` requests see search counters);
//! tests inject a fresh `Registry` instead to stay isolated.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const BUCKETS: usize = 65;

/// A monotone, saturating event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        // fetch_update never fails with a closure that always returns Some.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram: 65 log2-width buckets (bucket `k`
/// holds values whose bit length is `k`, i.e. `[2^(k-1), 2^k)`), plus exact
/// min/max and sum. Lock-free to record, cheap to snapshot.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy for percentile math and serialization.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|k| self.counts[k].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram state: mergeable, with percentile estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `k` = bit length `k`).
    pub counts: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observed values.
    pub sum: u64,
    /// Exact minimum observed (`u64::MAX` when empty).
    pub min: u64,
    /// Exact maximum observed (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Inclusive upper bound of bucket `k`.
fn upper_bound(k: usize) -> u64 {
    match k {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Folds one observation in (for single-threaded accumulation, e.g.
    /// loadgen's per-workload tallies).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another snapshot in. Elementwise saturating adds plus
    /// min/max folds — associative and commutative, so shard-and-merge
    /// aggregation is order-independent.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for k in 0..BUCKETS {
            self.counts[k] = self.counts[k].saturating_add(other.counts[k]);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `p`-th percentile (`0.0..=100.0`): the inclusive upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(p/100 · count)`, clamped to the exact observed `[min, max]`.
    /// The clamp guarantees `min ≤ p50 ≤ p95 ≤ p99 ≤ max` and that the
    /// estimate never exceeds the true value by more than one bucket width.
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for k in 0..BUCKETS {
            seen = seen.saturating_add(self.counts[k]);
            if seen >= rank {
                return upper_bound(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named-instrument registry. Lookup takes a lock; the returned `Arc`
/// handles are lock-free, so hot paths resolve names once.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry (tests inject these).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            crate::lock(&self.counters)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            crate::lock(&self.gauges)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            crate::lock(&self.histograms)
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: crate::lock(&self.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: crate::lock(&self.gauges)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: crate::lock(&self.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A consistent-enough copy of a [`Registry`]'s instruments (each
/// instrument is snapshotted atomically; the set is read under the maps'
/// locks).
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// A registry name coerced into the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every invalid character becomes `_`,
/// including a leading digit; an empty name becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Exposition-format escaping for HELP text and label values: `\` → `\\`,
/// newline → `\n`, and (for label values) `"` → `\"`. Without this, a
/// metric name containing a newline would split a comment line in two and
/// corrupt the scrape.
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => out.push_str("\\\""),
            _ => out.push(c),
        }
    }
    out
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format:
    /// counters as `<name>_total` (the suffix is not doubled when the
    /// registry name already carries it), gauges verbatim, histograms as
    /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`. Names
    /// are sanitized into the exposition charset; each family gets `# HELP`
    /// (the original registry name, escaped) and `# TYPE` comments.
    pub fn to_prometheus_text(&self) -> String {
        self.to_prometheus_text_with_windows(&BTreeMap::new())
    }

    /// [`to_prometheus_text`](Self::to_prometheus_text) plus live windowed
    /// histograms, rendered as `summary` families with
    /// `quantile="0.5|0.95|0.99"` labels (a windowed distribution is not
    /// monotone, so it must not masquerade as a histogram family).
    pub fn to_prometheus_text_with_windows(
        &self,
        windows: &BTreeMap<String, HistogramSnapshot>,
    ) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let base = prom_name(name);
            let full = if base.ends_with("_total") {
                base
            } else {
                format!("{base}_total")
            };
            out.push_str(&format!("# HELP {full} counter {}\n", prom_escape(name)));
            out.push_str(&format!("# TYPE {full} counter\n{full} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# HELP {n} gauge {}\n", prom_escape(name)));
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# HELP {n} histogram {}\n", prom_escape(name)));
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for k in 0..BUCKETS - 1 {
                if h.counts[k] == 0 {
                    continue;
                }
                cumulative = cumulative.saturating_add(h.counts[k]);
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                    upper_bound(k)
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        for (name, h) in windows {
            let n = prom_name(name);
            out.push_str(&format!(
                "# HELP {n} windowed summary {}\n",
                prom_escape(name)
            ));
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", h.percentile(p)));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide registry. Daemon code records here so one `metrics`
/// request surfaces every layer; tests should construct their own
/// [`Registry`] instead.
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.inc();
        c.inc();
        assert_eq!(c.get(), u64::MAX, "saturates instead of wrapping");
    }

    #[test]
    fn gauge_tracks_in_flight() {
        let g = Gauge::default();
        g.add(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(u64::MAX), 64);
        for k in 0..BUCKETS {
            assert_eq!(bucket_of(upper_bound(k)), k, "upper bound lives in bucket");
        }
    }

    #[test]
    fn percentiles_are_ordered_and_clamped() {
        let h = Histogram::default();
        for v in [3u64, 5, 9, 100, 1000, 1001, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 5000);
        let (p50, p95, p99) = (s.percentile(50.0), s.percentile(95.0), s.percentile(99.0));
        assert!(s.min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= s.max);
        // Single observation: every percentile is that value.
        let mut one = HistogramSnapshot::empty();
        one.record(42);
        assert_eq!(one.percentile(50.0), 42);
        assert_eq!(one.percentile(99.0), 42);
        assert_eq!(one.mean(), 42.0);
        // Empty: zeros, no panic.
        assert_eq!(HistogramSnapshot::empty().percentile(99.0), 0);
        assert_eq!(HistogramSnapshot::empty().mean(), 0.0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = HistogramSnapshot::empty();
        let mut b = HistogramSnapshot::empty();
        let mut both = HistogramSnapshot::empty();
        for v in [1u64, 10, 100] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 70, 700_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn prometheus_text_follows_conventions() {
        let r = Registry::new();
        r.counter("requests_total").add(9);
        r.counter("search_tier0_kept").add(4);
        r.gauge("in_flight").set(2);
        r.histogram("tune_us").record(3);
        r.histogram("tune_us").record(1000);
        let text = r.snapshot().to_prometheus_text();
        // `_total` appended exactly once.
        assert!(text.contains("requests_total 9\n"));
        assert!(!text.contains("requests_total_total"));
        assert!(text.contains("search_tier0_kept_total 4\n"));
        assert!(text.contains("in_flight 2\n"));
        // Cumulative buckets: the 1000-bucket line counts the 3 as well.
        assert!(text.contains("tune_us_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("tune_us_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("tune_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("tune_us_sum 1003\n"));
        assert!(text.contains("tune_us_count 2\n"));
        assert!(text.contains("# TYPE tune_us histogram\n"));
    }

    #[test]
    fn prometheus_text_sanitizes_and_escapes_adversarial_names() {
        let r = Registry::new();
        r.counter("9bad-name.with spaces\nand\\newline").inc();
        let text = r.snapshot().to_prometheus_text();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                // The escaped original name must not have smuggled in a raw
                // newline (lines() would have split it) or a bare backslash.
                assert!(rest.contains("\\n") && rest.contains("\\\\"), "{rest:?}");
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(!name.is_empty());
            let mut chars = name.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_' || first == ':');
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
        }
    }

    #[test]
    fn prometheus_windows_render_as_summaries() {
        let snap = RegistrySnapshot::default();
        let mut h = HistogramSnapshot::empty();
        h.record(10);
        h.record(400);
        let windows = BTreeMap::from([("request_us_window".to_string(), h)]);
        let text = snap.to_prometheus_text_with_windows(&windows);
        assert!(text.contains("# TYPE request_us_window summary\n"));
        assert!(text.contains("request_us_window{quantile=\"0.95\"} "));
        assert!(text.contains("request_us_window_count 2\n"));
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        r.counter("requests_total").add(2);
        r.counter("requests_total").inc();
        r.histogram("tune_us").record(500);
        let snap = r.snapshot();
        assert_eq!(snap.counters["requests_total"], 3);
        assert_eq!(snap.histograms["tune_us"].count, 1);
        // Global registry is one instance.
        assert!(Arc::ptr_eq(&global(), &global()));
    }
}

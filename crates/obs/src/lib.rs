//! # cello-obs — the observability substrate
//!
//! Vendored, zero-dependency (in the `crates/compat` spirit: the build
//! container has no registry route, so anything `tracing`/`metrics`-shaped
//! must live here). Three pieces, shared by `cello-sim`, `cello-search`,
//! and `cello-serve`:
//!
//! 1. **Structured leveled logging** ([`log`]): `error!`…`trace!` macros
//!    with a target string, filtered by `CELLO_LOG` (`info` by default,
//!    `debug,serve=trace` grammar for per-target overrides), written to
//!    stderr and/or registered [`log::LogSink`]s.
//! 2. **Hierarchical spans** ([`mod@span`]): `span!("tune")` /
//!    `span!("phase", idx = i)` guards with wall-clock timing on a
//!    thread-local stack (collection is off by default — one relaxed atomic
//!    load on the tuner's hot path), plus [`span::SpanRecorder`] for
//!    explicitly-built trees (per-request spans in `cello-serve`) and plain
//!    [`span::SpanNode`] construction for model-time trees (the cycles-model
//!    phase trace in `cello-sim`).
//! 3. **Metrics** ([`metrics`]): named saturating counters, gauges, and
//!    fixed-bucket latency histograms (p50/p95/p99) behind a global-or-
//!    injected [`metrics::Registry`], with Prometheus text exposition
//!    ([`metrics::RegistrySnapshot::to_prometheus_text`]) and
//!    epoch-bucketed sliding windows ([`mod@window`]) for live rates and
//!    p95-over-last-60s style readouts.
//!
//! [`chrome::chrome_trace`] renders any span forest as Chrome trace-event
//! JSON (`"ph": "X"` complete events) loadable in Perfetto or
//! `chrome://tracing`; [`recorder::FlightRecorder`] is the bounded ring
//! buffer `cello-serve` keeps recent request spans in.
//!
//! Every lock in this crate is poison-proof (`PoisonError::into_inner`,
//! matching the `EvalCache` convention): a panicking thread must never take
//! the daemon's metrics or flight recorder down with it.

pub mod chrome;
pub mod log;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod window;

pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot};
pub use recorder::FlightRecorder;
pub use span::{ArgValue, SpanNode, SpanRecorder};
pub use window::{WindowCounter, WindowHistogram, WindowedCounter, WindowedHistogram};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Poison-proof lock (the `EvalCache` convention): the data under these
/// locks are monotone counters and append-only buffers, valid even if a
/// holder panicked mid-update.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

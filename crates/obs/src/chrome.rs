//! Chrome trace-event JSON export.
//!
//! Renders a forest of [`SpanNode`]s as the trace-event format understood
//! by Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: a
//! top-level object with a `traceEvents` array of *complete* events
//! (`"ph": "X"`) carrying `name`, `ts`/`dur` in microseconds, `pid`/`tid`,
//! and an `args` object. Every root in the forest gets its own `tid`
//! (1-based) under a single `pid` so concurrent requests stack as separate
//! tracks; children inherit their root's ids and nest by interval
//! containment, which is how the viewers reconstruct the flame graph.

use crate::span::{ArgValue, SpanNode};
use std::fmt::Write as _;

const PID: u32 = 1;

/// Renders `roots` as a Chrome trace JSON document.
pub fn chrome_trace(roots: &[SpanNode]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;
    for (idx, root) in roots.iter().enumerate() {
        write_events(&mut out, root, idx as u32 + 1, &mut first);
    }
    out.push_str("], \"displayTimeUnit\": \"ms\"}");
    out
}

fn write_events(out: &mut String, node: &SpanNode, tid: u32, first: &mut bool) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\": {}, \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {PID}, \"tid\": {tid}, \"args\": {{",
        json_string(&node.name),
        node.ts_us,
        node.dur_us,
    );
    for (i, (key, value)) in node.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: ", json_string(key));
        match value {
            ArgValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            ArgValue::F64(_) => out.push_str("null"),
            ArgValue::Str(s) => out.push_str(&json_string(s)),
        }
    }
    out.push_str("}}");
    for child in &node.children {
        write_events(out, child, tid, first);
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_complete_events_per_node() {
        let root = SpanNode {
            name: "request".into(),
            ts_us: 0.0,
            dur_us: 120.5,
            args: vec![("id".into(), ArgValue::U64(9))],
            children: vec![SpanNode {
                name: "tune \"cg\"".into(),
                ts_us: 10.0,
                dur_us: 100.0,
                args: vec![
                    ("evals".into(), ArgValue::U64(12)),
                    ("frac".into(), ArgValue::F64(0.25)),
                    ("tag".into(), ArgValue::Str("hit\n".into())),
                ],
                children: vec![],
            }],
        };
        let json = chrome_trace(&[root.clone(), SpanNode::new("other")]);
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert!(json.contains("\"tune \\\"cg\\\"\""));
        assert!(json.contains("\"evals\": 12"));
        assert!(json.contains("\"frac\": 0.25"));
        assert!(json.contains("\"hit\\n\""));
        assert!(json.contains("\"tid\": 1"));
        assert!(json.contains("\"tid\": 2"));
        assert!(json.contains("\"dur\": 120.500"));
        // Second root and its single event are the only tid-2 entries.
        assert_eq!(json.matches("\"tid\": 2").count(), 1);
    }

    #[test]
    fn escaping_covers_control_chars() {
        assert_eq!(json_string("a\"b\\c\td\u{1}"), "\"a\\\"b\\\\c\\td\\u0001\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn empty_forest_is_valid() {
        let json = chrome_trace(&[]);
        assert!(json.starts_with("{\"traceEvents\": []"));
    }
}

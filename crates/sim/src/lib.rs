//! # cello-sim — accelerator performance/energy engine and Table IV baselines
//!
//! The paper evaluates schedule × buffer-hierarchy *combinations* (Table IV)
//! on a traffic-first model: DRAM bytes determine memory-bound phase time,
//! MACs determine compute-bound phase time, and a phase takes
//! `max(compute, memory)` (the paper notes "stalls due to memory bandwidth
//! dominate the delay", §VII-A1). This crate provides:
//!
//! - [`phases`]: the shared phase-walk planner — per-phase operand accesses
//!   (multicast-deduped, realized edges skipped, sliced footprints, RIFF
//!   metadata), compute shares and NoC hop-words, consumed by both the
//!   exact engine and the `cello-search` analytic surrogate so the two
//!   evaluation tiers cannot drift;
//! - [`engine`]: replays a [`phases::PhasePlan`] phase by phase, issuing
//!   tensor-granular reads/writes to a [`backends::MemoryBackend`] and
//!   accumulating per-phase roofline timing; multi-node schedules
//!   ([`cello_core::Partition`], §V-B) additionally slice per-node tile
//!   footprints and charge NoC word-hop cycles/energy against the mesh;
//! - [`backends`]: the memory systems — explicit oracle (Flexagon-/FLAT-/
//!   SET-like), LRU/BRRIP caches (trace-driven, line-granular), and CHORD
//!   (operand-granular, PRELUDE+RIFF or PRELUDE-only);
//! - [`trace`]: the address map used by cache backends (versioned tensors
//!   alias the same physical buffer, as in-place solvers do);
//! - [`baselines`]: the Table IV configuration registry and Table II
//!   capability matrix;
//! - [`energy`]: off-chip + on-chip energy accounting (Fig 14/15);
//! - [`evaluate`]: the cheap cost path (traffic + roofline cycles + NoC
//!   hop-bytes + energy, no trace) that the `cello-search` DSE engine
//!   scores candidates with;
//! - [`overlap`]: the transfer-timing ledger — prefetch/double-buffer
//!   overlap ([`cello_core::TransferTuning`]) converted into exposed
//!   transfer cycles, shared verbatim by the engine and the surrogate;
//! - [`scaling`]: the §V-B strong-scaling harness — naive-vs-scalable as
//!   two partitioned schedules scored by the same engine;
//! - [`report`]: run reports, geomeans, TSV emission;
//! - [`obs`]: the cycles-model span tree — a [`RunReport`] rendered as a
//!   `cello_obs` span forest (model time, not wall clock) for the
//!   `cello_run --trace-out` Chrome-trace flame view.

pub mod backends;
pub mod baselines;
pub mod energy;
pub mod engine;
pub mod evaluate;
pub mod obs;
pub mod overlap;
pub mod phases;
pub mod report;
pub mod scaling;
pub mod trace;

pub use baselines::{run_config, ConfigKind};
pub use engine::run_schedule;
pub use evaluate::{evaluate_schedule, CostEstimate};
pub use report::RunReport;

//! Memory-system backends: where tensor reads/writes actually go.
//!
//! The engine issues *operand-granular* requests; each backend realizes them
//! with its own mechanism and cost:
//!
//! - [`ExplicitBackend`]: oracle explicit orchestration (Flexagon-/FLAT-/
//!   SET-like rows of Table IV). Reads and writes hit DRAM exactly once per
//!   op unless the tensor is pipeline- or RF-bound by the schedule.
//! - [`CacheBackend`]: everything streams through a line-granular
//!   set-associative cache (Flex+LRU / Flex+BRRIP rows); bindings are
//!   ignored — "without any explicit management".
//! - [`ChordBackend`]: CELLO's hierarchy — RF for small tensors, pipeline
//!   buffer for realized edges (never reaches this backend), CHORD for
//!   writeback/sequential operands, DRAM for terminal results. Also serves
//!   the PRELUDE-only ablation via [`ChordPolicyKind::PreludeOnly`].

pub use cello_core::chord::ChordPolicyKind;
use cello_core::chord::{Chord, ChordConfig, RiffPriority};
use cello_core::score::binding::Binding;
use cello_mem::cache::{CacheConfig, ReplacementPolicy, SetAssocCache};
use cello_mem::stats::AccessStats;
use std::collections::BTreeSet;

use crate::trace::AddressMap;

/// One operand-granular request from the engine.
#[derive(Clone, Debug)]
pub struct TensorRequest<'a> {
    /// Versioned tensor name (`R@3`).
    pub name: &'a str,
    /// Footprint in words.
    pub words: u64,
    /// SCORE's binding for this tensor.
    pub binding: Binding,
    /// True for DAG externals (DRAM-resident inputs).
    pub external: bool,
    /// Backend-visible uses remaining *after* this access (RIFF freq).
    pub freq_after: u32,
    /// Ops until the next backend-visible use (RIFF dist; `u32::MAX` = none).
    pub dist_after: u32,
}

impl TensorRequest<'_> {
    fn priority(&self) -> RiffPriority {
        RiffPriority::new(self.freq_after, self.dist_after.min(u32::MAX - 1))
    }
}

/// A memory system the engine can drive.
pub trait MemoryBackend {
    /// An operation reads `req` (engine already deduped same-phase multicast).
    fn read(&mut self, req: &TensorRequest);
    /// An operation writes its output `req`.
    fn write(&mut self, req: &TensorRequest);
    /// A phase boundary under a per-phase SRAM repartition: the upcoming
    /// phase grants CHORD `chord_capacity_words` of the data array. Backends
    /// without a resizable structure ignore it; the engine only calls this
    /// when the schedule actually repartitions (the uniform/global split
    /// never reaches here, keeping the single-split path bit-identical).
    fn phase_boundary(&mut self, _chord_capacity_words: u64) {}
    /// End of program: flush dirty state.
    fn finish(&mut self);
    /// Accumulated counters.
    fn stats(&self) -> AccessStats;
    /// Table IV label fragment.
    fn label(&self) -> String;
    /// Which Fig 15 structure this backend's on-chip energy is modeled as.
    fn buffer_kind(&self) -> cello_mem::model::BufferKind;
    /// Bytes moved per `sram_*_words` unit (16 for line-granular caches,
    /// `word_bytes` for word-granular structures).
    fn sram_access_bytes(&self) -> f64;
}

/// Oracle explicit orchestration: cold DRAM traffic per op, pipeline/RF
/// bindings honored.
pub struct ExplicitBackend {
    word_bytes: u32,
    stats: AccessStats,
    rf_loaded: BTreeSet<String>,
}

impl ExplicitBackend {
    /// Creates the backend.
    pub fn new(word_bytes: u32) -> Self {
        Self {
            word_bytes,
            stats: AccessStats::default(),
            rf_loaded: BTreeSet::new(),
        }
    }

    fn bytes(&self, words: u64) -> u64 {
        words * self.word_bytes as u64
    }
}

impl MemoryBackend for ExplicitBackend {
    fn read(&mut self, req: &TensorRequest) {
        match req.binding {
            Binding::RegisterFile => {
                if req.external && self.rf_loaded.insert(req.name.to_string()) {
                    self.stats.dram_read_bytes += self.bytes(req.words);
                }
            }
            Binding::Pipeline => {
                // Realized edges never reach the backend; a Pipeline-bound
                // read would be an engine bug.
                unreachable!("pipeline-bound tensor read via backend")
            }
            // Explicit baselines have no CHORD: those operands round-trip DRAM.
            Binding::Chord | Binding::Dram => {
                self.stats.dram_read_bytes += self.bytes(req.words);
                self.stats.misses += req.words;
            }
        }
    }

    fn write(&mut self, req: &TensorRequest) {
        match req.binding {
            Binding::RegisterFile => {}
            Binding::Pipeline => {
                self.stats.sram_write_words += req.words;
            }
            Binding::Chord | Binding::Dram => {
                self.stats.dram_write_bytes += self.bytes(req.words);
            }
        }
    }

    fn finish(&mut self) {}

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn label(&self) -> String {
        "Explicit".into()
    }

    fn buffer_kind(&self) -> cello_mem::model::BufferKind {
        cello_mem::model::BufferKind::Buffet
    }

    fn sram_access_bytes(&self) -> f64 {
        self.word_bytes as f64
    }
}

/// Everything-through-a-cache backend (Flex+LRU / Flex+BRRIP).
pub struct CacheBackend<P: ReplacementPolicy> {
    cache: SetAssocCache<P>,
    map: AddressMap,
    word_bytes: u32,
}

impl<P: ReplacementPolicy> CacheBackend<P> {
    /// Creates the backend over a pre-built address map.
    pub fn new(config: CacheConfig, map: AddressMap, word_bytes: u32) -> Self {
        Self {
            cache: SetAssocCache::new(config),
            map,
            word_bytes,
        }
    }
}

impl<P: ReplacementPolicy> MemoryBackend for CacheBackend<P> {
    fn read(&mut self, req: &TensorRequest) {
        let (start, _) = self.map.range(req.name);
        self.cache
            .stream(start, req.words * self.word_bytes as u64, false);
    }

    fn write(&mut self, req: &TensorRequest) {
        let (start, _) = self.map.range(req.name);
        self.cache
            .stream(start, req.words * self.word_bytes as u64, true);
    }

    fn finish(&mut self) {
        self.cache.flush_dirty();
    }

    fn stats(&self) -> AccessStats {
        self.cache.stats()
    }

    fn label(&self) -> String {
        self.cache.policy_name().to_string()
    }

    fn buffer_kind(&self) -> cello_mem::model::BufferKind {
        cello_mem::model::BufferKind::Cache
    }

    fn sram_access_bytes(&self) -> f64 {
        self.cache.config().line_bytes as f64
    }
}

/// CELLO's hierarchy: CHORD + RF + write-through DRAM for terminals.
pub struct ChordBackend {
    chord: Chord,
    word_bytes: u32,
    extra: AccessStats,
    rf_loaded: BTreeSet<String>,
    fetched: BTreeSet<String>,
}

impl ChordBackend {
    /// Creates the backend (use [`ChordPolicyKind::PreludeOnly`] in `cfg` for
    /// the §VII-C3 ablation).
    pub fn new(cfg: ChordConfig) -> Self {
        Self {
            word_bytes: cfg.word_bytes,
            chord: Chord::new(cfg),
            extra: AccessStats::default(),
            rf_loaded: BTreeSet::new(),
            fetched: BTreeSet::new(),
        }
    }

    /// The CHORD instance (for invariant checks in tests).
    pub fn chord(&self) -> &Chord {
        &self.chord
    }

    fn bytes(&self, words: u64) -> u64 {
        words * self.word_bytes as u64
    }
}

impl MemoryBackend for ChordBackend {
    fn phase_boundary(&mut self, chord_capacity_words: u64) {
        // Per-phase repartition: resize the data array, evicting junior
        // tails when it shrinks (dirty tails persist to DRAM — the resize
        // traffic the engine charges to the entering phase).
        self.chord.resize(chord_capacity_words);
    }

    fn read(&mut self, req: &TensorRequest) {
        match req.binding {
            Binding::RegisterFile => {
                if req.external && self.rf_loaded.insert(req.name.to_string()) {
                    self.extra.dram_read_bytes += self.bytes(req.words);
                }
            }
            Binding::Pipeline => unreachable!("pipeline-bound tensor read via backend"),
            Binding::Dram => {
                self.extra.dram_read_bytes += self.bytes(req.words);
            }
            Binding::Chord => {
                if req.external && self.fetched.insert(req.name.to_string()) {
                    // First touch: cold stream from DRAM, caching what fits —
                    // unless this is the only use, where caching buys nothing.
                    if req.freq_after > 0 {
                        self.chord.fetch(req.name, req.words, req.priority());
                    } else {
                        self.extra.dram_read_bytes += self.bytes(req.words);
                    }
                } else if self.chord.table().get(req.name).is_some() {
                    let next = (req.freq_after > 0).then(|| req.priority());
                    self.chord.consume(req.name, next);
                } else {
                    // Produced while the table was full, or fetch-bypassed.
                    self.chord.consume_absent(req.words);
                }
            }
        }
    }

    fn write(&mut self, req: &TensorRequest) {
        match req.binding {
            Binding::RegisterFile => {}
            Binding::Pipeline => {
                self.extra.sram_write_words += req.words;
            }
            Binding::Dram => {
                self.extra.dram_write_bytes += self.bytes(req.words);
            }
            Binding::Chord => {
                self.chord.produce(req.name, req.words, req.priority());
            }
        }
    }

    fn finish(&mut self) {
        debug_assert!(self.chord.check_conservation().is_ok());
    }

    fn stats(&self) -> AccessStats {
        let mut s = self.chord.stats();
        s += self.extra;
        s
    }

    fn label(&self) -> String {
        match self.chord.config().policy {
            ChordPolicyKind::PreludeRiff => "CHORD".into(),
            ChordPolicyKind::PreludeOnly => "PRELUDE-only".into(),
        }
    }

    fn buffer_kind(&self) -> cello_mem::model::BufferKind {
        cello_mem::model::BufferKind::Chord
    }

    fn sram_access_bytes(&self) -> f64 {
        self.word_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_mem::cache::LruPolicy;

    fn req(
        name: &str,
        words: u64,
        binding: Binding,
        external: bool,
        freq: u32,
    ) -> TensorRequest<'_> {
        TensorRequest {
            name,
            words,
            binding,
            external,
            freq_after: freq,
            dist_after: if freq > 0 { 2 } else { u32::MAX },
        }
    }

    #[test]
    fn explicit_round_trips_dram() {
        let mut b = ExplicitBackend::new(4);
        b.write(&req("S", 100, Binding::Dram, false, 1));
        b.read(&req("S", 100, Binding::Dram, false, 0));
        assert_eq!(b.stats().dram_write_bytes, 400);
        assert_eq!(b.stats().dram_read_bytes, 400);
    }

    #[test]
    fn explicit_rf_loads_external_once() {
        let mut b = ExplicitBackend::new(4);
        b.read(&req("G", 64, Binding::RegisterFile, true, 2));
        b.read(&req("G", 64, Binding::RegisterFile, true, 1));
        assert_eq!(b.stats().dram_read_bytes, 256); // one cold load
    }

    #[test]
    fn explicit_pipeline_write_is_sram_only() {
        let mut b = ExplicitBackend::new(4);
        b.write(&req("Y", 100, Binding::Pipeline, false, 1));
        assert_eq!(b.stats().dram_bytes(), 0);
        assert_eq!(b.stats().sram_write_words, 100);
    }

    #[test]
    fn chord_backend_reuses_produced_tensor() {
        let cfg = ChordConfig {
            capacity_words: 1000,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: 64,
        };
        let mut b = ChordBackend::new(cfg);
        b.write(&req("S", 500, Binding::Chord, false, 2));
        b.read(&req("S", 500, Binding::Chord, false, 1));
        b.read(&req("S", 500, Binding::Chord, false, 0));
        assert_eq!(b.stats().dram_bytes(), 0, "fits fully: zero DRAM traffic");
        assert_eq!(b.stats().hits, 1000);
        b.finish();
    }

    #[test]
    fn chord_backend_fetch_once_then_hit() {
        let cfg = ChordConfig {
            capacity_words: 1000,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: 64,
        };
        let mut b = ChordBackend::new(cfg);
        b.read(&req("A", 800, Binding::Chord, true, 3));
        assert_eq!(b.stats().dram_read_bytes, 3200); // cold
        b.read(&req("A", 800, Binding::Chord, true, 2));
        assert_eq!(b.stats().dram_read_bytes, 3200); // resident
    }

    #[test]
    fn chord_backend_single_use_external_bypasses() {
        let cfg = ChordConfig {
            capacity_words: 1000,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: 64,
        };
        let mut b = ChordBackend::new(cfg);
        b.read(&req("X", 900, Binding::Chord, true, 0));
        assert_eq!(b.stats().dram_read_bytes, 3600);
        assert_eq!(b.chord().used_words(), 0, "single-use data not cached");
    }

    #[test]
    fn cache_backend_streams_lines() {
        let mut map = AddressMap::default();
        map.insert("T", 4096);
        let cfg = CacheConfig {
            capacity_bytes: 8192,
            line_bytes: 16,
            associativity: 4,
        };
        let mut b = CacheBackend::<LruPolicy>::new(cfg, map, 4);
        b.read(&req("T", 1024, Binding::Dram, true, 1)); // 4096 B = 256 lines
        assert_eq!(b.stats().misses, 256);
        b.read(&req("T", 1024, Binding::Dram, true, 0));
        assert_eq!(b.stats().hits, 256, "second pass fits");
        b.finish();
    }

    #[test]
    fn labels_and_kinds() {
        let cfg = ChordConfig {
            capacity_words: 10,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeOnly,
            max_entries: 4,
        };
        assert_eq!(ChordBackend::new(cfg).label(), "PRELUDE-only");
        assert_eq!(ExplicitBackend::new(4).label(), "Explicit");
    }
}

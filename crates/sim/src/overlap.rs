//! The overlap-aware cycle timeline — *when* DRAM transfers happen.
//!
//! The engine and the `cello-search` surrogate both walk phases and charge
//! DRAM traffic; this module is the one place that converts those per-phase
//! byte demands into cycles under a [`TransferTuning`], so the exact
//! simulator and the analytic tier can never drift on transfer timing.
//!
//! ## The model
//!
//! With prefetch depth `d = 0` (the default), every phase is serialized:
//!
//! ```text
//! t_p = max(compute_p, transfer(inbound_p + outbound_p)) + noc_p
//! ```
//!
//! — bit-identical to the pre-overlap engine.
//!
//! With `d ≥ 1`, a DMA engine may stage the *inbound* operands of up to `d`
//! upcoming phases while earlier phases execute. The ledger walks phases in
//! order and keeps a window of **prefetch credits**, in bytes:
//!
//! - while phase `q` runs for `t_q` cycles, the DRAM interface can move
//!   `t_q × B` bytes (`B` = bytes per cycle from [`CelloConfig::dram`]).
//!   With **double-buffering** the staging banks ping-pong, so the whole
//!   `t_q × B` is available to prefetch concurrently with `q`'s own demand
//!   traffic; **single-buffered** staging can only use the bandwidth `q`
//!   leaves idle, `max(0, t_q × B − exposed_bytes_q)`.
//! - phase `p` redeems credits minted by phases `p−d … p−1` (older credits
//!   expire — the staging region only holds `d` phases of operands), oldest
//!   first, each byte at most once. The redeemed amount — capped by `p`'s
//!   inbound bytes — is *hidden*; the rest stays exposed:
//!
//! ```text
//! hidden_p  = min(inbound_p, credits in window)
//! t_p       = max(compute_p, transfer(inbound_p − hidden_p + outbound_p), noc_p)
//! ```
//!
//! NoC exchanges fold into the same `max` when overlap is on: the mesh moves
//! words while compute and the DMA engine run. Outbound bytes are never
//! prefetched (they do not exist until the phase computes them) and the
//! terminal drain writeback stays fully exposed.
//!
//! Overlap is paid for in SRAM: each unit of depth carves
//! [`CelloConfig::staging_quantum_words`] (×2 when double-buffered) out of
//! CHORD's capacity — see
//! [`crate::evaluate::phase_chord_capacity_words`].

use cello_core::accel::CelloConfig;
use cello_core::score::transfer::TransferTuning;
use std::collections::VecDeque;

/// One phase's timing under the ledger: how long it ran and how much of its
/// DRAM traffic stayed exposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Cycles the phase occupies on the timeline (compute, exposed transfer
    /// and NoC combined per the model above).
    pub cycles: u64,
    /// Transfer cycles for the *exposed* DRAM bytes — equals the full
    /// transfer time at depth 0. This is what [`crate::report::RunReport`]
    /// records as the phase's memory cycles.
    pub exposed_mem_cycles: u64,
}

/// Incremental credit ledger for one schedule walk. Feed it phases in
/// execution order via [`OverlapLedger::phase`]; the drain writeback goes
/// through [`OverlapLedger::drain`].
#[derive(Clone, Debug)]
pub struct OverlapLedger {
    tuning: TransferTuning,
    accel: CelloConfig,
    /// DRAM bytes the interface moves per core cycle.
    bytes_per_cycle: f64,
    /// Open credits: `(minting phase index, remaining bytes)`.
    credits: VecDeque<(u64, u64)>,
    /// Index of the next phase to be fed.
    next_phase: u64,
}

impl OverlapLedger {
    /// A ledger for one walk of a schedule tuned by `tuning` on `accel`.
    pub fn new(tuning: TransferTuning, accel: &CelloConfig) -> Self {
        Self {
            tuning: tuning.normalized(),
            accel: *accel,
            bytes_per_cycle: accel.dram.bandwidth_bytes_per_sec / accel.freq_hz,
            credits: VecDeque::new(),
            next_phase: 0,
        }
    }

    /// Times the next phase: `compute` cycles of MAC work, `inbound_bytes`
    /// of DRAM reads, `outbound_bytes` of DRAM writes, `noc_cycles` of
    /// inter-node exchange.
    pub fn phase(
        &mut self,
        compute: u64,
        inbound_bytes: u64,
        outbound_bytes: u64,
        noc_cycles: u64,
    ) -> PhaseTiming {
        let p = self.next_phase;
        self.next_phase += 1;
        let total_bytes = inbound_bytes.saturating_add(outbound_bytes);
        if self.tuning.is_off() {
            // Serialized model, bit-identical to the pre-overlap engine.
            let mem = self
                .accel
                .dram
                .transfer_cycles(total_bytes, self.accel.freq_hz);
            return PhaseTiming {
                cycles: compute.max(mem) + noc_cycles,
                exposed_mem_cycles: mem,
            };
        }
        let depth = self.tuning.prefetch_depth as u64;
        // Expire credits older than the staging window [p−d, p−1].
        while let Some(&(minted, _)) = self.credits.front() {
            if minted + depth < p {
                self.credits.pop_front();
            } else {
                break;
            }
        }
        // Redeem oldest-first, each byte at most once, capped by inbound.
        let mut hidden = 0u64;
        while hidden < inbound_bytes {
            let Some(front) = self.credits.front_mut() else {
                break;
            };
            let take = front.1.min(inbound_bytes - hidden);
            hidden += take;
            front.1 -= take;
            if front.1 == 0 {
                self.credits.pop_front();
            }
        }
        let exposed_bytes = (inbound_bytes - hidden).saturating_add(outbound_bytes);
        let exposed_mem_cycles = self
            .accel
            .dram
            .transfer_cycles(exposed_bytes, self.accel.freq_hz);
        let cycles = compute.max(exposed_mem_cycles).max(noc_cycles);
        // Mint this phase's prefetch credit for the next `depth` phases.
        let moved = cycles as f64 * self.bytes_per_cycle;
        let credit = if self.tuning.double_buffer {
            moved as u64
        } else {
            (moved - exposed_bytes as f64).max(0.0) as u64
        };
        if credit > 0 {
            self.credits.push_back((p, credit));
        }
        PhaseTiming {
            cycles,
            exposed_mem_cycles,
        }
    }

    /// Times the terminal drain writeback: always fully exposed (there is no
    /// later compute to hide behind), identical at every depth.
    pub fn drain(&self, outbound_bytes: u64) -> u64 {
        self.accel
            .dram
            .transfer_cycles(outbound_bytes, self.accel.freq_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel() -> CelloConfig {
        // paper(): 1 TB/s at 1 GHz = 1000 B/cycle.
        CelloConfig::paper()
    }

    fn serialized(compute: u64, bytes: u64, noc: u64, accel: &CelloConfig) -> u64 {
        compute.max(accel.dram.transfer_cycles(bytes, accel.freq_hz)) + noc
    }

    #[test]
    fn depth_zero_is_bit_identical_to_serialized_model() {
        let a = accel();
        let mut ledger = OverlapLedger::new(TransferTuning::off(), &a);
        for (c, inb, outb, noc) in [(500, 400_000, 100_000, 0), (10, 5, 7, 3), (0, 0, 0, 0)] {
            let t = ledger.phase(c, inb, outb, noc);
            assert_eq!(t.cycles, serialized(c, inb + outb, noc, &a));
            assert_eq!(
                t.exposed_mem_cycles,
                a.dram.transfer_cycles(inb + outb, a.freq_hz)
            );
        }
        // A depth-0-with-db request normalizes to the same thing.
        let mut db0 = OverlapLedger::new(
            TransferTuning {
                prefetch_depth: 0,
                double_buffer: true,
            },
            &a,
        );
        assert_eq!(db0.phase(500, 400_000, 100_000, 0).cycles, 500);
    }

    #[test]
    fn first_phase_has_no_credit() {
        let a = accel();
        let mut ledger = OverlapLedger::new(TransferTuning::double_buffered(2), &a);
        // No earlier phase minted credit: fully exposed.
        let t = ledger.phase(100, 500_000, 0, 0);
        assert_eq!(t.exposed_mem_cycles, 500);
        assert_eq!(t.cycles, 500);
    }

    #[test]
    fn double_buffer_hides_inbound_behind_prior_phase() {
        let a = accel();
        let mut ledger = OverlapLedger::new(TransferTuning::double_buffered(1), &a);
        // Phase 0: compute-bound for 1000 cycles → mints 1_000_000 B credit.
        let t0 = ledger.phase(1000, 0, 0, 0);
        assert_eq!(t0.cycles, 1000);
        // Phase 1: 600_000 B inbound fully hidden; 100_000 B outbound exposed.
        let t1 = ledger.phase(50, 600_000, 100_000, 0);
        assert_eq!(t1.exposed_mem_cycles, 100);
        assert_eq!(t1.cycles, 100);
    }

    #[test]
    fn single_buffer_only_uses_idle_bandwidth() {
        let a = accel();
        let mut ledger = OverlapLedger::new(TransferTuning::single_buffered(1), &a);
        // Phase 0 runs 1000 cycles but moves 800_000 B of its own traffic:
        // idle bandwidth credit = 1_000_000 − 800_000 = 200_000 B.
        let t0 = ledger.phase(1000, 800_000, 0, 0);
        assert_eq!(t0.cycles, 1000);
        let t1 = ledger.phase(0, 500_000, 0, 0);
        // Only 200_000 B hidden → 300_000 B exposed.
        assert_eq!(t1.exposed_mem_cycles, 300);
    }

    #[test]
    fn credits_expire_outside_the_window() {
        let a = accel();
        let mut ledger = OverlapLedger::new(TransferTuning::double_buffered(1), &a);
        ledger.phase(1000, 0, 0, 0); // mints 1_000_000 B, valid only for phase 1
        ledger.phase(1, 0, 0, 0); // phase 1 redeems nothing; mints 1000 B
        let t2 = ledger.phase(0, 500_000, 0, 0);
        // Phase 0's credit expired; only phase 1's 1000 B applies.
        assert_eq!(t2.exposed_mem_cycles, 499);
    }

    #[test]
    fn credits_are_never_double_spent() {
        let a = accel();
        let mut ledger = OverlapLedger::new(TransferTuning::double_buffered(2), &a);
        ledger.phase(300, 0, 0, 0); // 300_000 B credit
        let t1 = ledger.phase(0, 200_000, 0, 0); // redeems 200_000
        assert_eq!(t1.exposed_mem_cycles, 0);
        // 100_000 B left from phase 0 (+0 from phase 1: zero-cycle phases
        // mint nothing meaningful — t1 took 0 cycles).
        let t2 = ledger.phase(0, 200_000, 0, 0);
        assert_eq!(t2.exposed_mem_cycles, 100);
    }

    #[test]
    fn noc_folds_into_the_max_when_overlapped() {
        let a = accel();
        let mut serial = OverlapLedger::new(TransferTuning::off(), &a);
        assert_eq!(serial.phase(100, 0, 0, 40).cycles, 140);
        let mut over = OverlapLedger::new(TransferTuning::double_buffered(1), &a);
        assert_eq!(over.phase(100, 0, 0, 40).cycles, 100);
        assert_eq!(over.phase(10, 0, 0, 40).cycles, 40, "NoC-bound phase");
    }

    #[test]
    fn overlap_never_beats_the_roofline_or_loses_to_serial() {
        let a = accel();
        let phases = [
            (1000u64, 500_000u64, 100_000u64, 20u64),
            (10, 900_000, 0, 0),
            (5000, 250_000, 250_000, 100),
            (0, 100_000, 50_000, 0),
        ];
        for tuning in [
            TransferTuning::single_buffered(1),
            TransferTuning::double_buffered(1),
            TransferTuning::double_buffered(3),
        ] {
            let mut ledger = OverlapLedger::new(tuning, &a);
            for &(c, inb, outb, noc) in &phases {
                let t = ledger.phase(c, inb, outb, noc);
                let full = a.dram.transfer_cycles(inb + outb, a.freq_hz);
                assert!(t.cycles >= c.max(noc), "floor: compute/noc not hidable");
                assert!(t.cycles <= c.max(full) + noc, "never worse than serial");
                assert!(t.exposed_mem_cycles <= full);
            }
        }
    }

    #[test]
    fn drain_is_fully_exposed_at_every_depth() {
        let a = accel();
        let serial = OverlapLedger::new(TransferTuning::off(), &a);
        let deep = OverlapLedger::new(TransferTuning::double_buffered(4), &a);
        assert_eq!(serial.drain(123_456), deep.drain(123_456));
        assert_eq!(serial.drain(123_456), 124);
    }
}
